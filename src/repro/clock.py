"""Controllable clock used throughout the kernel.

The paper's model includes deadlines and time constraints, and the monitoring
cockpit reports delays.  To make deadline handling, execution logs, and the
benchmark scenarios deterministic and testable, every component takes a
:class:`Clock` rather than calling ``datetime.now()`` directly.

Two implementations are provided:

* :class:`SystemClock` — wall-clock time, used by the hosted service.
* :class:`SimulatedClock` — manually advanced time, used by tests, the EU
  project scenario generator, and the benchmarks so that "delays" are
  reproducible.
"""

from __future__ import annotations

from datetime import datetime, timedelta, timezone


class Clock:
    """Interface for time sources used by the kernel."""

    def now(self) -> datetime:
        raise NotImplementedError

    def today(self):
        return self.now().date()


class SystemClock(Clock):
    """Wall-clock time in UTC."""

    def now(self) -> datetime:
        return datetime.now(timezone.utc)


class SimulatedClock(Clock):
    """A clock that only moves when told to.

    The scenario generator uses it to simulate weeks of project work in
    microseconds while still producing meaningful "delay" figures for the
    monitoring cockpit.
    """

    def __init__(self, start: datetime = None):
        if start is None:
            start = datetime(2009, 2, 1, 9, 0, 0, tzinfo=timezone.utc)
        if start.tzinfo is None:
            start = start.replace(tzinfo=timezone.utc)
        self._now = start

    def now(self) -> datetime:
        return self._now

    def advance(self, *, days: float = 0, hours: float = 0, minutes: float = 0,
                seconds: float = 0) -> datetime:
        """Move the clock forward and return the new time."""
        delta = timedelta(days=days, hours=hours, minutes=minutes, seconds=seconds)
        if delta < timedelta(0):
            raise ValueError("the clock can only move forward")
        self._now = self._now + delta
        return self._now

    def set(self, moment: datetime) -> datetime:
        """Jump to an absolute moment, which must not be in the past."""
        if moment.tzinfo is None:
            moment = moment.replace(tzinfo=timezone.utc)
        if moment < self._now:
            raise ValueError("the clock can only move forward")
        self._now = moment
        return self._now


DEFAULT_CLOCK = SystemClock()
