"""Exception hierarchy for the Gelee reproduction.

Every error raised by the library derives from :class:`GeleeError` so that
callers can catch library failures with a single ``except`` clause while the
more specific subclasses keep error handling precise inside the kernel.
"""

from __future__ import annotations


class GeleeError(Exception):
    """Base class for all errors raised by this library."""


class ModelError(GeleeError):
    """The lifecycle model is malformed or an operation on it is invalid."""


class ValidationError(ModelError):
    """A lifecycle or action definition failed validation.

    Carries the full list of problems so callers can report them all at once
    instead of fixing one issue per attempt.
    """

    def __init__(self, problems):
        self.problems = list(problems)
        message = "; ".join(self.problems) if self.problems else "validation failed"
        super().__init__(message)


class UnknownPhaseError(ModelError):
    """A phase id was referenced that does not exist in the lifecycle."""


class DuplicatePhaseError(ModelError):
    """Two phases with the same id were added to a lifecycle."""


class SerializationError(GeleeError):
    """A definition could not be serialized or parsed (XML/JSON)."""


class ActionError(GeleeError):
    """Base class for action-related failures."""


class UnknownActionTypeError(ActionError):
    """An action type URI is not registered in the action registry."""


class ActionResolutionError(ActionError):
    """No implementation of an action type exists for a resource type."""


class ActionInvocationError(ActionError):
    """An action implementation failed while being invoked."""


class ParameterBindingError(ActionError):
    """An action parameter is missing, unexpected, or bound at the wrong time."""


class ResourceError(GeleeError):
    """Base class for resource-related failures."""


class UnknownResourceTypeError(ResourceError):
    """No plug-in/adapter is registered for the requested resource type."""


class ResourceNotFoundError(ResourceError):
    """A URI does not resolve to a resource in its managing application."""


class ResourceAccessError(ResourceError):
    """The managing application denied access to a resource."""


class RuntimeStateError(GeleeError):
    """An operation is not valid in the current state of a lifecycle instance."""


class InstanceNotFoundError(GeleeError):
    """A lifecycle instance id is unknown to the kernel."""


class LifecycleNotFoundError(GeleeError):
    """A lifecycle model id/URI is unknown to the kernel."""


class PermissionDeniedError(GeleeError):
    """The acting user lacks the role/permission required by the operation."""


class StorageError(GeleeError):
    """A repository failed to store or retrieve an entity."""


class ConcurrencyError(StorageError):
    """An optimistic-concurrency check failed (stale version written)."""


class JournalTruncatedError(StorageError):
    """A journal read hit a gap: the requested records were rotated out and
    truncated away (snapshotted segments are deleted by
    ``Journal.truncate_through``).

    This is a *resumable* condition, not corruption: the caller's cursor is
    merely stale.  A streaming follower recovers by re-bootstrapping from
    the newest snapshot and resuming the stream from its ``journal_seq``.
    Carries ``oldest_available`` (the first sequence number still on disk,
    0 when the journal is empty) so the caller can report how far behind
    it fell.
    """

    def __init__(self, message, oldest_available: int = 0):
        super().__init__(message)
        self.oldest_available = oldest_available


class ServiceError(GeleeError):
    """The service layer received a malformed or unroutable request."""


class OperationNotFoundError(GeleeError):
    """An async operation handle is unknown to the service."""


class TemplateError(GeleeError):
    """A lifecycle template is unknown or cannot be instantiated."""


class PropagationError(GeleeError):
    """A model-change propagation request is invalid or already resolved."""


class SchedulerError(GeleeError):
    """A timer/scheduler request is malformed or cannot be honoured."""


class TimerNotFoundError(SchedulerError):
    """The named timer is not pending."""


class ReplicationError(GeleeError):
    """A replication operation is invalid (bad cursor, double promotion,
    promoting a node that is not a replica, ...)."""


class TraceNotFoundError(GeleeError):
    """No retained span trace with the requested correlation id.

    The span store is a bounded ring: a trace that was never sampled (no
    spans recorded under its id) or has aged out of both the ring and the
    slow-trace exemplars answers with this."""


class NodeUnreachableError(GeleeError):
    """A cluster peer could not be reached (or answered with an error).

    ``/v2/runtime/cluster`` never fails the merged view over one dead
    peer: the unreachable node's row carries this error's payload while
    the envelope stays 200 with ``partial=true``.  Carries ``node_id``
    so the row is attributable even when the peer never answered."""

    def __init__(self, message, node_id: str = None):
        super().__init__(message)
        self.node_id = node_id


class CoordinationError(GeleeError):
    """A coordination operation is invalid (resigning a lease this node
    does not hold, misconfigured lease store, ...)."""


class NotLeaderError(CoordinationError):
    """The operation requires holding the leadership lease and this node
    does not (or no longer does)."""


class StaleFencingTokenError(GeleeError):
    """A write carried a fencing token older than the lease store's newest.

    The classic deposed-primary guard: a node that lost (or slept through)
    its leadership lease may still try to append to the journal or mutate
    the runtime; the monotonically increasing fencing token issued with
    every lease acquisition proves the write is stale and it is rejected.

    Deliberately **not** a :class:`StorageError` subclass: the persistence
    coordinator degrades gracefully on storage failures (a broken disk must
    not fail operations), but a fencing rejection means this node must stop
    writing *now* — swallowing it as a journal hiccup would let a deposed
    primary keep acknowledging writes that can never replicate.

    Carries the write's ``token`` and the ``latest`` token observed in the
    lease store (``0`` when unknown).
    """

    def __init__(self, message, token: int = 0, latest: int = 0):
        super().__init__(message)
        self.token = int(token)
        self.latest = int(latest)


class ReadOnlyReplicaError(RuntimeStateError):
    """A mutation was attempted on a read replica.

    Replicas serve reads only; writes must go to the primary.  ``primary``
    optionally carries a hint (URL, host:port, deployment name) telling the
    caller where the primary lives — the v2 error translation surfaces it
    in the error details.
    """

    def __init__(self, message, primary: str = None):
        super().__init__(message)
        self.primary = primary
