"""Scenario and workload generators.

The paper's evaluation is the LiquidPub EU-project case study (§II): ~35
deliverables managed by a consortium following the Fig. 1 quality plan, with
the usual real-world deviations (missed deadlines, changed reviewers, skipped
phases).  :mod:`repro.scenarios.euproject` generates synthetic portfolios of
that shape deterministically, and drives them through the kernel.
"""

from .euproject import (
    Deliverable,
    EUProject,
    PortfolioRun,
    generate_project,
    run_portfolio,
)

__all__ = [
    "Deliverable",
    "EUProject",
    "PortfolioRun",
    "generate_project",
    "run_portfolio",
]
