"""EU project scenario generator and driver.

Generates a synthetic consortium project (partners, work packages,
deliverables with owners and reviewers) and then *plays* the project: each
deliverable's owner drives the Fig. 1 lifecycle on a document created in one
of the simulated managing applications, with a configurable share of
deviations (skipped internal reviews, rework loops, late phases) so the
monitoring cockpit has realistic delays and annotations to report.

Everything is seeded, so a given configuration reproduces the exact same
portfolio — the property the benchmarks rely on.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..accesscontrol.policy import AccessPolicy
from ..accesscontrol.roles import Role, UserDirectory
from ..clock import SimulatedClock
from ..plugins.setup import StandardEnvironment, build_standard_environment
from ..runtime.manager import LifecycleManager
from ..templates.eu_deliverable import eu_deliverable_lifecycle

#: Default consortium partners (synthetic, shaped like an EU consortium).
DEFAULT_PARTNERS = [
    "unitn", "upm", "kit", "inria", "tue", "epfl", "jrc", "sme-alpha", "sme-beta",
]

#: Work packages a research project of this size typically has.
DEFAULT_WORK_PACKAGES = ["WP1", "WP2", "WP3", "WP4", "WP5", "WP6"]

#: Resource types deliverables are drafted in, with relative weights.
RESOURCE_TYPE_WEIGHTS = [
    ("Google Doc", 0.45),
    ("MediaWiki page", 0.30),
    ("Zoho document", 0.15),
    ("SVN file", 0.10),
]


@dataclass
class Deliverable:
    """One deliverable of the synthetic project."""

    deliverable_id: str
    title: str
    work_package: str
    owner: str
    reviewers: List[str]
    resource_type: str
    due_in_days: int
    instance_id: Optional[str] = None
    resource_uri: Optional[str] = None


@dataclass
class EUProject:
    """A synthetic EU project: consortium, work packages, deliverables."""

    name: str
    coordinator: str
    partners: List[str]
    deliverables: List[Deliverable]

    def deliverables_by_owner(self) -> Dict[str, List[Deliverable]]:
        grouped: Dict[str, List[Deliverable]] = {}
        for deliverable in self.deliverables:
            grouped.setdefault(deliverable.owner, []).append(deliverable)
        return grouped


@dataclass
class PortfolioRun:
    """The outcome of playing a project through the Gelee kernel."""

    project: EUProject
    environment: StandardEnvironment
    manager: LifecycleManager
    clock: SimulatedClock
    policy: Optional[AccessPolicy] = None
    deviations: int = 0
    completed: int = 0

    def instance_ids(self) -> List[str]:
        return [d.instance_id for d in self.project.deliverables if d.instance_id]


def generate_project(deliverable_count: int = 35, seed: int = 7,
                     name: str = "LiquidPub", partners: List[str] = None) -> EUProject:
    """Generate a deterministic synthetic project.

    The default size (35 deliverables) matches the paper's statement "In
    Liquidpub we have 35"; 20–40 is the range the paper gives for typical
    projects.
    """
    rng = random.Random(seed)
    partners = list(partners or DEFAULT_PARTNERS)
    coordinator = partners[0]
    deliverables = []
    for index in range(deliverable_count):
        work_package = DEFAULT_WORK_PACKAGES[index % len(DEFAULT_WORK_PACKAGES)]
        owner = rng.choice(partners)
        reviewers = rng.sample([p for p in partners if p != owner], k=min(2, len(partners) - 1))
        resource_type = _weighted_choice(rng, RESOURCE_TYPE_WEIGHTS)
        deliverables.append(Deliverable(
            deliverable_id="D{}.{}".format(work_package[-1], index % 6 + 1),
            title="Deliverable {} — {} report {}".format(
                "D{}.{}".format(work_package[-1], index % 6 + 1), work_package, index + 1),
            work_package=work_package,
            owner=owner,
            reviewers=reviewers,
            resource_type=resource_type,
            due_in_days=rng.randint(60, 240),
        ))
    return EUProject(name=name, coordinator=coordinator, partners=partners,
                     deliverables=deliverables)


def run_portfolio(project: EUProject = None, deliverable_count: int = 35, seed: int = 7,
                  deviation_rate: float = 0.3, completion_rate: float = 0.6,
                  deadline_days: Dict[str, float] = None,
                  with_policy: bool = False) -> PortfolioRun:
    """Create the environment, instantiate every deliverable and play the project.

    Args:
        project: a pre-generated project; generated from the other arguments
            when omitted.
        deviation_rate: fraction of deliverables whose owner deviates from the
            modelled flow at least once (skips the internal review or loops
            back for rework).
        completion_rate: fraction of deliverables driven all the way to the
            terminal phase; the rest stop somewhere mid-flow (that is what the
            cockpit monitors).
        deadline_days: per-phase relative deadlines used by the lifecycle.
        with_policy: also set up users, roles and an access policy enforcing
            them (used by the role/visibility experiments).
    """
    rng = random.Random(seed + 1)
    project = project or generate_project(deliverable_count=deliverable_count, seed=seed)
    clock = SimulatedClock()
    environment = build_standard_environment(clock=clock)

    policy = None
    if with_policy:
        directory = UserDirectory()
        directory.register_many(project.coordinator, *project.partners)
        directory.assign(project.coordinator, Role.LIFECYCLE_MANAGER)
        for partner in project.partners:
            # Partners own deliverables (instances) and may observe the rest.
            directory.assign(partner, Role.INSTANCE_OWNER)
            directory.assign(partner, Role.STAKEHOLDER)
        policy = AccessPolicy(directory)

    manager = LifecycleManager(environment, clock=clock, access_policy=policy,
                               rng=random.Random(seed + 2))
    model = eu_deliverable_lifecycle(
        deadline_days=deadline_days or {"elaboration": 30, "internalreview": 14,
                                        "finalassembly": 7, "eureview": 30, "publication": 7},
    )
    manager.publish_model(model, actor=project.coordinator)

    run = PortfolioRun(project=project, environment=environment, manager=manager,
                       clock=clock, policy=policy)

    for deliverable in project.deliverables:
        _play_deliverable(run, deliverable, model.uri, rng,
                          deviates=rng.random() < deviation_rate,
                          completes=rng.random() < completion_rate)
    return run


# -------------------------------------------------------------------- internals

def _weighted_choice(rng: random.Random, weighted: List) -> str:
    total = sum(weight for _, weight in weighted)
    pick = rng.random() * total
    cumulative = 0.0
    for value, weight in weighted:
        cumulative += weight
        if pick <= cumulative:
            return value
    return weighted[-1][0]


def _play_deliverable(run: PortfolioRun, deliverable: Deliverable, model_uri: str,
                      rng: random.Random, deviates: bool, completes: bool) -> None:
    """Drive one deliverable through (part of) the Fig. 1 lifecycle."""
    manager = run.manager
    clock = run.clock
    project = run.project

    adapter = run.environment.adapter(deliverable.resource_type)
    descriptor = adapter.create_resource(
        title=deliverable.title,
        owner=deliverable.owner,
        content="Initial outline of {}".format(deliverable.title),
    )
    deliverable.resource_uri = descriptor.uri

    if run.policy is not None:
        run.policy.grant_instance_owner(deliverable.owner, descriptor.uri)

    notify_call_ids = [
        call.call_id
        for phase_id, call in manager.model(model_uri).action_calls()
        if phase_id == "internalreview" and "notify" in call.action_uri
    ]
    parameters = {call_id: {"reviewers": deliverable.reviewers} for call_id in notify_call_ids}

    instance = manager.instantiate(
        model_uri, descriptor, owner=deliverable.owner,
        instantiation_parameters=parameters,
        metadata={"work_package": deliverable.work_package,
                  "deliverable_id": deliverable.deliverable_id},
    )
    deliverable.instance_id = instance.instance_id
    if run.policy is not None:
        run.policy.grant_instance_owner(deliverable.owner, instance.instance_id)
        run.policy.grant_stakeholder(project.coordinator, instance.instance_id)

    owner = deliverable.owner
    manager.start(instance.instance_id, actor=owner)
    clock.advance(days=rng.randint(5, 40))

    # Elaboration -> Internal Review (sometimes skipped: deviation).
    if deviates and rng.random() < 0.5:
        manager.skip_to(instance.instance_id, owner, "finalassembly",
                        reason="Internal review skipped to meet the deadline")
        run.deviations += 1
    else:
        manager.advance(instance.instance_id, owner, to_phase_id="internalreview")
        clock.advance(days=rng.randint(3, 25))
        if deviates:
            # Rework loop: back to elaboration once, then forward again.
            manager.advance(instance.instance_id, owner, to_phase_id="elaboration",
                            annotation="Reviewers requested a substantial rewrite")
            run.deviations += 1
            clock.advance(days=rng.randint(3, 20))
            manager.advance(instance.instance_id, owner, to_phase_id="internalreview")
            clock.advance(days=rng.randint(2, 10))
        if not completes and rng.random() < 0.5:
            return
        manager.advance(instance.instance_id, owner, to_phase_id="finalassembly")

    clock.advance(days=rng.randint(1, 10))
    if not completes:
        return

    manager.advance(instance.instance_id, owner, to_phase_id="eureview")
    clock.advance(days=rng.randint(10, 45))
    manager.advance(instance.instance_id, owner, to_phase_id="publication")
    clock.advance(days=rng.randint(1, 5))
    manager.advance(instance.instance_id, owner, to_phase_id="closed")
    run.completed += 1
