"""A prescriptive workflow engine baseline.

This is the kind of system the paper argues is *not* suited to everyday
resource lifecycles (§I, §III.A): tasks with explicit control flow, guard
conditions and data flow; an engine that decides what runs next and rejects
any move not allowed by the model; and automatic instance migration when the
model changes (in the ADEPT tradition), which fails whenever the instance's
state has no counterpart in the new model.

The engine is used by three experiments:

* **E8 (light-coupling)** — model changes here require migrating every
  instance immediately, and incompatible instances are rejected, whereas
  Gelee reduces the problem to per-owner state migration on request.
* **E9 (universality)** — workflow definitions bind directly to an
  application-specific task implementation, so supporting K resource types
  requires K definitions.
* **E10 (simplicity)** — counting the modelling elements a composer must
  write for the same Fig. 1 process.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from ..errors import GeleeError
from ..identifiers import new_id


class WorkflowError(GeleeError):
    """Raised when the engine rejects an operation (rigidity by design)."""


@dataclass
class WorkflowTask:
    """A task node of a workflow definition.

    Unlike a Gelee phase, a task carries control-flow conditions, explicit
    input/output data mappings and a bound implementation — the elements that
    make classical workflow modelling heavyweight.
    """

    task_id: str
    name: str
    implementation: Optional[Callable[[Dict[str, Any]], Dict[str, Any]]] = None
    inputs: List[str] = field(default_factory=list)
    outputs: List[str] = field(default_factory=list)
    guard: Optional[Callable[[Dict[str, Any]], bool]] = None
    automatic: bool = True

    def element_count(self) -> int:
        """Modelling elements a composer had to specify for this task."""
        count = 1  # the task itself
        count += len(self.inputs) + len(self.outputs)
        if self.guard is not None:
            count += 1
        if self.implementation is not None:
            count += 1
        return count


@dataclass
class WorkflowDefinition:
    """A workflow: tasks, explicit control-flow edges, and workflow data."""

    name: str
    definition_id: str = field(default_factory=lambda: new_id("wf"))
    version: int = 1
    tasks: Dict[str, WorkflowTask] = field(default_factory=dict)
    edges: List[tuple] = field(default_factory=list)  # (source, target, condition)
    variables: List[str] = field(default_factory=list)

    def add_task(self, task: WorkflowTask) -> WorkflowTask:
        if task.task_id in self.tasks:
            raise WorkflowError("task {!r} already defined".format(task.task_id))
        self.tasks[task.task_id] = task
        return task

    def add_edge(self, source: str, target: str,
                 condition: Callable[[Dict[str, Any]], bool] = None) -> None:
        for endpoint in (source, target):
            if endpoint not in self.tasks and endpoint not in ("START", "END"):
                raise WorkflowError("edge endpoint {!r} is not a task".format(endpoint))
        self.edges.append((source, target, condition))

    def successors(self, task_id: str, data: Dict[str, Any]) -> List[str]:
        targets = []
        for source, target, condition in self.edges:
            if source != task_id:
                continue
            if condition is not None and not condition(data):
                continue
            targets.append(target)
        return targets

    def initial_tasks(self) -> List[str]:
        return [target for source, target, _ in self.edges if source == "START"]

    def element_count(self) -> int:
        """Total modelling elements (tasks + their details + edges + variables)."""
        return (sum(task.element_count() for task in self.tasks.values())
                + len(self.edges) + len(self.variables))

    def new_version(self) -> "WorkflowDefinition":
        duplicate = WorkflowDefinition(name=self.name, definition_id=self.definition_id,
                                       version=self.version + 1,
                                       variables=list(self.variables))
        duplicate.tasks = dict(self.tasks)
        duplicate.edges = list(self.edges)
        return duplicate


@dataclass
class WorkflowInstance:
    """A running workflow case."""

    definition: WorkflowDefinition
    instance_id: str = field(default_factory=lambda: new_id("case"))
    data: Dict[str, Any] = field(default_factory=dict)
    current_tasks: List[str] = field(default_factory=list)
    completed_tasks: List[str] = field(default_factory=list)
    finished: bool = False


class WorkflowEngine:
    """Executes workflow definitions prescriptively."""

    def __init__(self):
        self._definitions: Dict[str, WorkflowDefinition] = {}
        self._instances: Dict[str, WorkflowInstance] = {}
        self.migration_failures = 0
        self.migrated_instances = 0

    # ------------------------------------------------------------------ deploy
    def deploy(self, definition: WorkflowDefinition) -> WorkflowDefinition:
        if not definition.initial_tasks():
            raise WorkflowError("a workflow needs at least one START edge")
        self._definitions[definition.definition_id] = definition
        return definition

    def definition(self, definition_id: str) -> WorkflowDefinition:
        try:
            return self._definitions[definition_id]
        except KeyError:
            raise WorkflowError("unknown workflow definition {!r}".format(definition_id)) from None

    # ------------------------------------------------------------------- start
    def start(self, definition_id: str, data: Dict[str, Any] = None) -> WorkflowInstance:
        definition = self.definition(definition_id)
        instance = WorkflowInstance(definition=definition, data=dict(data or {}))
        instance.current_tasks = list(definition.initial_tasks())
        self._instances[instance.instance_id] = instance
        self._run_automatic(instance)
        return instance

    def instance(self, instance_id: str) -> WorkflowInstance:
        try:
            return self._instances[instance_id]
        except KeyError:
            raise WorkflowError("unknown workflow instance {!r}".format(instance_id)) from None

    def instances(self, definition_id: str = None) -> List[WorkflowInstance]:
        if definition_id is None:
            return list(self._instances.values())
        return [instance for instance in self._instances.values()
                if instance.definition.definition_id == definition_id]

    # ---------------------------------------------------------------- execution
    def complete_task(self, instance_id: str, task_id: str,
                      outputs: Dict[str, Any] = None) -> WorkflowInstance:
        """Complete a (manual) task; the engine decides what is enabled next.

        Completing a task that is not currently enabled is an error — this is
        the prescriptiveness the paper contrasts with Gelee's free token moves.
        """
        instance = self.instance(instance_id)
        if instance.finished:
            raise WorkflowError("instance {!r} is already finished".format(instance_id))
        if task_id not in instance.current_tasks:
            raise WorkflowError(
                "task {!r} is not enabled (enabled: {})".format(task_id, instance.current_tasks)
            )
        task = instance.definition.tasks[task_id]
        for variable in task.inputs:
            if variable not in instance.data:
                raise WorkflowError(
                    "task {!r} requires workflow variable {!r}".format(task_id, variable)
                )
        instance.data.update(outputs or {})
        instance.current_tasks.remove(task_id)
        instance.completed_tasks.append(task_id)
        self._enable_successors(instance, task_id)
        self._run_automatic(instance)
        return instance

    # ---------------------------------------------------------------- migration
    def change_definition(self, new_definition: WorkflowDefinition) -> Dict[str, int]:
        """Deploy a new version and migrate *every* running instance immediately.

        Instances whose current tasks do not exist in the new version cannot
        be migrated and are counted as failures (they keep the old version) —
        the behaviour adaptive-workflow research works hard to avoid and that
        Gelee sidesteps by light-coupling.
        """
        self._definitions[new_definition.definition_id] = new_definition
        migrated = 0
        failed = 0
        for instance in self.instances(new_definition.definition_id):
            if instance.definition.version >= new_definition.version:
                continue
            missing = [task for task in instance.current_tasks
                       if task not in new_definition.tasks]
            if missing:
                failed += 1
                continue
            instance.definition = new_definition
            migrated += 1
        self.migrated_instances += migrated
        self.migration_failures += failed
        return {"migrated": migrated, "failed": failed}

    # ------------------------------------------------------------------ internal
    def _enable_successors(self, instance: WorkflowInstance, task_id: str) -> None:
        successors = instance.definition.successors(task_id, instance.data)
        if not successors:
            if not instance.current_tasks:
                instance.finished = True
            return
        for successor in successors:
            if successor == "END":
                if not instance.current_tasks:
                    instance.finished = True
                continue
            if successor not in instance.current_tasks:
                instance.current_tasks.append(successor)

    def _run_automatic(self, instance: WorkflowInstance) -> None:
        """Run automatic tasks until only manual ones (or nothing) remain."""
        progress = True
        while progress and not instance.finished:
            progress = False
            for task_id in list(instance.current_tasks):
                task = instance.definition.tasks[task_id]
                if not task.automatic or task.implementation is None:
                    continue
                outputs = task.implementation(dict(instance.data)) or {}
                instance.data.update(outputs)
                instance.current_tasks.remove(task_id)
                instance.completed_tasks.append(task_id)
                self._enable_successors(instance, task_id)
                progress = True
