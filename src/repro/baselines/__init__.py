"""Comparison baselines (paper §III, related work).

The paper positions Gelee against three families of systems; we implement a
representative of each so the benchmarks can compare concretely:

* :mod:`repro.baselines.workflow_engine` — a prescriptive workflow engine
  (rigid control flow, enforced transitions, automatic instance migration on
  model change) in the spirit of classical WfMSs/ADEPT.
* :mod:`repro.baselines.prosyt` — an artifact-type-coupled lifecycle system
  in the spirit of PROSYT: "each artifact type defines just one possible
  lifecycle, and runtime lifecycle model changes are not allowed".
* :mod:`repro.baselines.document_driven` — a document-driven workflow in the
  spirit of Wang & Kumar [7], where progress is inferred from document-state
  changes rather than decided by a human.
"""

from .workflow_engine import (
    WorkflowDefinition,
    WorkflowEngine,
    WorkflowInstance,
    WorkflowTask,
)
from .prosyt import ArtifactType, ArtifactTypeSystem
from .document_driven import DocumentDrivenWorkflow, DocumentRule

__all__ = [
    "WorkflowDefinition",
    "WorkflowEngine",
    "WorkflowInstance",
    "WorkflowTask",
    "ArtifactType",
    "ArtifactTypeSystem",
    "DocumentDrivenWorkflow",
    "DocumentRule",
]
