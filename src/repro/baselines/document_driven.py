"""Document-driven workflow baseline (Wang & Kumar style, paper ref. [7]).

"In this approach, the boundary of the flexibility is described by the
dependency among documents … as workflow operations are associated to changes
in the documents, these changes must be done under the control of the
workflow." (§III.B)

The baseline watches document attributes and fires transitions when rules
match: there is no human decision, and the artifact can only be edited
through the workflow's ``update_document`` operation.  The contrast with
Gelee — where editing is free and the human drives progression — is what the
flexibility comparison in the EXPERIMENTS discussion uses.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from ..errors import GeleeError
from ..identifiers import new_id


class DocumentWorkflowError(GeleeError):
    """Raised when a document change is attempted outside the workflow's control."""


@dataclass
class DocumentRule:
    """A rule: when the predicate over the document state holds, enter ``target_state``."""

    name: str
    target_state: str
    predicate: Callable[[Dict[str, Any]], bool]
    priority: int = 0


@dataclass
class ManagedDocument:
    """A document whose state may only change through the workflow."""

    uri: str
    state: str
    attributes: Dict[str, Any] = field(default_factory=dict)
    history: List[str] = field(default_factory=list)
    document_id: str = field(default_factory=lambda: new_id("mdoc"))


class DocumentDrivenWorkflow:
    """Infers progress from document changes; does not allow out-of-band edits."""

    def __init__(self, initial_state: str, rules: List[DocumentRule] = None,
                 final_states: List[str] = None):
        self._initial_state = initial_state
        self._rules: List[DocumentRule] = sorted(rules or [], key=lambda r: -r.priority)
        self._final_states = set(final_states or [])
        self._documents: Dict[str, ManagedDocument] = {}
        self.rule_evaluations = 0

    # ---------------------------------------------------------------- documents
    def register_document(self, uri: str, **attributes: Any) -> ManagedDocument:
        document = ManagedDocument(uri=uri, state=self._initial_state,
                                   attributes=dict(attributes))
        document.history.append(self._initial_state)
        self._documents[document.document_id] = document
        return document

    def document(self, document_id: str) -> ManagedDocument:
        try:
            return self._documents[document_id]
        except KeyError:
            raise DocumentWorkflowError("unknown document {!r}".format(document_id)) from None

    def documents(self) -> List[ManagedDocument]:
        return list(self._documents.values())

    # ------------------------------------------------------------------- rules
    def add_rule(self, rule: DocumentRule) -> None:
        self._rules.append(rule)
        self._rules.sort(key=lambda r: -r.priority)

    def update_document(self, document_id: str, **changes: Any) -> ManagedDocument:
        """Change document attributes *through the workflow* and re-evaluate rules."""
        document = self.document(document_id)
        if document.state in self._final_states:
            raise DocumentWorkflowError(
                "document {!r} is in final state {!r}; no further changes allowed".format(
                    document_id, document.state
                )
            )
        document.attributes.update(changes)
        self._evaluate(document)
        return document

    def external_edit(self, document_id: str, **changes: Any) -> None:
        """Out-of-band edits are rejected — the rigidity Gelee removes."""
        raise DocumentWorkflowError(
            "documents managed by the workflow cannot be edited outside of it"
        )

    def force_state(self, document_id: str, state: str) -> None:
        """There is no owner-driven override either."""
        raise DocumentWorkflowError(
            "document-driven workflows do not support manual state overrides"
        )

    # ------------------------------------------------------------------ internal
    def _evaluate(self, document: ManagedDocument) -> None:
        changed = True
        while changed and document.state not in self._final_states:
            changed = False
            for rule in self._rules:
                self.rule_evaluations += 1
                if rule.target_state == document.state:
                    continue
                if rule.predicate(dict(document.attributes)):
                    document.state = rule.target_state
                    document.history.append(rule.target_state)
                    changed = True
                    break
