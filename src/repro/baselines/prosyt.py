"""PROSYT-style artifact-type-coupled lifecycle baseline.

§III.A: "PROSYT takes the artifact-based approach in which operations and
conditions for these operations can be defined over the concept of artifact
type.  Nonetheless, each artifact type defines just one possible lifecycle,
and runtime lifecycle model changes are not allowed.  This coupling reduces
expressiveness and generality."

The baseline therefore couples exactly one lifecycle to each artifact type:
to run "the same" process on K resource types you must author K artifact
types, and you cannot change the lifecycle of existing artifacts — the two
properties the universality experiment (E9) measures against Gelee's
action-type late binding.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..errors import GeleeError
from ..identifiers import new_id
from ..model.lifecycle import LifecycleModel


class ArtifactTypeError(GeleeError):
    """Raised when the artifact-type coupling is violated."""


@dataclass
class ArtifactType:
    """An artifact type with its single, fixed lifecycle."""

    name: str
    resource_type: str
    lifecycle: LifecycleModel
    type_id: str = field(default_factory=lambda: new_id("atype"))

    def element_count(self) -> int:
        """Definition size: the lifecycle plus the type declaration itself."""
        return self.lifecycle.element_count() + 1


@dataclass
class ArtifactInstance:
    """An artifact managed under its (fixed) type lifecycle."""

    artifact_type: ArtifactType
    uri: str
    current_phase_id: Optional[str] = None
    history: List[str] = field(default_factory=list)
    instance_id: str = field(default_factory=lambda: new_id("artifact"))


class ArtifactTypeSystem:
    """Registry and runtime for artifact types (one lifecycle per type)."""

    def __init__(self):
        self._types: Dict[str, ArtifactType] = {}
        self._instances: Dict[str, ArtifactInstance] = {}

    # -------------------------------------------------------------------- types
    def define_type(self, artifact_type: ArtifactType) -> ArtifactType:
        """Register an artifact type; one lifecycle per resource type, enforced."""
        if artifact_type.resource_type in self._types:
            raise ArtifactTypeError(
                "resource type {!r} already has an artifact type; PROSYT-style coupling "
                "allows only one lifecycle per type".format(artifact_type.resource_type)
            )
        self._types[artifact_type.resource_type] = artifact_type
        return artifact_type

    def type_for(self, resource_type: str) -> ArtifactType:
        try:
            return self._types[resource_type]
        except KeyError:
            raise ArtifactTypeError(
                "no artifact type defined for resource type {!r}".format(resource_type)
            ) from None

    def types(self) -> List[ArtifactType]:
        return list(self._types.values())

    def definitions_needed(self, resource_types: List[str]) -> int:
        """How many lifecycle definitions are needed to cover ``resource_types``."""
        return len(set(resource_types))

    def total_definition_elements(self) -> int:
        return sum(artifact_type.element_count() for artifact_type in self._types.values())

    # ---------------------------------------------------------------- instances
    def create_artifact(self, resource_type: str, uri: str) -> ArtifactInstance:
        artifact_type = self.type_for(resource_type)
        initial = artifact_type.lifecycle.initial_phases()
        instance = ArtifactInstance(artifact_type=artifact_type, uri=uri)
        if initial:
            instance.current_phase_id = initial[0].phase_id
            instance.history.append(initial[0].phase_id)
        self._instances[instance.instance_id] = instance
        return instance

    def artifact(self, instance_id: str) -> ArtifactInstance:
        try:
            return self._instances[instance_id]
        except KeyError:
            raise ArtifactTypeError("unknown artifact {!r}".format(instance_id)) from None

    def perform_operation(self, instance_id: str, target_phase_id: str) -> ArtifactInstance:
        """Move an artifact along its type lifecycle; off-model moves are rejected."""
        instance = self.artifact(instance_id)
        lifecycle = instance.artifact_type.lifecycle
        if not lifecycle.is_modeled_move(instance.current_phase_id, target_phase_id):
            raise ArtifactTypeError(
                "operation not allowed: {!r} -> {!r} is not in the type lifecycle".format(
                    instance.current_phase_id, target_phase_id
                )
            )
        instance.current_phase_id = target_phase_id
        instance.history.append(target_phase_id)
        return instance

    def change_type_lifecycle(self, resource_type: str, lifecycle: LifecycleModel):
        """Runtime lifecycle model changes are not allowed (by construction)."""
        raise ArtifactTypeError(
            "PROSYT-style artifact types do not support runtime lifecycle changes"
        )
