"""repro — a reproduction of "Universal Resource Lifecycle Management" (Gelee).

The package implements the lifecycle model, the human-driven execution
runtime, the action/plug-in framework, the hosted-service architecture, the
monitoring cockpit and the UI widgets described in the paper (Báez, Casati,
Marchese — WISS/ICDE 2009), together with simulated managing applications
(Google Docs, MediaWiki, Zoho, Subversion, photo albums, a project web site)
that stand in for the live services the prototype integrated with.

Quickstart::

    from repro import build_standard_environment, LifecycleManager
    from repro.templates import eu_deliverable_lifecycle

    env = build_standard_environment()
    manager = LifecycleManager(env)
    model = eu_deliverable_lifecycle()
    manager.publish_model(model, actor="coordinator")

    doc = env.adapter("Google Doc").create_resource("D1.1 State of the art", owner="alice")
    instance = manager.instantiate(model.uri, doc, owner="alice")
    manager.start(instance.instance_id, actor="alice")
    manager.advance(instance.instance_id, actor="alice", to_phase_id="internalreview")
"""

from .clock import Clock, SimulatedClock, SystemClock
from .errors import GeleeError
from .events import BatchingEventBus, Event, EventBus, EventRecorder
from .model import (
    ActionCall,
    Annotation,
    BindingTime,
    Deadline,
    LifecycleBuilder,
    LifecycleModel,
    ParameterDefinition,
    Phase,
    Transition,
    VersionInfo,
)
from .actions import ActionRegistry, ActionType, ActionImplementation
from .resources import Credentials, ResourceDescriptor, ResourceManager
from .plugins import StandardEnvironment, build_standard_environment
from .runtime import (InstanceStatus, LifecycleInstance, LifecycleManager,
                      ShardedLifecycleManager)
from .accesscontrol import AccessPolicy, Role, User, UserDirectory
from .storage import ExecutionLog, FileRepository, InMemoryRepository, TemplateStore
from .monitoring import MonitoringCockpit, collect_alerts
from .widgets import DesignerSession, LifecycleWidget
from .scheduler import (LifecycleScheduler, SchedulerConfig, SchedulerDaemon,
                        TimerService)
from .service import GeleeService, RestRouter
from .client import GeleeApiError, GeleeClient
from .replication import (JournalShippingSource, ReadReplica,
                          ReplicationPrimary)

__version__ = "1.1.0"

__all__ = [
    "Clock",
    "SimulatedClock",
    "SystemClock",
    "GeleeError",
    "Event",
    "EventBus",
    "BatchingEventBus",
    "EventRecorder",
    "ActionCall",
    "Annotation",
    "BindingTime",
    "Deadline",
    "LifecycleBuilder",
    "LifecycleModel",
    "ParameterDefinition",
    "Phase",
    "Transition",
    "VersionInfo",
    "ActionRegistry",
    "ActionType",
    "ActionImplementation",
    "Credentials",
    "ResourceDescriptor",
    "ResourceManager",
    "StandardEnvironment",
    "build_standard_environment",
    "InstanceStatus",
    "LifecycleInstance",
    "LifecycleManager",
    "ShardedLifecycleManager",
    "AccessPolicy",
    "Role",
    "User",
    "UserDirectory",
    "ExecutionLog",
    "FileRepository",
    "InMemoryRepository",
    "TemplateStore",
    "MonitoringCockpit",
    "collect_alerts",
    "DesignerSession",
    "LifecycleWidget",
    "LifecycleScheduler",
    "SchedulerConfig",
    "SchedulerDaemon",
    "TimerService",
    "GeleeService",
    "RestRouter",
    "GeleeApiError",
    "GeleeClient",
    "JournalShippingSource",
    "ReadReplica",
    "ReplicationPrimary",
    "__version__",
]
