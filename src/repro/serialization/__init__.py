"""Serialization of lifecycle and action-type definitions.

The paper's Table I gives an XML schema for lifecycle definitions and Table II
one for action types; "the XML that describes the lifecycle definition is
self-contained" (§IV.B).  This package provides those XML codecs plus a JSON
codec used by the REST service layer and the widgets.
"""

from .lifecycle_xml import lifecycle_to_xml, lifecycle_from_xml
from .action_xml import action_type_to_xml, action_type_from_xml
from .json_codec import (
    lifecycle_to_json,
    lifecycle_from_json,
    instance_to_json,
    to_json,
    from_json,
)

__all__ = [
    "lifecycle_to_xml",
    "lifecycle_from_xml",
    "action_type_to_xml",
    "action_type_from_xml",
    "lifecycle_to_json",
    "lifecycle_from_json",
    "instance_to_json",
    "to_json",
    "from_json",
]
