"""XML codec for lifecycle definitions, following the paper's Table I.

The element structure mirrors the example in the paper::

    <process uri="...">
      <name>EU Project deliverable lifecycle</name>
      <version_info>...</version_info>
      <resource><resource_type>MediaWiki page</resource_type></resource>
      <phases_list>
        <phase id="internalreview">
          <name>Internal review</name>
          <action_call>
            <action>
              <name>Change access rights</name>
              <uri>http://www.liquidpub.org/a/chr</uri>
              <parameters><param id="paramID">value</param></parameters>
            </action>
          </action_call>
        </phase>
      </phases_list>
      <transition_list>
        <transition><from>BEGIN</from><to>elaboration</to></transition>
      </transition_list>
    </process>

Extensions the paper does not spell out (terminal flags, deadlines,
descriptions) are encoded as optional elements so that round-tripping a model
through XML loses nothing; a document containing only the paper's elements
still parses.
"""

from __future__ import annotations

import xml.etree.ElementTree as ET
from typing import Optional

from ..errors import SerializationError
from ..model import Deadline, LifecycleModel, Phase, Transition, VersionInfo
from ..model.actions import ActionCall


def lifecycle_to_xml(model: LifecycleModel, pretty: bool = True) -> str:
    """Serialize ``model`` to the Table I XML dialect."""
    process = ET.Element("process", {"uri": model.uri})
    ET.SubElement(process, "name").text = model.name
    if model.description:
        ET.SubElement(process, "description").text = model.description

    version = ET.SubElement(process, "version_info")
    ET.SubElement(version, "version_number").text = model.version.version_number
    ET.SubElement(version, "created_by").text = model.version.created_by
    created = model.version.creation_date
    ET.SubElement(version, "creation_date").text = (
        "{:02d}/{:02d}/{:04d}".format(created.day, created.month, created.year) if created else ""
    )

    resource = ET.SubElement(process, "resource")
    for resource_type in model.suggested_resource_types:
        ET.SubElement(resource, "resource_type").text = resource_type

    phases_list = ET.SubElement(process, "phases_list")
    for phase in model.phases:
        phase_el = ET.SubElement(phases_list, "phase", {"id": phase.phase_id})
        if phase.terminal:
            phase_el.set("terminal", "yes")
        ET.SubElement(phase_el, "name").text = phase.name
        if phase.description:
            ET.SubElement(phase_el, "description").text = phase.description
        if phase.deadline is not None:
            deadline_el = ET.SubElement(phase_el, "deadline")
            if phase.deadline.is_relative:
                deadline_el.set("days", str(phase.deadline.days))
            else:
                deadline_el.set("due", phase.deadline.due.isoformat())
            if phase.deadline.escalation != "notify":
                deadline_el.set("escalation", phase.deadline.escalation)
            if phase.deadline.timeout_to:
                deadline_el.set("timeout_to", phase.deadline.timeout_to)
            if phase.deadline.escalate_call_id:
                deadline_el.set("escalate_call", phase.deadline.escalate_call_id)
            if phase.deadline.description:
                deadline_el.text = phase.deadline.description
        for call in phase.actions:
            call_el = ET.SubElement(phase_el, "action_call")
            action_el = ET.SubElement(call_el, "action")
            ET.SubElement(action_el, "name").text = call.name
            ET.SubElement(action_el, "uri").text = call.action_uri
            params_el = ET.SubElement(action_el, "parameters")
            for param_name in sorted(call.parameters):
                param_el = ET.SubElement(params_el, "param", {"id": param_name})
                param_el.text = _render_value(call.parameters[param_name])

    transition_list = ET.SubElement(process, "transition_list")
    for transition in model.transitions:
        transition_el = ET.SubElement(transition_list, "transition")
        ET.SubElement(transition_el, "from").text = transition.source
        ET.SubElement(transition_el, "to").text = transition.target
        if transition.label:
            ET.SubElement(transition_el, "label").text = transition.label

    if pretty:
        _indent(process)
    return ET.tostring(process, encoding="unicode")


def lifecycle_from_xml(document: str) -> LifecycleModel:
    """Parse a Table I XML document back into a :class:`LifecycleModel`."""
    try:
        root = ET.fromstring(document)
    except ET.ParseError as exc:
        raise SerializationError("lifecycle XML is not well formed: {}".format(exc)) from exc
    if root.tag != "process":
        raise SerializationError("expected a <process> root element, got <{}>".format(root.tag))

    name = _text(root, "name")
    if not name:
        raise SerializationError("the lifecycle definition has no <name>")

    model = LifecycleModel(name=name, description=_text(root, "description"))
    uri = root.get("uri", "").strip()
    if uri:
        model.uri = uri

    version_el = root.find("version_info")
    if version_el is not None:
        model.version = VersionInfo.parse_paper_date(
            version_number=_text(version_el, "version_number") or "1.0",
            created_by=_text(version_el, "created_by"),
            paper_date=_text(version_el, "creation_date"),
        )

    resource_el = root.find("resource")
    if resource_el is not None:
        for type_el in resource_el.findall("resource_type"):
            if type_el.text and type_el.text.strip():
                model.suggested_resource_types.append(type_el.text.strip())

    phases_list = root.find("phases_list")
    if phases_list is not None:
        for phase_el in phases_list.findall("phase"):
            model.add_phase(_parse_phase(phase_el))

    transition_list = root.find("transition_list")
    if transition_list is not None:
        for transition_el in transition_list.findall("transition"):
            source = _text(transition_el, "from")
            target = _text(transition_el, "to")
            if not source or not target:
                raise SerializationError("a <transition> needs both <from> and <to>")
            label = _text(transition_el, "label")
            model._transitions.append(Transition(source=source, target=target, label=label))

    return model


# ---------------------------------------------------------------------- private

def _parse_phase(phase_el: ET.Element) -> Phase:
    phase_id = phase_el.get("id", "").strip()
    if not phase_id:
        raise SerializationError("a <phase> element has no id attribute")
    terminal = phase_el.get("terminal", "").strip().lower() in {"yes", "true", "1"}
    actions = []
    for call_el in phase_el.findall("action_call"):
        action_el = call_el.find("action")
        if action_el is None:
            raise SerializationError("an <action_call> in phase {!r} has no <action>".format(phase_id))
        action_uri = _text(action_el, "uri")
        if not action_uri:
            raise SerializationError("an action in phase {!r} has no <uri>".format(phase_id))
        parameters = {}
        params_el = action_el.find("parameters")
        if params_el is not None:
            for param_el in params_el.findall("param"):
                param_name = param_el.get("id", "").strip()
                if not param_name:
                    raise SerializationError(
                        "a <param> in phase {!r} has no id attribute".format(phase_id)
                    )
                parameters[param_name] = (param_el.text or "").strip()
        actions.append(ActionCall(action_uri=action_uri, name=_text(action_el, "name"),
                                  parameters=parameters))

    deadline = None
    deadline_el = phase_el.find("deadline")
    if deadline_el is not None:
        days_raw = deadline_el.get("days")
        due_raw = deadline_el.get("due")
        escalation_attrs = {
            "escalation": deadline_el.get("escalation", "notify"),
            "timeout_to": deadline_el.get("timeout_to"),
            "escalate_call_id": deadline_el.get("escalate_call"),
        }
        # "0" is a real relative deadline (due immediately on entry), so the
        # presence check must not use string truthiness alone.
        if days_raw is not None and days_raw != "":
            deadline = Deadline(days=float(days_raw),
                                description=(deadline_el.text or "").strip(),
                                **escalation_attrs)
        elif due_raw:
            from datetime import datetime

            deadline = Deadline(due=datetime.fromisoformat(due_raw),
                                description=(deadline_el.text or "").strip(),
                                **escalation_attrs)

    return Phase(
        phase_id=phase_id,
        name=_text(phase_el, "name") or phase_id,
        actions=actions,
        terminal=terminal,
        description=_text(phase_el, "description"),
        deadline=deadline,
    )


def _text(parent: ET.Element, tag: str) -> str:
    element = parent.find(tag)
    if element is None or element.text is None:
        return ""
    return element.text.strip()


def _render_value(value) -> str:
    if isinstance(value, (list, tuple)):
        return ", ".join(str(item) for item in value)
    return "" if value is None else str(value)


def _indent(element: ET.Element, level: int = 0) -> None:
    pad = "\n" + "  " * level
    if len(element):
        if not element.text or not element.text.strip():
            element.text = pad + "  "
        for child in element:
            _indent(child, level + 1)
            if not child.tail or not child.tail.strip():
                child.tail = pad + "  "
        if not element[-1].tail or not element[-1].tail.strip():
            element[-1].tail = pad
    elif level and (not element.tail or not element.tail.strip()):
        element.tail = pad
