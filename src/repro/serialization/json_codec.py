"""JSON codec used by the REST service layer, the widgets and the storage tier.

The paper's system exposes SOAP and REST interfaces; our REST facade exchanges
JSON documents.  These helpers keep the JSON representation in one place so
that the service layer, the repositories and the widgets all agree on it.
"""

from __future__ import annotations

import json
from typing import Any

from ..errors import SerializationError
from ..model import LifecycleModel


def to_json(payload: Any, pretty: bool = False) -> str:
    """Serialize an arbitrary JSON-compatible payload."""
    try:
        if pretty:
            return json.dumps(payload, indent=2, sort_keys=True, default=str)
        return json.dumps(payload, sort_keys=True, default=str)
    except (TypeError, ValueError) as exc:
        raise SerializationError("payload is not JSON-serializable: {}".format(exc)) from exc


def from_json(document: str) -> Any:
    """Parse a JSON document, raising :class:`SerializationError` on bad input."""
    try:
        return json.loads(document)
    except (TypeError, ValueError) as exc:
        raise SerializationError("document is not valid JSON: {}".format(exc)) from exc


def lifecycle_to_json(model: LifecycleModel, pretty: bool = False) -> str:
    """Serialize a lifecycle model to JSON."""
    return to_json(model.to_dict(), pretty=pretty)


def lifecycle_from_json(document: str) -> LifecycleModel:
    """Parse a lifecycle model from its JSON form."""
    data = from_json(document)
    if not isinstance(data, dict):
        raise SerializationError("a lifecycle JSON document must be an object")
    try:
        return LifecycleModel.from_dict(data)
    except KeyError as exc:
        raise SerializationError("lifecycle JSON is missing field {}".format(exc)) from exc


def instance_to_json(instance, pretty: bool = False) -> str:
    """Serialize a lifecycle instance snapshot to JSON.

    Accepts any object exposing ``to_dict()`` (kept duck-typed to avoid a
    circular import with :mod:`repro.runtime`).
    """
    return to_json(instance.to_dict(), pretty=pretty)
