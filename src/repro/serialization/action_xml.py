"""XML codec for action-type definitions, following the paper's Table II.

The structure mirrors the example in the paper::

    <action_type uri="http://www.liquidpub.org/a/chr">
      <name>Change Access Rights</name>
      <version_info>...</version_info>
      <parameters>
        <param bindingTime="[def|inst|call|any]" required="[yes|no]">
          <name></name>
          <value></value>
        </param>
      </parameters>
    </action_type>
"""

from __future__ import annotations

import xml.etree.ElementTree as ET

from ..actions.definitions import ActionType
from ..errors import SerializationError
from ..model.parameters import BindingTime, ParameterDefinition
from ..model.versioning import VersionInfo
from .lifecycle_xml import _indent, _text  # reuse the same helpers


def action_type_to_xml(action_type: ActionType, pretty: bool = True) -> str:
    """Serialize an :class:`ActionType` to the Table II XML dialect."""
    root = ET.Element("action_type", {"uri": action_type.uri})
    ET.SubElement(root, "name").text = action_type.name
    if action_type.description:
        ET.SubElement(root, "description").text = action_type.description
    if action_type.category:
        ET.SubElement(root, "category").text = action_type.category

    version = ET.SubElement(root, "version_info")
    ET.SubElement(version, "version_number").text = action_type.version.version_number
    ET.SubElement(version, "created_by").text = action_type.version.created_by
    created = action_type.version.creation_date
    ET.SubElement(version, "creation_date").text = (
        "{:02d}/{:02d}/{:04d}".format(created.day, created.month, created.year) if created else ""
    )

    params_el = ET.SubElement(root, "parameters")
    for parameter in action_type.parameters:
        param_el = ET.SubElement(
            params_el,
            "param",
            {
                "bindingTime": parameter.binding_time.value,
                "required": "yes" if parameter.required else "no",
            },
        )
        ET.SubElement(param_el, "name").text = parameter.name
        ET.SubElement(param_el, "value").text = (
            "" if parameter.default is None else str(parameter.default)
        )
        if parameter.description:
            ET.SubElement(param_el, "description").text = parameter.description

    if pretty:
        _indent(root)
    return ET.tostring(root, encoding="unicode")


def action_type_from_xml(document: str) -> ActionType:
    """Parse a Table II XML document into an :class:`ActionType`."""
    try:
        root = ET.fromstring(document)
    except ET.ParseError as exc:
        raise SerializationError("action type XML is not well formed: {}".format(exc)) from exc
    if root.tag != "action_type":
        raise SerializationError(
            "expected an <action_type> root element, got <{}>".format(root.tag)
        )
    uri = root.get("uri", "").strip()
    if not uri:
        raise SerializationError("the action type definition has no uri attribute")
    name = _text(root, "name")
    if not name:
        raise SerializationError("the action type definition has no <name>")

    version_el = root.find("version_info")
    version = VersionInfo()
    if version_el is not None:
        version = VersionInfo.parse_paper_date(
            version_number=_text(version_el, "version_number") or "1.0",
            created_by=_text(version_el, "created_by"),
            paper_date=_text(version_el, "creation_date"),
        )

    parameters = []
    params_el = root.find("parameters")
    if params_el is not None:
        for param_el in params_el.findall("param"):
            param_name = _text(param_el, "name")
            if not param_name:
                raise SerializationError("a <param> of action {!r} has no <name>".format(name))
            raw_binding = param_el.get("bindingTime", "any").strip("[]")
            # The paper's example shows the literal "[def|inst|call|any]";
            # treat the template placeholder as "any".
            binding = (
                BindingTime.ANY if "|" in raw_binding else BindingTime.parse(raw_binding)
            )
            raw_required = param_el.get("required", "no").strip("[]").lower()
            required = raw_required in {"yes", "true", "1"}
            default = _text(param_el, "value") or None
            parameters.append(
                ParameterDefinition(
                    name=param_name,
                    binding_time=binding,
                    required=required,
                    default=default,
                    description=_text(param_el, "description"),
                )
            )

    return ActionType(
        uri=uri,
        name=name,
        parameters=parameters,
        description=_text(root, "description"),
        category=_text(root, "category"),
        version=version,
    )
