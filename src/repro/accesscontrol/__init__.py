"""Roles and access rights (paper §IV.D).

"During the lifecycle modeling and evolution, people are playing different
roles. … the lifecycle manager, the lifecycle instance owner and the token
owner.  From the point of view of the resource we have also the resource
owner. … access rules over the resource are performed by the platform that
provides the resource, while lifecycle-related permissions are supported by
the model."
"""

from .roles import Role, User, UserDirectory
from .policy import AccessPolicy, Permission, VisibilityRules

__all__ = ["Role", "User", "UserDirectory", "AccessPolicy", "Permission", "VisibilityRules"]
