"""Users and roles.

The paper names four roles; we add ``STAKEHOLDER`` for read-only observers
(the "managers, resource owners, and stakeholders in general" who see widgets
with different views, §V.C).

Roles are assigned *in a scope*: globally, per lifecycle model, or per
lifecycle instance — a user can be the instance owner of one deliverable and a
mere stakeholder of another.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, List, Optional, Set, Tuple

from ..errors import ValidationError


class Role(str, Enum):
    """The roles of §IV.D."""

    LIFECYCLE_MANAGER = "lifecycle_manager"    # designs and modifies lifecycles
    INSTANCE_OWNER = "instance_owner"          # drives and modifies an instance
    TOKEN_OWNER = "token_owner"                # performs transitions only
    RESOURCE_OWNER = "resource_owner"          # full rights on the resource itself
    STAKEHOLDER = "stakeholder"                # read-only monitoring access


#: Scope marker meaning "everywhere".
GLOBAL_SCOPE = "*"


@dataclass
class User:
    """A registered user of the hosted service."""

    user_id: str
    display_name: str = ""
    email: str = ""
    organization: str = ""

    def __post_init__(self):
        if not self.user_id or not self.user_id.strip():
            raise ValidationError(["a user needs a non-empty user_id"])
        if not self.display_name:
            self.display_name = self.user_id


class UserDirectory:
    """The users-and-roles repository of the data tier (Fig. 2).

    Role assignments are ``(user, role, scope)`` triples where the scope is a
    model URI, an instance id, a resource URI, or :data:`GLOBAL_SCOPE`.
    """

    def __init__(self):
        self._users: Dict[str, User] = {}
        self._assignments: Set[Tuple[str, Role, str]] = set()

    # -------------------------------------------------------------------- users
    def register(self, user: User) -> User:
        self._users[user.user_id] = user
        return user

    def register_many(self, *user_ids: str) -> List[User]:
        return [self.register(User(user_id=user_id)) for user_id in user_ids]

    def user(self, user_id: str) -> Optional[User]:
        return self._users.get(user_id)

    def users(self) -> List[User]:
        return list(self._users.values())

    def known(self, user_id: str) -> bool:
        return user_id in self._users

    # -------------------------------------------------------------------- roles
    def assign(self, user_id: str, role: Role, scope: str = GLOBAL_SCOPE) -> None:
        """Grant ``role`` to ``user_id`` within ``scope``."""
        if user_id not in self._users:
            self.register(User(user_id=user_id))
        self._assignments.add((user_id, role, scope))

    def revoke(self, user_id: str, role: Role, scope: str = GLOBAL_SCOPE) -> None:
        self._assignments.discard((user_id, role, scope))

    def has_role(self, user_id: str, role: Role, scope: str = GLOBAL_SCOPE) -> bool:
        """True when the user has the role in the scope or globally."""
        if (user_id, role, scope) in self._assignments:
            return True
        return (user_id, role, GLOBAL_SCOPE) in self._assignments

    def roles_of(self, user_id: str, scope: str = None) -> List[Role]:
        roles = []
        for assigned_user, role, assigned_scope in self._assignments:
            if assigned_user != user_id:
                continue
            if scope is None or assigned_scope in (scope, GLOBAL_SCOPE):
                roles.append(role)
        return sorted(set(roles), key=lambda role: role.value)

    def users_with_role(self, role: Role, scope: str = None) -> List[str]:
        users = []
        for assigned_user, assigned_role, assigned_scope in self._assignments:
            if assigned_role != role:
                continue
            if scope is None or assigned_scope in (scope, GLOBAL_SCOPE):
                users.append(assigned_user)
        return sorted(set(users))

    def assignments(self) -> List[Tuple[str, Role, str]]:
        return sorted(self._assignments, key=lambda item: (item[0], item[1].value, item[2]))
