"""Permission policy and widget visibility rules.

The policy answers two questions:

* may a user perform an *operation* on a lifecycle entity? — used by the
  lifecycle manager before design-time and runtime operations;
* what may a user *see* in a widget? — "different users could have different
  views of the same lifecycle (i.e., managers, resource owners, and
  stakeholders in general)" (§V.C).

Resource-level rights are deliberately out of scope here: they belong to the
managing application (the substrates enforce them), exactly as the paper
prescribes.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Iterable, List, Optional, Set

from .roles import GLOBAL_SCOPE, Role, UserDirectory


class Permission(str, Enum):
    """Lifecycle-level operations subject to permission checks."""

    PUBLISH_MODEL = "model.publish"
    CREATE_INSTANCE = "instance.create"
    MOVE_TOKEN = "instance.move"
    ANNOTATE = "instance.annotate"
    CONFIGURE = "instance.configure"
    CHANGE_MODEL = "instance.change_model"
    VIEW = "view"


#: Which roles grant which permissions (any scope match suffices).
ROLE_PERMISSIONS = {
    Role.LIFECYCLE_MANAGER: {
        Permission.PUBLISH_MODEL,
        Permission.CREATE_INSTANCE,
        Permission.MOVE_TOKEN,
        Permission.ANNOTATE,
        Permission.CONFIGURE,
        Permission.CHANGE_MODEL,
        Permission.VIEW,
    },
    Role.INSTANCE_OWNER: {
        Permission.CREATE_INSTANCE,
        Permission.MOVE_TOKEN,
        Permission.ANNOTATE,
        Permission.CONFIGURE,
        Permission.CHANGE_MODEL,
        Permission.VIEW,
    },
    Role.TOKEN_OWNER: {
        Permission.MOVE_TOKEN,
        Permission.ANNOTATE,
        Permission.VIEW,
    },
    Role.RESOURCE_OWNER: {
        Permission.VIEW,
    },
    Role.STAKEHOLDER: {
        Permission.VIEW,
    },
}


class AccessPolicy:
    """Role-based permission checks used by the lifecycle manager."""

    def __init__(self, directory: UserDirectory, open_world: bool = False):
        """``open_world=True`` lets unknown users act (useful for demos);
        by default unknown users are denied everything except nothing."""
        self._directory = directory
        self._open_world = open_world

    @property
    def directory(self) -> UserDirectory:
        return self._directory

    # ------------------------------------------------------------------ checks
    def allows(self, user_id: str, operation: str, subject_id: str) -> bool:
        """True when ``user_id`` may perform ``operation`` on ``subject_id``."""
        try:
            permission = Permission(operation)
        except ValueError:
            # Unknown operations are treated as view-level.
            permission = Permission.VIEW
        if self._open_world and not self._directory.known(user_id):
            return True
        for role, permissions in ROLE_PERMISSIONS.items():
            if permission not in permissions:
                continue
            if self._directory.has_role(user_id, role, subject_id):
                return True
            if self._directory.has_role(user_id, role, GLOBAL_SCOPE):
                return True
        return False

    def can_move_token(self, user_id: str, instance) -> bool:
        """Token moves: instance owners, listed token owners, global managers."""
        if self._open_world and not self._directory.known(user_id):
            return True
        if user_id == instance.owner or user_id in instance.token_owners:
            return True
        if self._directory.has_role(user_id, Role.LIFECYCLE_MANAGER, GLOBAL_SCOPE):
            return True
        return self.allows(user_id, Permission.MOVE_TOKEN.value, instance.instance_id)

    def can_view(self, user_id: str, subject_id: str) -> bool:
        if self._open_world and not self._directory.known(user_id):
            return True
        return self.allows(user_id, Permission.VIEW.value, subject_id)

    # --------------------------------------------------------------- convenience
    def grant_manager(self, user_id: str, scope: str = GLOBAL_SCOPE) -> None:
        self._directory.assign(user_id, Role.LIFECYCLE_MANAGER, scope)

    def grant_instance_owner(self, user_id: str, instance_id: str) -> None:
        self._directory.assign(user_id, Role.INSTANCE_OWNER, instance_id)

    def grant_token_owner(self, user_id: str, instance_id: str) -> None:
        self._directory.assign(user_id, Role.TOKEN_OWNER, instance_id)

    def grant_stakeholder(self, user_id: str, scope: str = GLOBAL_SCOPE) -> None:
        self._directory.assign(user_id, Role.STAKEHOLDER, scope)


@dataclass
class VisibilityRules:
    """What a widget shows to a given user (auto-discovered from the lifecycle).

    "Attributes like access rules are automatically auto-discovered from the
    lifecycle definition" (§V.C): owners and managers see controls and
    history; stakeholders see the phase map and status only; unknown users
    must authenticate (``requires_authentication``).
    """

    show_controls: bool = False
    show_history: bool = False
    show_annotations: bool = False
    show_actions: bool = False
    requires_authentication: bool = False

    @classmethod
    def for_user(cls, policy: Optional[AccessPolicy], user_id: Optional[str],
                 instance) -> "VisibilityRules":
        """Derive the rules a widget applies for ``user_id`` on ``instance``."""
        if policy is None:
            # No policy configured: everyone sees everything (single-user mode).
            return cls(show_controls=True, show_history=True, show_annotations=True,
                       show_actions=True, requires_authentication=False)
        if user_id is None or not policy.directory.known(user_id):
            return cls(requires_authentication=True)
        can_move = policy.can_move_token(user_id, instance)
        can_view = policy.can_view(user_id, instance.instance_id) or can_move
        return cls(
            show_controls=can_move,
            show_history=can_view,
            show_annotations=can_view,
            show_actions=can_move,
            requires_authentication=False,
        )
