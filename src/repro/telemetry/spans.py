"""Span-tree tracing layered on the flat correlation ids of ``trace.py``.

PR 8 gave every request an ambient ``X-Request-Id`` that survives shard
fan-out, the worker pool, the journal and the replication stream.  That
answers *which* records a request touched, but not *where the request
spent its time*.  This module upgrades the flat id into a causal span
tree:

- :class:`Span` — one timed operation (``trace_id``/``span_id``/
  ``parent_id``/``name``/``start``/``end``/``attrs``/``status``).
- :class:`span_scope` — context manager that opens a child span of
  whatever span is active on this thread, records it into the ambient
  :class:`SpanStore` on exit, and stamps ``status="error"`` when the
  block raises.  It composes with the flat layer: given a captured
  :class:`SpanContext` it *also* re-activates the trace id via
  :class:`~repro.telemetry.trace.trace_scope`, so thread-hop sites need
  one context manager, not two.
- :class:`SpanStore` — bounded, thread-safe ring buffer of traces with
  *slow-trace retention*: traces evicted from the ring are kept as
  exemplars when their wall time exceeded a threshold, so "the slowest
  request this hour" is still retrievable after the ring has churned.

Thread-locals do not cross the :class:`~repro.workers.WorkerPool`
boundary, so submission sites capture :func:`current_span_context` *now*
and hand it to the ``span_scope`` opened on the worker — exactly the
discipline the flat trace ids already follow, extended with a parent
span id so the hop shows up as an edge in the tree rather than a new
root.

Everything here is allocation-light and no-ops cheaply: with the store
disabled (``SpanStore(enabled=False)``) or no trace id active,
``span_scope`` records nothing, which is what keeps the instrumentation
inside the <3% telemetry budget (``BENCH_telemetry.json``).
"""

from __future__ import annotations

import itertools
import threading
import time
from collections import OrderedDict
from typing import Any, Dict, List, Optional, Tuple

from .trace import _state as _trace_state  # shared thread-local, read inline
from .trace import current_trace_id, trace_scope

__all__ = [
    "Span",
    "SpanContext",
    "SpanStore",
    "current_span_context",
    "current_span_id",
    "get_span_store",
    "new_span_id",
    "set_span_store",
    "span_scope",
]

_state = threading.local()


#: Process-wide span-id sequence.  ``next()`` on a ``count`` is atomic
#: under the GIL, and a bare integer is ~30x cheaper than ``uuid4().hex``
#: — span creation sits on the dispatch hot path, inside the <3% budget.
_span_ids = itertools.count(1)

#: Spans are timed with ``perf_counter`` (monotonic, high resolution);
#: an anchor pair maps those readings back to wall-clock epoch seconds
#: for display, so the hot path pays one clock call per edge instead of
#: two.  Each :class:`SpanStore` captures its *own* anchors at
#: construction — in a long-lived process the wall clock (NTP steps,
#: suspend/resume) drifts away from ``perf_counter``, and a store built
#: fresh should report timestamps anchored now, not at import.  This
#: module-level pair only backs :meth:`Span.to_dict` called without a
#: store.
_ANCHOR_WALL = time.time()
_ANCHOR_PERF = time.perf_counter()


def _to_wall(perf_seconds: Optional[float]) -> Optional[float]:
    if perf_seconds is None:
        return None
    return _ANCHOR_WALL + (perf_seconds - _ANCHOR_PERF)


def new_span_id() -> int:
    """A fresh span id (an integer — unique in-process, not globally)."""
    return next(_span_ids)


def current_span_id() -> Optional[int]:
    """The span id active on this thread, or ``None`` outside any span."""
    return getattr(_state, "span_id", None)


class SpanContext:
    """Immutable (trace_id, span_id) snapshot for crossing thread boundaries.

    ``span_id`` may be ``None`` (a trace is active but no span is — e.g.
    the span store is disabled); ``trace_id`` may be ``None`` too, in
    which case re-activating the context is a complete no-op.
    """

    __slots__ = ("trace_id", "span_id")

    def __init__(self, trace_id: Optional[str], span_id: Optional[int] = None):
        self.trace_id = trace_id
        self.span_id = span_id

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "SpanContext(trace_id={!r}, span_id={!r})".format(
            self.trace_id, self.span_id)


def current_span_context() -> SpanContext:
    """Capture the ambient trace + span ids for hand-off to another thread."""
    return SpanContext(current_trace_id(), current_span_id())


class Span:
    """One timed operation inside a trace.

    ``start``/``end`` are ``perf_counter`` seconds (monotonic, so short
    spans are not quantised away); :meth:`to_dict` re-anchors them to
    wall-clock epoch seconds for display and cross-node alignment.
    """

    __slots__ = ("trace_id", "span_id", "parent_id", "name", "start", "end",
                 "attrs", "status", "error")

    def __init__(self, trace_id: str, span_id: int, parent_id: Optional[int],
                 name: str, attrs: Optional[Dict[str, Any]] = None):
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.attrs = attrs if attrs is not None else {}
        self.start = time.perf_counter()
        self.end: Optional[float] = None
        self.status = "in_progress"
        self.error: Optional[str] = None

    def finish(self, status: str = "ok", error: Optional[str] = None) -> None:
        self.end = time.perf_counter()
        self.status = status
        self.error = error

    @property
    def duration_seconds(self) -> Optional[float]:
        if self.end is None:
            return None
        return self.end - self.start

    def to_dict(self, to_wall=None) -> Dict[str, Any]:
        convert = to_wall if to_wall is not None else _to_wall
        document = {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "start": convert(self.start),
            "end": convert(self.end),
            "duration_ms": (None if self.end is None
                            else round((self.end - self.start) * 1000.0, 3)),
            "status": self.status,
            "attrs": dict(self.attrs),
        }
        if self.error is not None:
            document["error"] = self.error
        return document


class SpanStore:
    """Bounded ring buffer of finished spans, grouped by trace.

    Eviction is trace-granular: once ``max_traces`` distinct traces are
    held, the oldest trace is dropped — unless its wall time (first span
    start to last span end) exceeded ``slow_threshold_seconds``, in which
    case it moves to a secondary bounded exemplar map so slow outliers
    outlive ring churn.  Per-trace span counts are capped at
    ``max_spans_per_trace``; overflow spans are counted, not stored, so a
    runaway fan-out cannot balloon memory.
    """

    def __init__(self, max_traces: int = 256, max_spans_per_trace: int = 512,
                 slow_threshold_seconds: float = 1.0, max_slow_traces: int = 32,
                 enabled: bool = True):
        self.enabled = enabled
        self._max_traces = max(1, int(max_traces))
        self._max_spans = max(1, int(max_spans_per_trace))
        self._slow_threshold = float(slow_threshold_seconds)
        self._max_slow = max(0, int(max_slow_traces))
        # trace_id -> (spans, dropped_count); insertion order = ring order.
        self._traces: "OrderedDict[str, Tuple[List[Span], int]]" = OrderedDict()
        self._slow: "OrderedDict[str, Tuple[List[Span], int]]" = OrderedDict()
        self._lock = threading.Lock()
        self._recorded_gone = 0  # spans recorded but since discarded
        self._dropped = 0
        self._evicted = 0
        # Per-store wall-clock anchors: captured at construction, not at
        # import, so a store built into a long-lived process reports
        # timestamps that have not drifted from the wall clock.
        self._anchor_wall = time.time()
        self._anchor_perf = time.perf_counter()

    def to_wall(self, perf_seconds: Optional[float]) -> Optional[float]:
        """Map a ``perf_counter`` reading onto this store's wall anchor."""
        if perf_seconds is None:
            return None
        return self._anchor_wall + (perf_seconds - self._anchor_perf)

    def reanchor(self) -> None:
        """Re-capture the wall/perf anchor pair (e.g. after an NTP step)."""
        self._anchor_wall = time.time()
        self._anchor_perf = time.perf_counter()

    # -- recording ---------------------------------------------------------

    def add(self, span: Span) -> None:
        """Record one finished span.

        The common case — the trace already has an entry with room — is
        lock-free: ``dict.get`` and ``list.append`` are atomic under the
        GIL, and this runs on the dispatch hot path for every span, so a
        contended lock here is what the <3% telemetry budget would die
        on.  The races are benign: an append may land on a trace entry
        concurrently evicted to the slow map (same list object — the
        span still arrives) and the per-trace cap may overshoot by a few
        spans under concurrency (it bounds memory, not an exact count).
        Trace creation, eviction and drop-counting stay under the lock.
        """
        if not self.enabled:
            return
        entry = self._traces.get(span.trace_id)
        if entry is not None and len(entry[0]) < self._max_spans:
            entry[0].append(span)
            return
        with self._lock:
            entry = self._traces.get(span.trace_id)
            if entry is None:
                # Revive a slow exemplar if the trace is still accumulating
                # (e.g. replication applies arriving after ring eviction).
                entry = self._slow.pop(span.trace_id, None)
                if entry is None:
                    entry = ([], 0)
                self._traces[span.trace_id] = entry
                while len(self._traces) > self._max_traces:
                    self._evict_oldest_locked()
            spans, dropped = entry
            if len(spans) >= self._max_spans:
                self._traces[span.trace_id] = (spans, dropped + 1)
                self._dropped += 1
                return
            spans.append(span)

    def _evict_oldest_locked(self) -> None:
        trace_id, entry = self._traces.popitem(last=False)
        self._evicted += 1
        if self._max_slow and self._trace_wall_seconds(entry[0]) >= self._slow_threshold:
            self._slow[trace_id] = entry
            while len(self._slow) > self._max_slow:
                _, aged = self._slow.popitem(last=False)
                self._recorded_gone += len(aged[0])
        else:
            self._recorded_gone += len(entry[0])

    @staticmethod
    def _trace_wall_seconds(spans: List[Span]) -> float:
        if not spans:
            return 0.0
        first = min(span.start for span in spans)
        last = max(span.end if span.end is not None else span.start
                   for span in spans)
        return last - first

    # -- retrieval ---------------------------------------------------------

    def trace_ids(self) -> List[str]:
        with self._lock:
            return list(self._traces.keys()) + list(self._slow.keys())

    def traces(self, limit: Optional[int] = None) -> List[Dict[str, Any]]:
        """Newest-first summaries of held traces; slow exemplars flagged."""
        with self._lock:
            rows = [(trace_id, entry, False)
                    for trace_id, entry in self._traces.items()]
            rows.extend((trace_id, entry, True)
                        for trace_id, entry in self._slow.items())
        summaries = []
        for trace_id, (spans, dropped), retained in rows:
            roots = [span for span in spans if span.parent_id is None]
            summaries.append({
                "trace_id": trace_id,
                "span_count": len(spans),
                "dropped_spans": dropped,
                "root": roots[0].name if roots else (spans[0].name if spans else None),
                "started_at": self.to_wall(min((span.start for span in spans),
                                               default=None)),
                "duration_ms": round(self._trace_wall_seconds(spans) * 1000.0, 3),
                "errors": sum(1 for span in spans if span.status == "error"),
                "retained": "slow" if retained else "ring",
            })
        summaries.sort(key=lambda row: row["started_at"] or 0.0, reverse=True)
        if limit is not None:
            summaries = summaries[:max(0, int(limit))]
        return summaries

    def trace(self, trace_id: str) -> Optional[Dict[str, Any]]:
        """The full timeline + nested tree for one trace, or ``None``."""
        with self._lock:
            entry = self._traces.get(trace_id)
            retained = "ring"
            if entry is None:
                entry = self._slow.get(trace_id)
                retained = "slow"
            if entry is None:
                return None
            spans = list(entry[0])
            dropped = entry[1]
        spans.sort(key=lambda span: span.start)
        documents = [span.to_dict(to_wall=self.to_wall) for span in spans]
        return {
            "trace_id": trace_id,
            "span_count": len(documents),
            "dropped_spans": dropped,
            "duration_ms": round(self._trace_wall_seconds(spans) * 1000.0, 3),
            "retained": retained,
            "spans": documents,
            "tree": self._build_tree(documents),
        }

    @staticmethod
    def _build_tree(documents: List[Dict[str, Any]]) -> List[Dict[str, Any]]:
        """Nest span dicts by parent_id; parentless/orphaned spans are roots."""
        by_id = {}
        for document in documents:
            node = dict(document)
            node["children"] = []
            by_id[node["span_id"]] = node
        roots = []
        for node in by_id.values():
            parent = by_id.get(node["parent_id"]) if node["parent_id"] else None
            if parent is not None and parent is not node:
                parent["children"].append(node)
            else:
                roots.append(node)
        return roots

    # -- introspection -----------------------------------------------------

    def stats(self) -> Dict[str, Any]:
        with self._lock:
            # Recorded = still held + discarded with their trace; counted
            # at query time so the hot recording path stays counter-free.
            held = sum(len(entry[0]) for entry in self._traces.values())
            held += sum(len(entry[0]) for entry in self._slow.values())
            return {
                "enabled": self.enabled,
                "traces": len(self._traces),
                "slow_traces": len(self._slow),
                "spans_recorded": held + self._recorded_gone,
                "spans_dropped": self._dropped,
                "traces_evicted": self._evicted,
                "max_traces": self._max_traces,
                "max_spans_per_trace": self._max_spans,
                "slow_threshold_seconds": self._slow_threshold,
            }

    def reset(self) -> None:
        with self._lock:
            self._traces.clear()
            self._slow.clear()
            self._recorded_gone = self._dropped = self._evicted = 0


class span_scope:
    """Open a span for a block; record it into the store on exit.

    Three usage shapes:

    - ``with span_scope("journal.append", seq=7):`` — child of whatever
      span is active on this thread, under the current trace id.
    - ``with span_scope("shard.drain", context=ctx):`` — cross-thread
      hop: re-activates ``ctx.trace_id`` (exactly like ``trace_scope``)
      and parents the new span on ``ctx.span_id``.  The trace id is
      re-activated *even when span recording is off*, so flat
      ``origin_request_id`` propagation never regresses.
    - ``with span_scope(...) as span:`` — ``span`` is the live
      :class:`Span` (or ``None`` when recording is off); mutate
      ``span.attrs`` to annotate after the fact.

    If the block raises, the span finishes with ``status="error"`` and
    the exception type as ``error``; the exception propagates.
    """

    __slots__ = ("_name", "_attrs", "_context", "_store", "_span",
                 "_trace_scope", "_previous_span_id")

    def __init__(self, name: str, context: Optional[SpanContext] = None,
                 store: Optional["SpanStore"] = None, **attrs: Any):
        self._name = name
        self._attrs = attrs
        self._context = context
        self._store = store
        self._span: Optional[Span] = None
        self._trace_scope: Optional[trace_scope] = None
        self._previous_span_id: Optional[str] = None

    def __enter__(self) -> Optional[Span]:
        # Hot path: thread-locals are read through direct ``getattr`` and
        # the store through the module global — every call saved here is
        # paid back millions of times on the dispatch path.
        context = self._context
        previous = getattr(_state, "span_id", None)
        if context is not None:
            self._trace_scope = trace_scope(context.trace_id)
            self._trace_scope.__enter__()
            parent_id = context.span_id
        else:
            parent_id = previous
        store = self._store
        if store is None:
            store = self._store = _default_store
        trace_id = getattr(_trace_state, "trace_id", None)
        if not store.enabled or trace_id is None:
            return None
        self._previous_span_id = previous
        span = self._span = Span(trace_id, next(_span_ids), parent_id,
                                 self._name, self._attrs or None)
        _state.span_id = span.span_id
        return span

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> None:
        span = self._span
        if span is not None:
            _state.span_id = self._previous_span_id
            span.end = time.perf_counter()
            if exc_type is not None:
                span.status = "error"
                span.error = exc_type.__name__
            else:
                span.status = "ok"
            self._store.add(span)
        if self._trace_scope is not None:
            self._trace_scope.__exit__(exc_type, exc, tb)


#: Process-wide default store; swap with :func:`set_span_store` to isolate
#: (tests) or disable (benchmark baselines) — mirrors ``get_registry()``.
_default_store = SpanStore()


def get_span_store() -> SpanStore:
    return _default_store


def set_span_store(store: SpanStore) -> SpanStore:
    global _default_store
    _default_store = store
    return store
