"""A bounded in-memory ring of structured log records, queryable by trace.

``JsonLogEmitter`` writes JSON lines to stderr and they are gone; the
:class:`LogRing` keeps the last N records in process memory so
``GET /v2/runtime/logs?trace_id=...`` can hand back the log lines that
belong to a span tree.  The ring is a callable, so it can be used
directly as an emitter sink (``JsonLogEmitter(sink=ring)``), and the
process-default ring (:func:`get_log_ring` / :func:`set_log_ring`)
additionally receives a copy of every record any emitter writes — see
``JsonLogEmitter._write`` — so existing stderr logging keeps working
while becoming queryable.

Records are stamped with a monotonically increasing ``seq`` on entry;
query filters are ANDed: ``trace_id`` (exact), ``level`` (minimum
severity), ``component`` (prefix, so ``"replication"`` matches
``"replication.stream"``), ``since`` (ISO timestamp, compared
lexicographically — safe because every record's ``ts`` comes from the
same ``isoformat()``).
"""

from __future__ import annotations

import threading
from typing import Any, Dict, List, Optional

__all__ = ["LogRing", "get_log_ring", "set_log_ring"]

_LEVEL_ORDER = {"debug": 0, "info": 1, "warning": 2, "error": 3}


class LogRing:
    """Bounded, thread-safe ring buffer of log record dicts."""

    def __init__(self, capacity: int = 2048, enabled: bool = True):
        if capacity < 1:
            raise ValueError("log ring capacity must be >= 1")
        self.enabled = enabled
        self.capacity = int(capacity)
        self._slots: List[Optional[Dict[str, Any]]] = [None] * self.capacity
        self._next = 0
        self._size = 0
        self._seq = 0
        self._lock = threading.Lock()

    def append(self, record: Dict[str, Any]) -> None:
        if not self.enabled:
            return
        with self._lock:
            self._seq += 1
            stored = dict(record)
            stored["seq"] = self._seq
            self._slots[self._next] = stored
            self._next = (self._next + 1) % self.capacity
            self._size = min(self._size + 1, self.capacity)

    # Callable, so a ring can be passed straight in as an emitter sink.
    __call__ = append

    def query(self, trace_id: Optional[str] = None,
              level: Optional[str] = None,
              component: Optional[str] = None,
              since: Optional[str] = None,
              limit: int = 200) -> List[Dict[str, Any]]:
        """Matching records, oldest first, capped at the newest ``limit``."""
        min_level = None
        if level is not None:
            if level not in _LEVEL_ORDER:
                raise ValueError("unknown log level {!r}".format(level))
            min_level = _LEVEL_ORDER[level]
        with self._lock:
            if self._size < self.capacity:
                records = self._slots[:self._size]
            else:
                records = self._slots[self._next:] + self._slots[:self._next]
            records = list(records)
        matched = []
        for record in records:
            if trace_id is not None and record.get("trace_id") != trace_id:
                continue
            if min_level is not None and _LEVEL_ORDER.get(
                    record.get("level"), 0) < min_level:
                continue
            if component is not None and not str(
                    record.get("component", "")).startswith(component):
                continue
            if since is not None and str(record.get("ts", "")) < since:
                continue
            matched.append(dict(record))
        if limit is not None and limit >= 0:
            matched = matched[-limit:]
        return matched

    def stats(self) -> Dict[str, Any]:
        with self._lock:
            return {
                "enabled": self.enabled,
                "capacity": self.capacity,
                "size": self._size,
                "appended": self._seq,
                "dropped": max(0, self._seq - self.capacity),
            }

    def clear(self) -> None:
        with self._lock:
            self._slots = [None] * self.capacity
            self._next = 0
            self._size = 0


# --------------------------------------------------------------------- default
_default_lock = threading.Lock()
_default_ring = LogRing()


def get_log_ring() -> LogRing:
    """The process-wide default ring (what ``/v2/runtime/logs`` serves)."""
    return _default_ring


def set_log_ring(ring: LogRing) -> LogRing:
    """Swap the process default; returns the previous one (test isolation)."""
    global _default_ring
    with _default_lock:
        previous = _default_ring
        _default_ring = ring
    return previous
