"""Structured JSON logging, trace-stamped.

One emitter per component (``get_logger("replication")``); every record is
a single JSON object on its own line with a stable field order::

    {"ts": "...", "level": "info", "component": "replication",
     "event": "batch.applied", "trace_id": "req-1f2e...", ...fields}

``trace_id`` is read from :mod:`repro.telemetry.trace` at emit time, so a
record written anywhere inside a request's scope — including on a worker
thread that re-activated a captured id — correlates with the gateway's
``X-Request-Id`` without the call site doing anything.

The sink is injectable (any ``write()``-able or a callable taking the
record dict); the default writes to ``sys.stderr`` so service output and
logs do not interleave on stdout.  Zero dependencies, no global logging
configuration touched.
"""

from __future__ import annotations

import json
import sys
import threading
from typing import Any, Callable, Dict, Optional, TextIO, Union

from ..clock import Clock, SystemClock
from .logring import get_log_ring
from .trace import current_trace_id

Sink = Union[TextIO, Callable[[Dict[str, Any]], None]]

LEVELS = ("debug", "info", "warning", "error")


class JsonLogEmitter:
    """Writes one JSON object per record, stamped with ts/level/trace id."""

    def __init__(self, component: str = "", sink: Sink = None,
                 clock: Clock = None, min_level: str = "debug"):
        if min_level not in LEVELS:
            raise ValueError("unknown log level {!r}".format(min_level))
        self.component = component
        self._sink = sink if sink is not None else sys.stderr
        self._clock = clock or SystemClock()
        self._min_index = LEVELS.index(min_level)
        self._lock = threading.Lock()

    def emit(self, event: str, level: str = "info",
             **fields: Any) -> Optional[Dict[str, Any]]:
        """Build, sink and return the record; ``None`` when filtered out."""
        if level not in LEVELS:
            raise ValueError("unknown log level {!r}".format(level))
        if LEVELS.index(level) < self._min_index:
            return None
        record: Dict[str, Any] = {
            "ts": self._clock.now().isoformat(),
            "level": level,
            "component": self.component,
            "event": event,
        }
        trace_id = current_trace_id()
        if trace_id is not None:
            record["trace_id"] = trace_id
        record.update(fields)
        self._write(record)
        return record

    def debug(self, event: str, **fields: Any) -> Optional[Dict[str, Any]]:
        return self.emit(event, level="debug", **fields)

    def info(self, event: str, **fields: Any) -> Optional[Dict[str, Any]]:
        return self.emit(event, level="info", **fields)

    def warning(self, event: str, **fields: Any) -> Optional[Dict[str, Any]]:
        return self.emit(event, level="warning", **fields)

    def error(self, event: str, **fields: Any) -> Optional[Dict[str, Any]]:
        return self.emit(event, level="error", **fields)

    def child(self, component: str) -> "JsonLogEmitter":
        """A sibling emitter sharing sink/clock under a dotted component name."""
        name = "{}.{}".format(self.component, component) if self.component \
            else component
        return JsonLogEmitter(component=name, sink=self._sink,
                              clock=self._clock,
                              min_level=LEVELS[self._min_index])

    def _write(self, record: Dict[str, Any]) -> None:
        sink = self._sink
        # Callable sinks serialise under the same lock as TextIO ones:
        # a ring sink's appends must not interleave with a concurrent
        # fallback write when the sink is swapped between record builds.
        with self._lock:
            if callable(sink):
                sink(record)
            else:
                line = json.dumps(record, default=str, separators=(",", ":"))
                sink.write(line + "\n")
        # Every record also lands in the process log ring so it stays
        # queryable at /v2/runtime/logs — unless the ring *is* the sink.
        ring = get_log_ring()
        if ring is not None and ring is not sink:
            ring.append(record)


_loggers_lock = threading.Lock()
_loggers: Dict[str, JsonLogEmitter] = {}


def get_logger(component: str) -> JsonLogEmitter:
    """The process-wide emitter for ``component`` (created on first use)."""
    with _loggers_lock:
        logger = _loggers.get(component)
        if logger is None:
            logger = _loggers[component] = JsonLogEmitter(component=component)
        return logger


def reset_loggers() -> None:
    """Drop the process-wide emitter cache.

    Tests that install custom sinks or levels through ``get_logger``
    would otherwise leak them into every later test in the process.
    """
    with _loggers_lock:
        _loggers.clear()
