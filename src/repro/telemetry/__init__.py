"""Process-wide telemetry: metrics registry, trace propagation, JSON logs.

The paper's monitoring chapter reads lifecycle *state*; this package
measures the machine that serves it.  Three small, dependency-free parts:

* :mod:`repro.telemetry.registry` — a thread-safe
  :class:`MetricsRegistry` of counters, gauges and fixed-bucket
  histograms with a Prometheus text exposition and a JSON snapshot.
* :mod:`repro.telemetry.trace` — a :class:`TraceContext` that carries the
  gateway's request id through shard fan-out, pooled completions, journal
  appends and the replication stream, so one id is followable across
  primary, follower and promoted node.
* :mod:`repro.telemetry.log` — a structured JSON log emitter that stamps
  every record with the active trace id.

Everything hangs off one process-wide default registry
(:func:`get_registry` / :func:`set_registry`); instrumented components
fetch their instruments at construction time, so swapping in a disabled
registry before building a service turns the whole layer into no-ops —
which is exactly how ``BENCH_telemetry`` measures the overhead.
"""

from .log import JsonLogEmitter, get_logger
from .registry import (
    DEFAULT_FAST_BUCKETS,
    DEFAULT_LATENCY_BUCKETS,
    DEFAULT_SIZE_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
    set_registry,
)
from .trace import TraceContext, current_trace_id, new_trace_id, trace_scope

__all__ = [
    "Counter",
    "DEFAULT_FAST_BUCKETS",
    "DEFAULT_LATENCY_BUCKETS",
    "DEFAULT_SIZE_BUCKETS",
    "Gauge",
    "Histogram",
    "JsonLogEmitter",
    "MetricsRegistry",
    "TraceContext",
    "current_trace_id",
    "get_logger",
    "get_registry",
    "new_trace_id",
    "set_registry",
    "trace_scope",
]
