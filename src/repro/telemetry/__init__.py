"""Process-wide telemetry: metrics, span traces, SLO alerts, JSON logs.

The paper's monitoring chapter reads lifecycle *state*; this package
measures the machine that serves it.  Five small, dependency-free parts:

* :mod:`repro.telemetry.registry` — a thread-safe
  :class:`MetricsRegistry` of counters, gauges and fixed-bucket
  histograms with a Prometheus text exposition and a JSON snapshot.
* :mod:`repro.telemetry.trace` — a :class:`TraceContext` that carries the
  gateway's request id through shard fan-out, pooled completions, journal
  appends and the replication stream, so one id is followable across
  primary, follower and promoted node.
* :mod:`repro.telemetry.spans` — a causal span tree over those ids:
  :func:`span_scope` opens timed child spans across every thread hop and
  a bounded :class:`SpanStore` keeps recent traces (plus slow-trace
  exemplars) retrievable via ``GET /v2/runtime/traces/{trace_id}``.
* :mod:`repro.telemetry.slo` — declarative :class:`SloRule`\\ s evaluated
  against registry snapshots; threshold edges publish ``alert.fired`` /
  ``alert.resolved`` bus events and feed the cockpit's alerts roll-up.
* :mod:`repro.telemetry.log` — a structured JSON log emitter that stamps
  every record with the active trace id.
* :mod:`repro.telemetry.logring` — a bounded in-memory ring every
  emitter fans out into, so recent log lines stay queryable by trace id
  at ``GET /v2/runtime/logs``.
* :mod:`repro.telemetry.history` — fixed-size time-series rings (raw +
  downsampled tiers) over registry snapshots, captured by a recurring
  maintenance job and served at ``GET /v2/runtime/telemetry/history``.
* :mod:`repro.telemetry.profiling` — contention visibility: a
  :class:`TimedLock` wrapper sampling lock waits, queue-depth capture
  for worker pools, and an optional low-rate stack sampler with a
  bounded flame tree (``GET /v2/runtime/profile``).

Everything hangs off one process-wide default registry
(:func:`get_registry` / :func:`set_registry`) and span store
(:func:`get_span_store` / :func:`set_span_store`); instrumented
components fetch their instruments at construction time, so swapping in
a disabled registry/store before building a service turns the whole
layer into no-ops — which is exactly how ``BENCH_telemetry`` measures
the overhead.
"""

from .history import MetricHistory
from .log import JsonLogEmitter, get_logger, reset_loggers
from .logring import LogRing, get_log_ring, set_log_ring
from .profiling import SamplingProfiler, TimedLock
from .registry import (
    DEFAULT_FAST_BUCKETS,
    DEFAULT_LATENCY_BUCKETS,
    DEFAULT_SIZE_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
    set_registry,
)
from .slo import AlertState, SloEngine, SloRule, default_slo_rules
from .spans import (
    Span,
    SpanContext,
    SpanStore,
    current_span_context,
    current_span_id,
    get_span_store,
    new_span_id,
    set_span_store,
    span_scope,
)
from .trace import TraceContext, current_trace_id, new_trace_id, trace_scope

__all__ = [
    "AlertState",
    "Counter",
    "DEFAULT_FAST_BUCKETS",
    "DEFAULT_LATENCY_BUCKETS",
    "DEFAULT_SIZE_BUCKETS",
    "Gauge",
    "Histogram",
    "JsonLogEmitter",
    "LogRing",
    "MetricHistory",
    "MetricsRegistry",
    "SamplingProfiler",
    "SloEngine",
    "SloRule",
    "Span",
    "SpanContext",
    "SpanStore",
    "TimedLock",
    "TraceContext",
    "current_span_context",
    "current_span_id",
    "current_trace_id",
    "default_slo_rules",
    "get_log_ring",
    "get_logger",
    "get_registry",
    "get_span_store",
    "new_span_id",
    "new_trace_id",
    "reset_loggers",
    "set_log_ring",
    "set_registry",
    "set_span_store",
    "span_scope",
    "trace_scope",
]
