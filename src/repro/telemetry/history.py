"""Fixed-size time-series history rings over registry snapshots.

``/v2/metrics`` is a point-in-time scrape; this module gives each node a
bounded memory of *how it got here*.  A :class:`MetricHistory` is bound
to a :class:`~repro.telemetry.registry.MetricsRegistry` and, on every
:meth:`MetricHistory.capture` (driven by the ``telemetry-history``
maintenance job), walks the registry snapshot and appends one point per
series to a preallocated ring:

* **counters** record the *delta* since the previous capture (a decrease
  is treated as a process restart: the new cumulative value becomes the
  whole delta, never a negative point);
* **gauges** record the raw value;
* **histograms** fan out into derived series — ``:rate`` (observation
  count this interval), ``:mean`` (interval mean) and one ``:p<q>``
  series per configured quantile, estimated from per-interval bucket
  deltas the same way the SLO engine does (the reported value is the
  upper bound of the bucket containing the quantile, ``inf`` when it
  landed past the last bound).

Every series keeps two tiers: the **raw** ring (one point per capture)
and a **downsampled** ring — every ``downsample_every`` raw points are
promoted into one coarse point carrying ``(ts, mean, min, max, samples)``
so a long window survives in bounded memory after the raw tier has
wrapped.  Zero dependencies, one lock, everything preallocated; query
with series-prefix, window, and step filters via :meth:`query`.
"""

from __future__ import annotations

import threading
from typing import Any, Dict, Iterable, List, Optional, Tuple

from ..clock import Clock, SystemClock
from .registry import MetricsRegistry

__all__ = ["MetricHistory"]


def _series_key(name: str, labels: Dict[str, Any]) -> str:
    if not labels:
        return name
    rendered = ",".join('{}="{}"'.format(key, labels[key])
                        for key in sorted(labels))
    return "{}{{{}}}".format(name, rendered)


def _parse_bound(text: str) -> float:
    if text == "+Inf":
        return float("inf")
    if text == "-Inf":
        return float("-inf")
    return float(text)


class _Ring:
    """A preallocated ring of points; append and chronological read-out."""

    __slots__ = ("_slots", "_next", "_size", "appended")

    def __init__(self, capacity: int):
        self._slots: List[Any] = [None] * capacity
        self._next = 0
        self._size = 0
        self.appended = 0

    def append(self, point: Any) -> None:
        self._slots[self._next] = point
        self._next = (self._next + 1) % len(self._slots)
        self._size = min(self._size + 1, len(self._slots))
        self.appended += 1

    def points(self) -> List[Any]:
        if self._size < len(self._slots):
            return self._slots[:self._size]
        return self._slots[self._next:] + self._slots[:self._next]

    def __len__(self) -> int:
        return self._size


class _Series:
    """One named series: raw + downsampled tiers and pending aggregate."""

    __slots__ = ("kind", "raw", "coarse", "_pending", "_every")

    def __init__(self, kind: str, max_points: int, max_downsampled: int,
                 downsample_every: int):
        self.kind = kind
        self.raw = _Ring(max_points)
        self.coarse = _Ring(max_downsampled)
        self._every = downsample_every
        # (count, sum, min, max) accumulated toward the next coarse point.
        self._pending: Optional[Tuple[int, float, float, float]] = None

    def record(self, ts: float, value: float) -> None:
        self.raw.append((ts, value))
        if self._pending is None:
            self._pending = (1, value, value, value)
        else:
            count, total, low, high = self._pending
            self._pending = (count + 1, total + value,
                             min(low, value), max(high, value))
        count, total, low, high = self._pending
        if count >= self._every:
            self.coarse.append((ts, total / count, low, high, count))
            self._pending = None


class MetricHistory:
    """Bounded time-series memory over one registry's instruments.

    ``clock`` stamps points (inject a simulated clock for deterministic
    tests); ``enabled=False`` keeps the API but makes ``capture`` a
    no-op, mirroring the registry/span-store convention.
    """

    def __init__(self, registry: MetricsRegistry, clock: Clock = None,
                 max_points: int = 360, downsample_every: int = 10,
                 max_downsampled: int = 360,
                 quantiles: Iterable[float] = (0.5, 0.99),
                 max_series: int = 1024, enabled: bool = True):
        if max_points < 1 or max_downsampled < 1:
            raise ValueError("history rings need at least one point")
        if downsample_every < 2:
            raise ValueError("downsample_every must be >= 2")
        self.enabled = enabled
        self._registry = registry
        self._clock = clock or SystemClock()
        self._max_points = int(max_points)
        self._every = int(downsample_every)
        self._max_downsampled = int(max_downsampled)
        self._quantiles = tuple(sorted(float(q) for q in quantiles))
        for quantile in self._quantiles:
            if not 0.0 < quantile < 1.0:
                raise ValueError("quantiles must be in (0, 1)")
        self._max_series = int(max_series)
        self._lock = threading.Lock()
        self._series: Dict[str, _Series] = {}
        # Previous cumulative state, keyed by series: counters map to a
        # float, histograms to (count, sum, {bound: count}).
        self._last_counter: Dict[str, float] = {}
        self._last_histogram: Dict[str, Tuple[int, float, Dict[str, int]]] = {}
        self._captures = 0
        self._last_capture_at: Optional[float] = None
        self._dropped_series = 0

    # -- capture -----------------------------------------------------------

    def capture(self) -> int:
        """Sample every registered series once; returns points recorded."""
        if not self.enabled:
            return 0
        now = self._clock.now().timestamp()
        recorded = 0
        with self._lock:
            for instrument in self._registry.instruments():
                snapshot = instrument.snapshot()
                kind = snapshot["type"]
                for series in snapshot["series"]:
                    key = _series_key(snapshot["name"], series["labels"])
                    if kind == "counter":
                        recorded += self._capture_counter(
                            key, now, series["value"])
                    elif kind == "gauge":
                        recorded += self._record(key, "gauge", now,
                                                 series["value"])
                    else:
                        recorded += self._capture_histogram(key, now, series)
            self._captures += 1
            self._last_capture_at = now
        return recorded

    def _capture_counter(self, key: str, ts: float, value: float) -> int:
        previous = self._last_counter.get(key)
        self._last_counter[key] = value
        if previous is None or value < previous:
            # First sight or a reset: the cumulative value is the delta.
            delta = value
        else:
            delta = value - previous
        return self._record(key, "counter", ts, delta)

    def _capture_histogram(self, key: str, ts: float,
                           series: Dict[str, Any]) -> int:
        count = series["count"]
        total = series["sum"]
        buckets = dict(series["buckets"])
        previous = self._last_histogram.get(key)
        self._last_histogram[key] = (count, total, buckets)
        if previous is None or count < previous[0]:
            count_delta, sum_delta = count, total
            bucket_deltas = buckets
        else:
            count_delta = count - previous[0]
            sum_delta = total - previous[1]
            bucket_deltas = {bound: buckets.get(bound, 0) - previous[2].get(bound, 0)
                             for bound in buckets}
        recorded = self._record(key + ":rate", "histogram", ts, count_delta)
        mean = (sum_delta / count_delta) if count_delta > 0 else 0.0
        recorded += self._record(key + ":mean", "histogram", ts, mean)
        for quantile in self._quantiles:
            value = self._quantile_bound(bucket_deltas, count_delta, quantile)
            recorded += self._record(
                "{}:p{:g}".format(key, quantile * 100), "histogram", ts, value)
        return recorded

    @staticmethod
    def _quantile_bound(bucket_deltas: Dict[str, int], count_delta: int,
                        quantile: float) -> float:
        """The bucket upper bound holding the quantile of this interval."""
        if count_delta <= 0:
            return 0.0
        rank = quantile * count_delta
        cumulative = 0
        for bound_text in sorted(bucket_deltas, key=_parse_bound):
            cumulative += bucket_deltas[bound_text]
            if cumulative >= rank:
                return _parse_bound(bound_text)
        return float("inf")  # landed in the implicit +Inf bucket

    def _record(self, key: str, kind: str, ts: float, value: float) -> int:
        series = self._series.get(key)
        if series is None:
            if len(self._series) >= self._max_series:
                self._dropped_series += 1
                return 0
            series = self._series[key] = _Series(
                kind, self._max_points, self._max_downsampled, self._every)
        series.record(ts, float(value))
        return 1

    # -- query -------------------------------------------------------------

    def series_names(self) -> List[str]:
        with self._lock:
            return sorted(self._series)

    def query(self, series: Optional[str] = None,
              window_seconds: Optional[float] = None,
              step_seconds: Optional[float] = None,
              tier: str = "raw",
              max_series: int = 50) -> Dict[str, Any]:
        """Matching series with their points, oldest first.

        ``series`` is a comma-separated list of name prefixes (a bare
        metric name matches every label set and derived suffix);
        ``window_seconds`` keeps points no older than now-window;
        ``step_seconds`` decimates to at most one point per step;
        ``tier`` selects ``"raw"`` or ``"downsampled"``.
        """
        if tier not in ("raw", "downsampled"):
            raise ValueError("tier must be 'raw' or 'downsampled'")
        prefixes = None
        if series:
            prefixes = tuple(part.strip() for part in series.split(",")
                             if part.strip())
        now = self._clock.now().timestamp()
        cutoff = None if window_seconds is None else now - float(window_seconds)
        with self._lock:
            names = sorted(self._series)
            if prefixes is not None:
                names = [name for name in names
                         if any(name.startswith(prefix) for prefix in prefixes)]
            matched = len(names)
            names = names[:max(0, int(max_series))]
            rows = []
            for name in names:
                entry = self._series[name]
                ring = entry.raw if tier == "raw" else entry.coarse
                points = ring.points()
                if cutoff is not None:
                    points = [point for point in points if point[0] >= cutoff]
                if step_seconds:
                    step = float(step_seconds)
                    kept, last_ts = [], None
                    for point in points:
                        if last_ts is None or point[0] - last_ts >= step:
                            kept.append(point)
                            last_ts = point[0]
                    points = kept
                rows.append({"name": name, "kind": entry.kind, "tier": tier,
                             "points": [list(point) for point in points]})
            captures = self._captures
            last_at = self._last_capture_at
        return {
            "queried_at": now,
            "captures": captures,
            "last_capture_at": last_at,
            "tier": tier,
            "series_matched": matched,
            "series": rows,
        }

    def recent_deltas(self, prefixes: Iterable[str]) -> Dict[str, float]:
        """Latest raw point per counter series matching any prefix.

        Feeds the cluster view's "key metric deltas" column without
        shipping whole rings across nodes.
        """
        wanted = tuple(prefixes)
        deltas: Dict[str, float] = {}
        with self._lock:
            for name, entry in self._series.items():
                if entry.kind != "counter":
                    continue
                if not any(name.startswith(prefix) for prefix in wanted):
                    continue
                points = entry.raw.points()
                if points:
                    deltas[name] = points[-1][1]
        return deltas

    # -- introspection -----------------------------------------------------

    def stats(self) -> Dict[str, Any]:
        with self._lock:
            return {
                "enabled": self.enabled,
                "captures": self._captures,
                "last_capture_at": self._last_capture_at,
                "series": len(self._series),
                "dropped_series": self._dropped_series,
                "max_points": self._max_points,
                "max_downsampled": self._max_downsampled,
                "downsample_every": self._every,
                "quantiles": list(self._quantiles),
            }

    def reset(self) -> None:
        with self._lock:
            self._series.clear()
            self._last_counter.clear()
            self._last_histogram.clear()
            self._captures = 0
            self._last_capture_at = None
            self._dropped_series = 0
