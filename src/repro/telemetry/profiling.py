"""Contention profiling: timed locks, queue-depth capture, stack sampling.

Open item 1 on the ROADMAP (cross-process scale-out) will live or die on
where the single process serialises today.  Two tools make that visible:

* :class:`TimedLock` — a drop-in wrapper around a ``threading`` lock
  that *samples* acquisition wait time into the shared
  ``gelee_lock_wait_seconds{site=...}`` histogram.  Sampling (default:
  one acquisition in 16, the first always included) keeps the wrapper
  cheap enough for the shard-lock hot path while still drawing an
  honest wait distribution; the sample counter is updated without a
  lock — the benign race costs sampling accuracy, never correctness.
  The wrapper exposes ``acquire``/``release``/context-manager, so it
  can be handed anywhere a plain lock goes; ``threading.Condition``
  should be built over :attr:`TimedLock.wrapped` (conditions need the
  raw lock's owner bookkeeping, and condition waits are deliberate
  sleeps, not contention).

* :class:`SamplingProfiler` — an optional, off-by-default background
  thread that snapshots every thread's stack via
  ``sys._current_frames()`` at a low rate and folds the samples into a
  bounded flame tree (node-budgeted, so a pathological call graph
  cannot balloon memory).  Exposed at ``GET /v2/runtime/profile``.
"""

from __future__ import annotations

import sys
import threading
import time
from typing import Any, Dict, List, Optional

from .registry import DEFAULT_FAST_BUCKETS, MetricsRegistry, get_registry

__all__ = ["TimedLock", "SamplingProfiler", "lock_wait_histogram",
           "queue_depth_histogram"]

LOCK_WAIT_METRIC = "gelee_lock_wait_seconds"
QUEUE_DEPTH_METRIC = "gelee_queue_depth"

#: Depth counts, not latencies — 0 (idle pool) up to deep backlogs.
QUEUE_DEPTH_BUCKETS = (0.0, 1.0, 2.0, 5.0, 10.0, 25.0, 50.0, 100.0,
                       250.0, 500.0)


def lock_wait_histogram(registry: Optional[MetricsRegistry] = None):
    """The shared lock-wait histogram (get-or-create, labelled by site)."""
    registry = registry or get_registry()
    return registry.histogram(
        LOCK_WAIT_METRIC,
        "Sampled lock acquisition wait time by contention site",
        labelnames=("site",), buckets=DEFAULT_FAST_BUCKETS)


def queue_depth_histogram(registry: Optional[MetricsRegistry] = None):
    """The shared queue-depth histogram (get-or-create, labelled by pool)."""
    registry = registry or get_registry()
    return registry.histogram(
        QUEUE_DEPTH_METRIC,
        "Tasks already waiting when one more was submitted, by worker pool",
        labelnames=("pool",), buckets=QUEUE_DEPTH_BUCKETS)


class TimedLock:
    """A lock wrapper that samples acquisition waits into a histogram."""

    __slots__ = ("_lock", "_observe", "_every", "_count")

    def __init__(self, lock=None, site: str = "lock",
                 registry: Optional[MetricsRegistry] = None,
                 sample_every: int = 16):
        self._lock = lock if lock is not None else threading.RLock()
        self._every = max(1, int(sample_every))
        self._count = 0
        self._observe = lock_wait_histogram(registry).bind(site=site).observe

    @property
    def wrapped(self):
        """The underlying lock — hand this to ``threading.Condition``."""
        return self._lock

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        count = self._count
        self._count = count + 1  # benign race: approximate sampling cadence
        if count % self._every:
            return self._lock.acquire(blocking, timeout)
        started = time.perf_counter()
        acquired = self._lock.acquire(blocking, timeout)
        self._observe(time.perf_counter() - started)
        return acquired

    def release(self) -> None:
        self._lock.release()

    def __enter__(self) -> "TimedLock":
        self.acquire()
        return self

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> None:
        self._lock.release()


class _FlameNode:
    __slots__ = ("name", "value", "children")

    def __init__(self, name: str):
        self.name = name
        self.value = 0
        self.children: Dict[str, "_FlameNode"] = {}

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "value": self.value,
            "children": [child.to_dict() for child in sorted(
                self.children.values(), key=lambda node: -node.value)],
        }


class SamplingProfiler:
    """Low-rate stack sampler with a bounded flame-tree aggregate.

    ``start()`` spawns a daemon thread that wakes every
    ``interval_seconds`` (clamped to >= 5ms so a typo cannot spin a
    core), walks ``sys._current_frames()`` and folds each stack —
    root-first, frames labelled ``function (file:line)`` — into the
    tree.  ``max_nodes`` bounds the tree: once spent, samples are
    attributed to the deepest existing ancestor and counted as
    truncated.  The profiler's own thread is excluded.
    """

    def __init__(self, interval_seconds: float = 0.02, max_nodes: int = 4000,
                 max_depth: int = 64):
        self.interval_seconds = max(0.005, float(interval_seconds))
        self._max_nodes = max(16, int(max_nodes))
        self._max_depth = max(4, int(max_depth))
        self._root = _FlameNode("process")
        self._node_count = 1
        self._samples = 0
        self._truncated = 0
        self._started_at: Optional[float] = None
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None

    # -- lifecycle ---------------------------------------------------------

    @property
    def running(self) -> bool:
        return self._thread is not None and self._thread.is_alive()

    def start(self, interval_seconds: Optional[float] = None) -> bool:
        """Begin sampling; returns False when already running."""
        if self.running:
            return False
        if interval_seconds is not None:
            self.interval_seconds = max(0.005, float(interval_seconds))
        self._stop.clear()
        self._started_at = time.time()
        self._thread = threading.Thread(
            target=self._run, name="gelee-profiler", daemon=True)
        self._thread.start()
        return True

    def stop(self) -> bool:
        """Stop sampling; returns False when not running."""
        thread = self._thread
        if thread is None:
            return False
        self._stop.set()
        thread.join(timeout=5)
        self._thread = None
        return True

    def _run(self) -> None:
        while not self._stop.wait(self.interval_seconds):
            self.sample_once()

    # -- sampling ----------------------------------------------------------

    def sample_once(self) -> int:
        """Take one sample of every thread; returns stacks folded."""
        own = threading.get_ident()
        frames = sys._current_frames()
        folded = 0
        with self._lock:
            for thread_id, frame in frames.items():
                if thread_id == own:
                    continue
                stack: List[str] = []
                current = frame
                while current is not None and len(stack) < self._max_depth:
                    code = current.f_code
                    stack.append("{} ({}:{})".format(
                        code.co_name, code.co_filename.rpartition("/")[2],
                        current.f_lineno))
                    current = current.f_back
                stack.reverse()
                self._fold_locked(stack)
                folded += 1
            self._samples += 1
        return folded

    def _fold_locked(self, stack: List[str]) -> None:
        node = self._root
        node.value += 1
        for label in stack:
            child = node.children.get(label)
            if child is None:
                if self._node_count >= self._max_nodes:
                    self._truncated += 1
                    return
                child = node.children[label] = _FlameNode(label)
                self._node_count += 1
            child.value += 1
            node = child

    # -- output ------------------------------------------------------------

    def flame(self) -> Dict[str, Any]:
        with self._lock:
            return self._root.to_dict()

    def status(self) -> Dict[str, Any]:
        with self._lock:
            return {
                "running": self.running,
                "interval_seconds": self.interval_seconds,
                "samples": self._samples,
                "nodes": self._node_count,
                "truncated_stacks": self._truncated,
                "started_at": self._started_at,
                "flame": self._root.to_dict(),
            }

    def reset(self) -> None:
        with self._lock:
            self._root = _FlameNode("process")
            self._node_count = 1
            self._samples = 0
            self._truncated = 0
