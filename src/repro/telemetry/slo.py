"""Declarative SLOs evaluated against ``MetricsRegistry`` snapshots.

The ~27 ``gelee_*`` series answer questions when an operator asks; this
module asks continuously.  An :class:`SloEngine` holds declarative
:class:`SloRule`\\ s, evaluates them all against one registry snapshot
(on demand, or on the scheduler's recurring ``maintenance:slo-evaluate``
job), keeps per-rule :class:`AlertState`, and reports *edges* — a rule
crossing its threshold publishes ``alert.fired``, a firing rule dropping
back publishes ``alert.resolved``.  The service publishes those through
the kernel event bus, so on a durable node alerts are journaled and ship
down the replication stream like any other event: the cockpit on a
follower shows the primary's alert history.

Rule kinds:

``error-rate``
    Share of error-status API responses among requests *since the last
    evaluation* (windowed counter deltas — cumulative ratios could never
    resolve).  Defaults to 5xx on ``gelee_api_requests_total``.
``latency-quantile``
    A quantile estimated from fixed-bucket histogram deltas: the
    smallest bucket bound covering the target quantile of the window's
    samples (the standard Prometheus ``histogram_quantile`` upper-bound
    estimate; +Inf overflow reports ``inf`` and always breaches).
``replication-lag``
    Gauge threshold on ``gelee_replication_lag_records``.
``in-flight-saturation``
    Gauge threshold on ``gelee_dispatch_in_flight``.
``heartbeat-miss``
    Liveness stall: the election-heartbeat histogram saw samples before
    but none since the last evaluation — renewals have stopped.

Windowed kinds *hold* their state (no transition) when the window has
fewer than ``min_samples`` samples, so an idle service neither fires nor
flaps.  Gauge kinds clear when the backing instrument disappears (a
promoted replica stops having lag).
"""

from __future__ import annotations

import threading
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..clock import Clock, SystemClock
from .registry import MetricsRegistry, get_registry

__all__ = ["AlertState", "SloEngine", "SloRule", "default_slo_rules"]

RULE_KINDS = ("error-rate", "latency-quantile", "replication-lag",
              "in-flight-saturation", "heartbeat-miss")

_DEFAULT_METRICS = {
    "error-rate": "gelee_api_requests_total",
    "latency-quantile": "gelee_api_request_seconds",
    "replication-lag": "gelee_replication_lag_records",
    "in-flight-saturation": "gelee_dispatch_in_flight",
    "heartbeat-miss": "gelee_election_heartbeat_seconds",
}


class SloRule:
    """One declarative objective over one metric."""

    __slots__ = ("name", "kind", "threshold", "metric", "quantile",
                 "min_samples", "error_status_prefixes", "severity",
                 "description")

    def __init__(self, name: str, kind: str, threshold: float,
                 metric: Optional[str] = None, quantile: float = 0.99,
                 min_samples: int = 1,
                 error_status_prefixes: Tuple[str, ...] = ("5",),
                 severity: str = "warn", description: str = ""):
        if kind not in RULE_KINDS:
            raise ValueError("unknown SLO rule kind {!r} (known: {})".format(
                kind, ", ".join(RULE_KINDS)))
        if not 0.0 < quantile < 1.0:
            raise ValueError("quantile must be in (0, 1), got {!r}".format(quantile))
        self.name = name
        self.kind = kind
        self.threshold = float(threshold)
        self.metric = metric or _DEFAULT_METRICS[kind]
        self.quantile = float(quantile)
        self.min_samples = max(1, int(min_samples))
        self.error_status_prefixes = tuple(str(p) for p in error_status_prefixes)
        self.severity = severity
        self.description = description

    def to_dict(self) -> Dict[str, Any]:
        document = {
            "name": self.name,
            "kind": self.kind,
            "metric": self.metric,
            "threshold": self.threshold,
            "severity": self.severity,
            "description": self.description,
        }
        if self.kind == "latency-quantile":
            document["quantile"] = self.quantile
        if self.kind in ("error-rate", "latency-quantile"):
            document["min_samples"] = self.min_samples
        if self.kind == "error-rate":
            document["error_status_prefixes"] = list(self.error_status_prefixes)
        return document


class AlertState:
    """The evaluated side of one rule: ok/firing plus transition history."""

    __slots__ = ("rule", "state", "value", "fired_at", "resolved_at",
                 "fired_count", "last_evaluated_at")

    def __init__(self, rule: SloRule):
        self.rule = rule
        self.state = "ok"
        self.value: Optional[float] = None
        self.fired_at: Optional[str] = None
        self.resolved_at: Optional[str] = None
        self.fired_count = 0
        self.last_evaluated_at: Optional[str] = None

    def to_dict(self) -> Dict[str, Any]:
        return {
            "rule": self.rule.name,
            "kind": self.rule.kind,
            "metric": self.rule.metric,
            "severity": self.rule.severity,
            "state": self.state,
            "value": self.value,
            "threshold": self.rule.threshold,
            "fired_at": self.fired_at,
            "resolved_at": self.resolved_at,
            "fired_count": self.fired_count,
            "last_evaluated_at": self.last_evaluated_at,
        }


def default_slo_rules() -> List[SloRule]:
    """The stock catalog — conservative thresholds that stay quiet in tests."""
    return [
        SloRule("api-error-rate", "error-rate", threshold=0.05,
                min_samples=20, severity="page",
                description="More than 5% of API responses were 5xx "
                            "since the last evaluation."),
        SloRule("api-latency-p99", "latency-quantile", threshold=2.5,
                quantile=0.99, min_samples=20, severity="warn",
                description="The p99 API latency bucket bound exceeded "
                            "2.5s over the evaluation window."),
        SloRule("replication-lag", "replication-lag", threshold=1000,
                severity="warn",
                description="This replica is more than 1000 journal "
                            "records behind the primary."),
        SloRule("dispatch-saturation", "in-flight-saturation", threshold=10000,
                severity="warn",
                description="More than 10000 action invocations are "
                            "in flight at once."),
        SloRule("election-heartbeat", "heartbeat-miss", threshold=0,
                severity="page",
                description="The leader election loop stopped renewing "
                            "its lease between evaluations."),
    ]


class SloEngine:
    """Evaluates a rule set against registry snapshots, tracking alert edges.

    ``publish`` is a ``(kind, subject_id, payload)`` callback — the
    service wires it to the kernel bus so ``alert.fired`` /
    ``alert.resolved`` travel the same journal/replication path as
    lifecycle events.  ``refresh`` (optional) runs before each snapshot
    so scrape-time gauges (in-flight, lag, queue depth) are current.
    """

    def __init__(self, rules: Optional[List[SloRule]] = None,
                 registry: Optional[MetricsRegistry] = None,
                 clock: Optional[Clock] = None,
                 publish: Optional[Callable[[str, str, Dict[str, Any]], None]] = None,
                 refresh: Optional[Callable[[], Any]] = None):
        self._registry = registry
        self._clock = clock or SystemClock()
        self._publish = publish
        self._refresh = refresh
        self._lock = threading.RLock()
        self._states: Dict[str, AlertState] = {}
        self._windows: Dict[str, Tuple[float, ...]] = {}
        self._evaluations = 0
        self._last_evaluated_at: Optional[str] = None
        for rule in (rules if rules is not None else default_slo_rules()):
            self.add_rule(rule)

    # ----------------------------------------------------------------- rules
    def add_rule(self, rule: SloRule) -> SloRule:
        with self._lock:
            if rule.name in self._states:
                raise ValueError("SLO rule {!r} already registered".format(rule.name))
            self._states[rule.name] = AlertState(rule)
        return rule

    def remove_rule(self, name: str) -> None:
        with self._lock:
            self._states.pop(name, None)
            self._windows.pop(name, None)

    @property
    def rules(self) -> List[SloRule]:
        with self._lock:
            return [state.rule for state in self._states.values()]

    # ------------------------------------------------------------ evaluation
    def evaluate(self) -> Dict[str, Any]:
        """Evaluate every rule once; publish and return any transitions."""
        if self._refresh is not None:
            self._refresh()
        registry = self._registry if self._registry is not None else get_registry()
        snapshot = registry.snapshot()
        metrics = {metric["name"]: metric for metric in snapshot["metrics"]}
        now = self._clock.now().isoformat()
        transitions: List[Dict[str, Any]] = []
        with self._lock:
            self._evaluations += 1
            self._last_evaluated_at = now
            for state in self._states.values():
                outcome = self._evaluate_rule(state.rule, metrics)
                state.last_evaluated_at = now
                if outcome is None:
                    continue  # window too small: hold, neither fire nor flap
                value, breached = outcome
                state.value = value
                if breached and state.state != "firing":
                    state.state = "firing"
                    state.fired_at = now
                    state.resolved_at = None
                    state.fired_count += 1
                    transitions.append(self._transition("alert.fired", state))
                elif not breached and state.state == "firing":
                    state.state = "ok"
                    state.resolved_at = now
                    transitions.append(self._transition("alert.resolved", state))
        if self._publish is not None:
            for transition in transitions:
                self._publish(transition["kind"], transition["rule"],
                              dict(transition["payload"]))
        return {
            "evaluated_at": now,
            "rules_evaluated": len(self._states),
            "transitions": transitions,
            "firing": self.firing(),
        }

    @staticmethod
    def _transition(kind: str, state: AlertState) -> Dict[str, Any]:
        return {"kind": kind, "rule": state.rule.name,
                "payload": {
                    "rule": state.rule.name,
                    "rule_kind": state.rule.kind,
                    "metric": state.rule.metric,
                    "severity": state.rule.severity,
                    "value": state.value,
                    "threshold": state.rule.threshold,
                    "description": state.rule.description,
                }}

    def _evaluate_rule(self, rule: SloRule,
                       metrics: Dict[str, Any]) -> Optional[Tuple[Optional[float], bool]]:
        metric = metrics.get(rule.metric)
        if rule.kind == "error-rate":
            return self._eval_error_rate(rule, metric)
        if rule.kind == "latency-quantile":
            return self._eval_latency_quantile(rule, metric)
        if rule.kind == "heartbeat-miss":
            return self._eval_heartbeat_miss(rule, metric)
        # Gauge kinds: absent instrument clears (a promoted replica has
        # no lag gauge to be behind on).
        if metric is None or not metric["series"]:
            return (None, False)
        value = max(series["value"] for series in metric["series"])
        return (value, value > rule.threshold)

    def _eval_error_rate(self, rule: SloRule,
                         metric: Optional[Dict[str, Any]]) -> Optional[Tuple[Optional[float], bool]]:
        if metric is None:
            return (None, False)
        total = sum(series["value"] for series in metric["series"])
        errors = sum(
            series["value"] for series in metric["series"]
            if str(series["labels"].get("status", "")).startswith(
                rule.error_status_prefixes))
        previous = self._windows.get(rule.name, (0.0, 0.0))
        self._windows[rule.name] = (errors, total)
        delta_errors = errors - previous[0]
        delta_total = total - previous[1]
        if delta_total < 0:  # counter reset (registry swap): restart window
            delta_errors, delta_total = errors, total
        if delta_total < rule.min_samples:
            return None
        rate = delta_errors / delta_total
        return (round(rate, 4), rate > rule.threshold)

    def _eval_latency_quantile(self, rule: SloRule,
                               metric: Optional[Dict[str, Any]]) -> Optional[Tuple[Optional[float], bool]]:
        if metric is None:
            return (None, False)
        # Merge every series of the histogram into one windowed bucket view.
        count = 0
        buckets: Dict[float, float] = {}
        for series in metric["series"]:
            count += series["count"]
            for bound, bucket_count in series["buckets"].items():
                numeric = float(bound)
                buckets[numeric] = buckets.get(numeric, 0.0) + bucket_count
        previous = self._windows.get(rule.name)
        flattened = tuple([count] + [buckets[bound] for bound in sorted(buckets)])
        self._windows[rule.name] = flattened
        if previous is None or len(previous) != len(flattened) or previous[0] > count:
            previous = (0.0,) * len(flattened)
        delta_count = count - previous[0]
        if delta_count < rule.min_samples:
            return None
        target = rule.quantile * delta_count
        cumulative = 0.0
        for index, bound in enumerate(sorted(buckets)):
            cumulative += flattened[index + 1] - previous[index + 1]
            if cumulative >= target:
                return (bound, bound > rule.threshold)
        # Quantile falls in the implicit +Inf bucket: past every bound.
        return (float("inf"), True)

    def _eval_heartbeat_miss(self, rule: SloRule,
                             metric: Optional[Dict[str, Any]]) -> Optional[Tuple[Optional[float], bool]]:
        if metric is None or not metric["series"]:
            return (None, False)
        count = sum(series["count"] for series in metric["series"])
        previous = self._windows.get(rule.name)
        self._windows[rule.name] = (count,)
        if previous is None:
            return None  # first sighting: establish the baseline, hold
        delta = count - previous[0]
        if delta < 0:
            return None
        return (float(delta), delta == 0 and previous[0] > 0)

    # --------------------------------------------------------------- surface
    def firing(self) -> List[Dict[str, Any]]:
        with self._lock:
            return [state.to_dict() for state in self._states.values()
                    if state.state == "firing"]

    def status(self) -> Dict[str, Any]:
        with self._lock:
            alerts = [state.to_dict() for state in self._states.values()]
            return {
                "rules": [state.rule.to_dict() for state in self._states.values()],
                "alerts": alerts,
                "firing": sum(1 for alert in alerts if alert["state"] == "firing"),
                "evaluations": self._evaluations,
                "last_evaluated_at": self._last_evaluated_at,
            }
