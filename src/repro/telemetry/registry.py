"""A zero-dependency metrics registry with Prometheus text exposition.

Three instrument types, mirroring the Prometheus data model:

* :class:`Counter` — monotonically increasing totals (names end ``_total``).
* :class:`Gauge` — point-in-time values that move both ways.
* :class:`Histogram` — observations bucketed against *fixed* boundaries
  chosen at registration, rendered as cumulative ``_bucket``/``_sum``/
  ``_count`` series.

Instruments are registered get-or-create by name: asking twice for the
same name returns the same object, asking with a conflicting type or
label set raises.  Every update takes the instrument's lock, so the
registry is safe under the shard worker pool; the cost of one update is a
tuple build, a dict lookup and a few adds — small enough that
``BENCH_telemetry.json`` holds the instrumented dispatch path within a
few percent of a disabled registry.

A registry built with ``enabled=False`` hands out the same API but every
``inc``/``set``/``observe`` returns immediately; components fetch their
instruments at construction, so swapping the process default via
:func:`set_registry` before building a service disables the entire layer.
"""

from __future__ import annotations

import threading
import time
from bisect import bisect_left
from typing import Any, Dict, Iterable, List, Optional, Tuple

from ..clock import Clock, SystemClock

#: Sub-millisecond to seconds — journal appends, fsyncs, lease heartbeats.
DEFAULT_FAST_BUCKETS = (0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
                        0.05, 0.1, 0.25, 0.5, 1.0, 2.5)
#: Milliseconds to tens of seconds — API requests, action waits, checkpoints.
DEFAULT_LATENCY_BUCKETS = (0.001, 0.005, 0.01, 0.025, 0.05, 0.1,
                           0.25, 0.5, 1.0, 2.5, 5.0, 10.0)
#: Record/batch counts — replication batches, fan-out sizes.
DEFAULT_SIZE_BUCKETS = (1.0, 5.0, 10.0, 25.0, 50.0, 100.0,
                        250.0, 500.0, 1000.0)


def _format_value(value: float) -> str:
    """Render a sample the way the exposition format expects."""
    if value == float("inf"):
        return "+Inf"
    if value == float("-inf"):
        return "-Inf"
    as_float = float(value)
    if as_float.is_integer() and abs(as_float) < 1e15:
        return str(int(as_float))
    return repr(as_float)


def _escape_label(value: Any) -> str:
    """Escape a label value per the text exposition format.

    Backslash first (or the other escapes would be double-escaped), then
    quote and newline as the format mandates.  Carriage returns get the
    same treatment as newlines — the spec leaves them undefined, but a
    raw ``\\r`` splits the sample line and corrupts the scrape.
    """
    return (str(value)
            .replace("\\", "\\\\")
            .replace('"', '\\"')
            .replace("\n", "\\n")
            .replace("\r", "\\r"))


def _escape_help(value: Any) -> str:
    """Escape ``# HELP`` text: only backslash and line breaks (no quotes)."""
    return (str(value)
            .replace("\\", "\\\\")
            .replace("\n", "\\n")
            .replace("\r", "\\r"))


def _render_labels(labelnames: Tuple[str, ...], key: Tuple[str, ...],
                   extra: Tuple[Tuple[str, str], ...] = ()) -> str:
    pairs = list(zip(labelnames, key)) + list(extra)
    if not pairs:
        return ""
    return "{" + ",".join('{}="{}"'.format(name, _escape_label(value))
                          for name, value in pairs) + "}"


class _Instrument:
    """Shared plumbing: label resolution, the cell map, the lock."""

    kind = "untyped"

    def __init__(self, name: str, help_text: str,
                 labelnames: Tuple[str, ...], enabled: bool):
        self.name = name
        self.help = help_text
        self.labelnames = labelnames
        self._enabled = enabled
        self._lock = threading.Lock()
        self._cells: Dict[Tuple[str, ...], Any] = {}

    def _key(self, labels: Dict[str, Any]) -> Tuple[str, ...]:
        if not labels and not self.labelnames:
            return ()
        if len(labels) != len(self.labelnames):
            raise ValueError(
                "metric {!r} expects labels {!r}, got {!r}".format(
                    self.name, self.labelnames, tuple(sorted(labels))))
        try:
            return tuple(str(labels[name]) for name in self.labelnames)
        except KeyError as exc:
            raise ValueError(
                "metric {!r} expects labels {!r}, got {!r}".format(
                    self.name, self.labelnames, tuple(sorted(labels)))) from exc

    def clear(self) -> None:
        with self._lock:
            self._cells.clear()


class Counter(_Instrument):
    """A monotonically increasing total."""

    kind = "counter"

    def inc(self, amount: float = 1.0, **labels: Any) -> None:
        if not self._enabled:
            return
        if amount < 0:
            raise ValueError("counter {!r} cannot decrease".format(self.name))
        key = self._key(labels)
        with self._lock:
            self._cells[key] = self._cells.get(key, 0.0) + amount

    def bind(self, **labels: Any) -> "_BoundCounter":
        """Pre-resolve one label set for hot-path increments.

        The returned handle skips the per-call kwargs dict and key build —
        dispatch completion uses one bound cell per outcome.
        """
        return _BoundCounter(self, self._key(labels))

    def value(self, **labels: Any) -> float:
        with self._lock:
            return self._cells.get(self._key(labels), 0.0)

    def expose(self) -> List[str]:
        with self._lock:
            cells = sorted(self._cells.items())
        lines = ["# HELP {} {}".format(self.name, _escape_help(self.help)),
                 "# TYPE {} counter".format(self.name)]
        for key, value in cells:
            lines.append("{}{} {}".format(
                self.name, _render_labels(self.labelnames, key),
                _format_value(value)))
        return lines

    def snapshot(self) -> Dict[str, Any]:
        with self._lock:
            cells = sorted(self._cells.items())
        return {"name": self.name, "type": "counter", "help": self.help,
                "series": [{"labels": dict(zip(self.labelnames, key)),
                            "value": value} for key, value in cells]}


class _BoundCounter:
    """A counter cell with its label key resolved ahead of time."""

    __slots__ = ("_counter", "_cell_key")

    def __init__(self, counter: Counter, cell_key: Tuple[str, ...]):
        self._counter = counter
        self._cell_key = cell_key

    def inc(self, amount: float = 1.0) -> None:
        counter = self._counter
        if not counter._enabled:
            return
        if amount < 0:
            raise ValueError("counter {!r} cannot decrease".format(counter.name))
        with counter._lock:
            counter._cells[self._cell_key] = counter._cells.get(
                self._cell_key, 0.0) + amount


class Gauge(_Instrument):
    """A point-in-time value; settable and incrementable."""

    kind = "gauge"

    def set(self, value: float, **labels: Any) -> None:
        if not self._enabled:
            return
        key = self._key(labels)
        with self._lock:
            self._cells[key] = float(value)

    def inc(self, amount: float = 1.0, **labels: Any) -> None:
        if not self._enabled:
            return
        key = self._key(labels)
        with self._lock:
            self._cells[key] = self._cells.get(key, 0.0) + amount

    def dec(self, amount: float = 1.0, **labels: Any) -> None:
        self.inc(-amount, **labels)

    def value(self, **labels: Any) -> float:
        with self._lock:
            return self._cells.get(self._key(labels), 0.0)

    def expose(self) -> List[str]:
        with self._lock:
            cells = sorted(self._cells.items())
        lines = ["# HELP {} {}".format(self.name, _escape_help(self.help)),
                 "# TYPE {} gauge".format(self.name)]
        for key, value in cells:
            lines.append("{}{} {}".format(
                self.name, _render_labels(self.labelnames, key),
                _format_value(value)))
        return lines

    def snapshot(self) -> Dict[str, Any]:
        with self._lock:
            cells = sorted(self._cells.items())
        return {"name": self.name, "type": "gauge", "help": self.help,
                "series": [{"labels": dict(zip(self.labelnames, key)),
                            "value": value} for key, value in cells]}


class _HistogramCell:
    __slots__ = ("bucket_counts", "total", "count")

    def __init__(self, bucket_count: int):
        self.bucket_counts = [0] * bucket_count
        self.total = 0.0
        self.count = 0


class Histogram(_Instrument):
    """Observations against fixed, registration-time bucket boundaries."""

    kind = "histogram"

    def __init__(self, name: str, help_text: str, labelnames: Tuple[str, ...],
                 buckets: Tuple[float, ...], enabled: bool):
        super().__init__(name, help_text, labelnames, enabled)
        cleaned = tuple(sorted(float(bound) for bound in buckets))
        if not cleaned:
            raise ValueError("histogram {!r} needs at least one bucket".format(name))
        self.buckets = cleaned
        self._bucket_count = len(cleaned)

    def observe(self, value: float, **labels: Any) -> None:
        if not self._enabled:
            return
        key = self._key(labels)
        value = float(value)
        # bisect_left finds the first bound with value <= bound; past the
        # last bound the sample lands only in the implicit +Inf (count).
        index = bisect_left(self.buckets, value)
        with self._lock:
            cell = self._cells.get(key)
            if cell is None:
                cell = self._cells[key] = _HistogramCell(self._bucket_count)
            if index < self._bucket_count:
                cell.bucket_counts[index] += 1
            cell.total += value
            cell.count += 1

    def bind(self, **labels: Any) -> "_BoundHistogram":
        """Pre-resolve one label set for hot-path observations.

        Mirrors :meth:`Counter.bind`: the returned handle skips the
        per-call kwargs dict and key build — lock-wait and queue-depth
        instrumentation observe through one bound cell per site.
        """
        return _BoundHistogram(self, self._key(labels))

    def cell(self, **labels: Any) -> Dict[str, Any]:
        """The raw (non-cumulative) cell for tests and roll-ups."""
        with self._lock:
            cell = self._cells.get(self._key(labels))
            if cell is None:
                return {"count": 0, "sum": 0.0, "buckets": [0] * len(self.buckets)}
            return {"count": cell.count, "sum": cell.total,
                    "buckets": list(cell.bucket_counts)}

    def expose(self) -> List[str]:
        with self._lock:
            cells = sorted((key, cell.count, cell.total, list(cell.bucket_counts))
                           for key, cell in self._cells.items())
        lines = ["# HELP {} {}".format(self.name, _escape_help(self.help)),
                 "# TYPE {} histogram".format(self.name)]
        for key, count, total, bucket_counts in cells:
            cumulative = 0
            for bound, bucket_count in zip(self.buckets, bucket_counts):
                cumulative += bucket_count
                lines.append("{}_bucket{} {}".format(
                    self.name,
                    _render_labels(self.labelnames, key,
                                   (("le", _format_value(bound)),)),
                    cumulative))
            lines.append("{}_bucket{} {}".format(
                self.name,
                _render_labels(self.labelnames, key, (("le", "+Inf"),)), count))
            lines.append("{}_sum{} {}".format(
                self.name, _render_labels(self.labelnames, key),
                _format_value(total)))
            lines.append("{}_count{} {}".format(
                self.name, _render_labels(self.labelnames, key), count))
        return lines

    def snapshot(self) -> Dict[str, Any]:
        with self._lock:
            cells = sorted((key, cell.count, cell.total, list(cell.bucket_counts))
                           for key, cell in self._cells.items())
        series = []
        for key, count, total, bucket_counts in cells:
            series.append({
                "labels": dict(zip(self.labelnames, key)),
                "count": count,
                "sum": total,
                "mean": (total / count) if count else 0.0,
                "buckets": {_format_value(bound): bucket_count
                            for bound, bucket_count
                            in zip(self.buckets, bucket_counts)},
            })
        return {"name": self.name, "type": "histogram", "help": self.help,
                "series": series}


class _BoundHistogram:
    """A histogram cell with its label key resolved ahead of time."""

    __slots__ = ("_histogram", "_cell_key")

    def __init__(self, histogram: Histogram, cell_key: Tuple[str, ...]):
        self._histogram = histogram
        self._cell_key = cell_key

    def observe(self, value: float) -> None:
        histogram = self._histogram
        if not histogram._enabled:
            return
        value = float(value)
        index = bisect_left(histogram.buckets, value)
        with histogram._lock:
            cell = histogram._cells.get(self._cell_key)
            if cell is None:
                cell = histogram._cells[self._cell_key] = _HistogramCell(
                    histogram._bucket_count)
            if index < histogram._bucket_count:
                cell.bucket_counts[index] += 1
            cell.total += value
            cell.count += 1


class MetricsRegistry:
    """The process-wide instrument catalog.

    ``clock`` stamps JSON snapshots (injected, so simulated-time tests get
    deterministic timestamps); ``enabled=False`` makes every instrument a
    no-op while keeping the full API, which is how the telemetry benchmark
    measures instrumentation overhead without branching at call sites.
    """

    def __init__(self, clock: Clock = None, enabled: bool = True):
        self._clock = clock or SystemClock()
        self.enabled = enabled
        self._lock = threading.Lock()
        self._instruments: Dict[str, _Instrument] = {}

    # -------------------------------------------------------------- registration
    def counter(self, name: str, help_text: str = "",
                labelnames: Iterable[str] = ()) -> Counter:
        return self._register(Counter, name, help_text, tuple(labelnames))

    def gauge(self, name: str, help_text: str = "",
              labelnames: Iterable[str] = ()) -> Gauge:
        return self._register(Gauge, name, help_text, tuple(labelnames))

    def histogram(self, name: str, help_text: str = "",
                  labelnames: Iterable[str] = (),
                  buckets: Iterable[float] = DEFAULT_LATENCY_BUCKETS) -> Histogram:
        return self._register(Histogram, name, help_text, tuple(labelnames),
                              buckets=tuple(buckets))

    def _register(self, cls, name: str, help_text: str,
                  labelnames: Tuple[str, ...], **extra: Any) -> Any:
        with self._lock:
            existing = self._instruments.get(name)
            if existing is not None:
                if not isinstance(existing, cls):
                    raise ValueError(
                        "metric {!r} already registered as {} (wanted {})".format(
                            name, existing.kind, cls.kind))
                if existing.labelnames != labelnames:
                    raise ValueError(
                        "metric {!r} already registered with labels {!r} "
                        "(wanted {!r})".format(name, existing.labelnames,
                                               labelnames))
                return existing
            if cls is Histogram:
                instrument = Histogram(name, help_text, labelnames,
                                       extra["buckets"], self.enabled)
            else:
                instrument = cls(name, help_text, labelnames, self.enabled)
            self._instruments[name] = instrument
            return instrument

    # ------------------------------------------------------------------- timing
    def time_histogram(self, histogram: Histogram,
                       **labels: Any) -> "_HistogramTimer":
        """``with registry.time_histogram(h): ...`` observes the elapsed wall time."""
        return _HistogramTimer(histogram, labels)

    # ------------------------------------------------------------------- output
    def instruments(self) -> List[_Instrument]:
        with self._lock:
            return [self._instruments[name]
                    for name in sorted(self._instruments)]

    def get(self, name: str) -> Optional[_Instrument]:
        with self._lock:
            return self._instruments.get(name)

    def render_prometheus(self) -> str:
        """The full registry in Prometheus text exposition format 0.0.4."""
        lines: List[str] = []
        for instrument in self.instruments():
            lines.extend(instrument.expose())
        return "\n".join(lines) + "\n"

    def snapshot(self) -> Dict[str, Any]:
        """A typed JSON view of every registered series."""
        return {
            "enabled": self.enabled,
            "scraped_at": self._clock.now().isoformat(),
            "metrics": [instrument.snapshot()
                        for instrument in self.instruments()],
        }

    def reset(self) -> None:
        """Drop every recorded sample (instruments stay registered)."""
        for instrument in self.instruments():
            instrument.clear()


class _HistogramTimer:
    """A lightweight context manager timing one block into a histogram."""

    __slots__ = ("_histogram", "_labels", "_start")

    def __init__(self, histogram: Histogram, labels: Dict[str, Any]):
        self._histogram = histogram
        self._labels = labels

    def __enter__(self) -> "_HistogramTimer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self._histogram.observe(time.perf_counter() - self._start,
                                **self._labels)


# --------------------------------------------------------------------- default
_default_lock = threading.Lock()
_default_registry = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-wide default registry (what ``/v2/metrics`` serves)."""
    return _default_registry


def set_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Swap the process default; returns the previous one.

    Components bind their instruments at construction time, so the swap
    affects services built *after* it — build order is the isolation
    boundary (the telemetry benchmark and tests rely on this).
    """
    global _default_registry
    with _default_lock:
        previous = _default_registry
        _default_registry = registry
    return previous
