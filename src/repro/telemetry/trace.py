"""Trace/correlation-id propagation across threads and processes.

The gateway's ``RequestIdMiddleware`` activates the request id as the
current trace for the duration of the request; everything the request
touches — shard fan-out workers, pooled completion callbacks, journal
appends, scheduler firings — reads :func:`current_trace_id` and stamps it
onto whatever it produces.  Kernel events grow an ``origin_request_id``
payload field (see ``LifecycleManager._publish``), the journal persists
the payload verbatim, and the replication stream ships the record as-is —
so one ``X-Request-Id`` is greppable on the primary's wire log, in the
primary's journal, and in every follower's applied copy, surviving
promotion.

Thread-locals do not cross the :class:`~repro.workers.WorkerPool`
boundary, so submission sites capture the id *now* and re-activate it on
the worker (:func:`current_trace_id` + :func:`trace_scope`); the scope is
a plain slotted context manager, cheap enough for the dispatch hot path.
"""

from __future__ import annotations

import threading
import uuid
from typing import Any, Optional

_state = threading.local()


def new_trace_id(prefix: str = "trc") -> str:
    """A fresh correlation id (``prefix-<12 hex chars>``)."""
    return "{}-{}".format(prefix, uuid.uuid4().hex[:12])


def current_trace_id() -> Optional[str]:
    """The trace id active on this thread, or ``None`` outside any scope."""
    return getattr(_state, "trace_id", None)


class trace_scope:
    """Activate ``trace_id`` for a block; restores the previous id on exit.

    ``trace_scope(None)`` is a no-op scope — callers propagating a
    captured id never need to branch on whether one existed.
    """

    __slots__ = ("_trace_id", "_previous")

    def __init__(self, trace_id: Optional[str]):
        self._trace_id = trace_id
        self._previous: Optional[str] = None

    def __enter__(self) -> Optional[str]:
        if self._trace_id is not None:
            self._previous = getattr(_state, "trace_id", None)
            _state.trace_id = self._trace_id
        return self._trace_id

    def __exit__(self, *exc_info: Any) -> None:
        if self._trace_id is not None:
            _state.trace_id = self._previous


class TraceContext:
    """The package's named front door over the thread-local trace state."""

    @staticmethod
    def current() -> Optional[str]:
        return current_trace_id()

    @staticmethod
    def activate(trace_id: Optional[str]) -> trace_scope:
        """``with TraceContext.activate(rid): ...`` — scope a correlation id."""
        return trace_scope(trace_id)

    @staticmethod
    def ensure(prefix: str = "trc") -> trace_scope:
        """Activate the current id if one exists, else a fresh ``prefix-…`` id.

        Background entry points (scheduler ticks, maintenance jobs) use
        this so their downstream events always carry *some* origin id.
        """
        return trace_scope(current_trace_id() or new_trace_id(prefix))

    @staticmethod
    def new_id(prefix: str = "trc") -> str:
        return new_trace_id(prefix)
