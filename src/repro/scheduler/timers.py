"""The timer service: a priority queue of named, durable, cancellable timers.

The paper's lifecycle model includes "deadlines and time constraints"
(§IV.A) and its monitoring requirement asks for "particular attention to
delays" (§II.B-4).  Until now the repro only *reported* deadline state; the
timer service is the clock-driven half of acting on it.

Design
------
* **Named and idempotent.**  Every timer has a caller-chosen id
  (``"deadline:inst-42"``).  Scheduling an id that already exists *replaces*
  the previous timer — re-entering a phase simply moves its deadline timer,
  no duplicate firings.  Cancelling an unknown id is a no-op that returns
  ``False``.
* **Priority queue, injected clock.**  Pending timers sit in a heap keyed
  by ``(fire_at, seq)``; :meth:`TimerService.fire_due` pops every timer
  whose ``fire_at`` is at or before ``clock.now()`` and hands it to the
  handler registered for its kind.  The boundary is inclusive: a timer due
  *exactly* now fires now.  There is no background thread — the host ticks
  the service (deterministically under a
  :class:`~repro.clock.SimulatedClock`, or from
  :class:`~repro.scheduler.scheduler.SchedulerDaemon` under wall-clock).
  Replacement and cancellation use lazy deletion: the heap entry stays put
  and is discarded when popped, so both are O(log n) amortised.
* **Recurring timers.**  A timer with ``interval_seconds`` reschedules
  itself when it fires, at ``fire_at + interval``; if that is already in
  the past (the host slept through several periods) the next occurrence is
  moved to ``now + interval`` — maintenance jobs catch up with *one* run,
  they do not fire a storm of missed ticks.
* **Durable.**  Every mutation is published on the kernel event bus as
  ``timer.scheduled`` / ``timer.cancelled`` / ``timer.fired`` — the
  persistence coordinator journals those like any other kernel event, the
  snapshot manifest embeds :meth:`dump_state`, and
  :func:`~repro.persistence.recovery.recover_into` rebuilds the pending set
  through the silent :meth:`install_timer` / :meth:`remove_timer` hooks.
  A recurring timer's firing publishes the follow-up ``timer.scheduled``
  for its next occurrence, so replay is a plain state reducer.
"""

from __future__ import annotations

import heapq
import threading
from dataclasses import dataclass, field
from datetime import datetime, timedelta, timezone
from typing import Any, Callable, Dict, List, Optional

from ..clock import Clock, SystemClock
from ..errors import SchedulerError
from ..telemetry import get_registry


def _aware(moment: datetime) -> datetime:
    """Normalise any datetime to UTC (the kernel clocks are all tz-aware).

    Heap ordering compares ``fire_at`` values against the clock; one naive
    datetime accepted from an API caller would make every later comparison
    raise, wedging the whole queue — so naivety is repaired at the door.
    Aware non-UTC offsets are converted too, so the isoformat of any stored
    ``fire_at`` sorts chronologically (the timer listing sorts on it).
    """
    if moment.tzinfo is None:
        return moment.replace(tzinfo=timezone.utc)
    return moment.astimezone(timezone.utc)


@dataclass
class Timer:
    """One pending (or just-fired) timer.

    Attributes:
        timer_id: caller-chosen name; the idempotency/cancellation key.
        fire_at: when the timer is due (kernel clock).
        kind: handler routing key — ``"deadline"``, ``"retry"``,
            ``"maintenance"`` or anything a host registers.
        subject_id: the entity the timer is about (instance id, job name).
        payload: kind-specific details, carried into the firing.
        interval_seconds: when set, the timer recurs with this period.
        created_at: when the timer was (last) scheduled.
        attempts: how many times this named timer has fired so far.
    """

    timer_id: str
    fire_at: datetime
    kind: str = "user"
    subject_id: str = ""
    payload: Dict[str, Any] = field(default_factory=dict)
    interval_seconds: Optional[float] = None
    created_at: Optional[datetime] = None
    attempts: int = 0

    @property
    def is_recurring(self) -> bool:
        return self.interval_seconds is not None

    def to_dict(self) -> Dict[str, Any]:
        return {
            "timer_id": self.timer_id,
            "fire_at": self.fire_at.isoformat(),
            "kind": self.kind,
            "subject_id": self.subject_id,
            "payload": dict(self.payload),
            "interval_seconds": self.interval_seconds,
            "created_at": self.created_at.isoformat() if self.created_at else None,
            "attempts": self.attempts,
        }

    def __post_init__(self):
        self.fire_at = _aware(self.fire_at)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "Timer":
        created = data.get("created_at")
        return cls(
            timer_id=data["timer_id"],
            fire_at=datetime.fromisoformat(data["fire_at"]),
            kind=data.get("kind", "user"),
            subject_id=data.get("subject_id", ""),
            payload=dict(data.get("payload") or {}),
            interval_seconds=data.get("interval_seconds"),
            created_at=datetime.fromisoformat(created) if created else None,
            attempts=int(data.get("attempts", 0)),
        )


@dataclass
class TimerFiring:
    """The outcome of one timer firing, returned by :meth:`fire_due`."""

    timer: Timer
    fired_at: datetime
    #: How late the firing was relative to ``fire_at`` (>= 0; the service
    #: never fires early).  Under a simulated clock this measures how far
    #: the host let time advance between ticks; under wall-clock it is the
    #: tick loop's scheduling drift.
    drift_seconds: float = 0.0
    handled: bool = True
    error: str = ""

    def to_dict(self) -> Dict[str, Any]:
        return {
            "timer": self.timer.to_dict(),
            "fired_at": self.fired_at.isoformat(),
            "drift_seconds": round(self.drift_seconds, 6),
            "handled": self.handled,
            "error": self.error,
        }


#: Handler contract: ``callable(timer, fired_at) -> None``.
TimerHandler = Callable[[Timer, datetime], None]


class TimerService:
    """Heap-backed registry of named timers, fired against the injected clock."""

    def __init__(self, clock: Clock = None, bus=None):
        self._clock = clock or SystemClock()
        self._bus = bus
        self._lock = threading.RLock()
        #: timer id -> live Timer; the single source of truth.
        self._timers: Dict[str, Timer] = {}
        #: heap of (fire_at, seq, timer_id); stale entries (replaced or
        #: cancelled ids) are discarded lazily on pop.
        self._heap: List[Any] = []
        #: timer id -> seq of its newest heap entry.  The seq counter is
        #: monotonic and NEVER reused, so an entry left in the heap by a
        #: cancel/replace can never collide with a later timer of the same
        #: name (a reset-to-zero generation scheme would fire the new timer
        #: at the old entry's earlier time).
        self._generations: Dict[str, int] = {}
        self._seq = 0
        self._scheduled_total = 0
        self._cancelled_total = 0
        self._fired_total = 0
        self._handler_failures = 0
        self._drift_sum = 0.0
        self._drift_max = 0.0
        self._handlers: Dict[str, TimerHandler] = {}
        registry = get_registry()
        self._metric_drift = registry.histogram(
            "gelee_timer_drift_seconds",
            "How late each timer fired relative to its due time.",
            buckets=(0.001, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 30.0, 60.0, 300.0))
        self._metric_fired = registry.counter(
            "gelee_timers_fired_total", "Timer firings by kind.",
            labelnames=("kind",))

    # ------------------------------------------------------------------ plumbing
    @property
    def clock(self) -> Clock:
        return self._clock

    def on(self, kind: str, handler: TimerHandler) -> None:
        """Register the handler invoked when a timer of ``kind`` fires."""
        with self._lock:
            self._handlers[kind] = handler

    # ------------------------------------------------------------------ schedule
    def schedule(self, timer_id: str, fire_at: datetime = None, *,
                 delay_seconds: float = None, kind: str = "user",
                 subject_id: str = "", payload: Dict[str, Any] = None,
                 interval_seconds: float = None) -> Timer:
        """Schedule (or replace) the named timer; returns the pending timer.

        Exactly one of ``fire_at`` (absolute) or ``delay_seconds`` (relative
        to the clock's now) must be given — except for recurring timers,
        where both may be omitted and the first firing defaults to one
        ``interval_seconds`` from now.
        """
        if not timer_id:
            raise SchedulerError("a timer needs a non-empty id")
        if interval_seconds is not None and interval_seconds <= 0:
            raise SchedulerError("interval_seconds must be positive")
        if fire_at is not None and delay_seconds is not None:
            raise SchedulerError("pass either fire_at or delay_seconds, not both")
        if fire_at is None:
            if delay_seconds is None:
                if interval_seconds is None:
                    raise SchedulerError("a one-shot timer needs fire_at or delay_seconds")
                delay_seconds = interval_seconds
            if delay_seconds < 0:
                raise SchedulerError("delay_seconds must not be negative")
            fire_at = self._clock.now() + timedelta(seconds=delay_seconds)
        timer = Timer(
            timer_id=timer_id, fire_at=fire_at, kind=kind, subject_id=subject_id,
            payload=dict(payload or {}), interval_seconds=interval_seconds,
            created_at=self._clock.now(),
        )
        with self._lock:
            replaced = timer_id in self._timers
            if replaced:
                timer.attempts = self._timers[timer_id].attempts
            self._install(timer)
            self._scheduled_total += 1
        self._publish("timer.scheduled", timer, replaced=replaced)
        return timer

    def cancel(self, timer_id: str) -> bool:
        """Cancel the named timer; ``False`` when no such timer is pending."""
        with self._lock:
            timer = self._timers.pop(timer_id, None)
            if timer is None:
                return False
            self._generations.pop(timer_id, None)
            self._cancelled_total += 1
        self._publish("timer.cancelled", timer)
        return True

    # ======================================================== recovery hooks
    # Silent installs used by :mod:`repro.persistence.recovery`: rebuilt
    # timers must not be re-published on the bus (they would be journaled
    # again).  Mirrors the managers' ``install_model``/``install_instance``.

    def install_timer(self, timer: Timer) -> None:
        """Insert/replace a timer without publishing events (journal replay)."""
        with self._lock:
            self._install(timer)

    def remove_timer(self, timer_id: str) -> bool:
        """Drop a timer without publishing events (journal replay)."""
        with self._lock:
            if self._timers.pop(timer_id, None) is None:
                return False
            self._generations.pop(timer_id, None)
            return True

    # ----------------------------------------------------------------- queries
    @property
    def pending_count(self) -> int:
        with self._lock:
            return len(self._timers)

    def get(self, timer_id: str) -> Optional[Timer]:
        with self._lock:
            return self._timers.get(timer_id)

    def pending(self, kind: str = None, subject_id: str = None) -> List[Timer]:
        """Pending timers, soonest first, optionally filtered."""
        with self._lock:
            timers = list(self._timers.values())
        if kind is not None:
            timers = [t for t in timers if t.kind == kind]
        if subject_id is not None:
            timers = [t for t in timers if t.subject_id == subject_id]
        timers.sort(key=lambda t: (t.fire_at, t.timer_id))
        return timers

    def count(self, kind: str = None) -> int:
        """Pending timers (of one kind) without copying or sorting them."""
        with self._lock:
            if kind is None:
                return len(self._timers)
            return sum(1 for timer in self._timers.values() if timer.kind == kind)

    def next_fire_at(self) -> Optional[datetime]:
        """When the soonest pending timer is due (None when idle).

        Reads the heap top, discarding stale entries (replaced/cancelled
        ids) on the way — amortised O(1), each stale entry is paid for
        once.  A live entry's ``fire_at`` always matches its timer, so the
        surviving top is the true minimum.
        """
        with self._lock:
            while self._heap:
                fire_at, entry_seq, timer_id = self._heap[0]
                if self._generations.get(timer_id) == entry_seq:
                    return fire_at
                heapq.heappop(self._heap)
            return None

    def due_count(self, now: datetime = None) -> int:
        now = _aware(now) if now is not None else self._clock.now()
        with self._lock:
            return sum(1 for t in self._timers.values() if t.fire_at <= now)

    def stats(self) -> Dict[str, Any]:
        with self._lock:
            fired = self._fired_total
            return {
                "pending": len(self._timers),
                "scheduled_total": self._scheduled_total,
                "cancelled_total": self._cancelled_total,
                "fired_total": fired,
                "handler_failures": self._handler_failures,
                "mean_drift_seconds": round(self._drift_sum / fired, 6) if fired else 0.0,
                "max_drift_seconds": round(self._drift_max, 6),
            }

    # -------------------------------------------------------------------- fire
    def fire_due(self, now: datetime = None, limit: int = None) -> List[TimerFiring]:
        """Fire every timer due at or before ``now`` (inclusive boundary).

        Timers fire in ``(fire_at, schedule order)`` order.  A handler
        failure is isolated: it is recorded on the firing (and counted) and
        the remaining due timers still fire.  Recurring timers are
        rescheduled for their next occurrence *before* their handler runs,
        so a crashing handler cannot kill the schedule.

        One call only fires timers that existed when it started: a timer
        armed *during* the call — by a handler, e.g. a zero-delay timeout
        cycle re-arming itself, or a concurrent scheduler — is fenced off by
        its install sequence number and waits for the next tick, so a tick
        always terminates and the documented per-tick set is exact.
        """
        now = _aware(now) if now is not None else self._clock.now()
        firings: List[TimerFiring] = []
        deferred: List[Any] = []
        with self._lock:
            fence = self._seq
        try:
            while limit is None or len(firings) < limit:
                with self._lock:
                    timer = self._pop_due(now, fence, deferred)
                    if timer is None:
                        break
                firings.append(self._fire_one(timer, now))
        finally:
            # Due-but-fenced entries were popped to look past them; they
            # are still pending and must go back on the heap.
            if deferred:
                with self._lock:
                    for entry in deferred:
                        heapq.heappush(self._heap, entry)
        return firings

    def _fire_one(self, timer: Timer, now: datetime) -> TimerFiring:
        """Fire one popped timer: reschedule recurrence, publish, handle."""
        with self._lock:
            timer.attempts += 1
            self._fired_total += 1
            drift = max(0.0, (now - timer.fire_at).total_seconds())
            self._drift_sum += drift
            self._drift_max = max(self._drift_max, drift)
            self._metric_drift.observe(drift)
            self._metric_fired.inc(kind=timer.kind)
            next_timer = None
            if timer.is_recurring:
                next_fire = timer.fire_at + timedelta(seconds=timer.interval_seconds)
                if next_fire <= now:
                    next_fire = now + timedelta(seconds=timer.interval_seconds)
                next_timer = Timer(
                    timer_id=timer.timer_id, fire_at=next_fire, kind=timer.kind,
                    subject_id=timer.subject_id, payload=dict(timer.payload),
                    interval_seconds=timer.interval_seconds,
                    created_at=timer.created_at, attempts=timer.attempts,
                )
                self._install(next_timer)
            handler = self._handlers.get(timer.kind)
        firing = TimerFiring(timer=timer, fired_at=now, drift_seconds=drift)
        self._publish("timer.fired", timer, fired_at=now.isoformat(),
                      drift_seconds=round(drift, 6))
        if next_timer is not None:
            self._publish("timer.scheduled", next_timer, replaced=False)
        if handler is not None:
            try:
                handler(timer, now)
            except Exception as exc:  # noqa: BLE001 - isolate timer handlers
                firing.handled = False
                firing.error = "{}: {}".format(type(exc).__name__, exc)
                with self._lock:
                    self._handler_failures += 1
        else:
            firing.handled = False
        return firing

    # -------------------------------------------------------------- durability
    def dump_state(self) -> Dict[str, Any]:
        """Snapshot-embeddable form of every pending timer (plus counters)."""
        with self._lock:
            return {
                "timers": [timer.to_dict() for timer in self._timers.values()],
                "fired_total": self._fired_total,
            }

    def restore_state(self, state: Dict[str, Any]) -> int:
        """Rebuild pending timers from :meth:`dump_state` (silent)."""
        restored = 0
        with self._lock:
            for document in (state or {}).get("timers") or []:
                self._install(Timer.from_dict(document))
                restored += 1
            self._fired_total = int((state or {}).get("fired_total", self._fired_total))
        return restored

    # ------------------------------------------------------------------ internal
    def _install(self, timer: Timer) -> None:
        """Insert/replace under the lock; the entry's seq is its generation."""
        self._seq += 1
        self._generations[timer.timer_id] = self._seq
        self._timers[timer.timer_id] = timer
        heapq.heappush(self._heap, (timer.fire_at, self._seq, timer.timer_id))

    def _pop_due(self, now: datetime, fence: int,
                 deferred: List[Any]) -> Optional[Timer]:
        """Pop the next due, still-live timer installed at or before ``fence``.

        Caller holds the lock.  Due entries installed *after* the fence
        (``entry_seq > fence``) are moved aside into ``deferred`` — the
        caller re-pushes them when its tick ends — so a firing handler that
        arms an already-due timer cannot extend the current tick.
        """
        while self._heap:
            fire_at, entry_seq, timer_id = self._heap[0]
            if fire_at > now:
                return None
            heapq.heappop(self._heap)
            if self._generations.get(timer_id) != entry_seq:
                continue  # replaced or cancelled since this entry was pushed
            if entry_seq > fence:
                deferred.append((fire_at, entry_seq, timer_id))
                continue  # armed during this tick: due on the NEXT one
            timer = self._timers.pop(timer_id, None)
            if timer is None:
                continue
            self._generations.pop(timer_id, None)
            return timer
        return None

    def _publish(self, kind: str, timer: Timer, **extra: Any) -> None:
        if self._bus is None:
            return
        from ..events import Event

        payload = {
            "timer_kind": timer.kind,
            "timer_subject_id": timer.subject_id,
            "fire_at": timer.fire_at.isoformat(),
            "interval_seconds": timer.interval_seconds,
            "timer_payload": dict(timer.payload),
            "attempts": timer.attempts,
        }
        payload.update(extra)
        self._bus.publish(Event(kind=kind, timestamp=self._clock.now(),
                                subject_id=timer.timer_id, actor=None,
                                payload=payload))
