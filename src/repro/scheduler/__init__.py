"""Temporal automation: durable timers, deadline enforcement, maintenance.

The paper models "deadlines and time constraints" (§IV.A) and asks the
monitoring side for "particular attention to delays" (§II.B-4).  This
package is the *active* half of that story — where the cockpit only
reported time, the scheduler acts on it:

* :mod:`~repro.scheduler.timers` — :class:`TimerService`, a priority-queue
  registry of named, idempotent, cancellable timers driven by the injected
  :class:`~repro.clock.Clock` and journaled through the kernel event bus;
* :mod:`~repro.scheduler.scheduler` — :class:`LifecycleScheduler`, which
  arms deadline timers on phase entry and escalates when they expire
  (notify / auto-advance along a timeout transition / invoke a bound
  action), retries failed action invocations with exponential backoff, and
  runs recurring maintenance jobs (periodic persistence checkpoints,
  journal rotation, execution-log compaction); plus
  :class:`SchedulerDaemon`, the wall-clock ticker for hosted deployments.

Pending timers are durable: their mutations are journaled like any kernel
event, snapshots embed the pending set, and crash recovery rebuilds both
timers and retry state (see :mod:`repro.persistence.recovery`).

The service tier wires everything from one knob::

    service = GeleeService(shard_count=16,
                           persistence=PersistenceConfig(directory),
                           scheduler=SchedulerConfig(
                               checkpoint_interval_seconds=300))
    service.scheduler_tick()          # or POST /v2/runtime/scheduler:tick
"""

from .scheduler import (
    DEADLINE_KIND,
    MAINTENANCE_KIND,
    RETRY_KIND,
    LifecycleScheduler,
    SchedulerConfig,
    SchedulerDaemon,
    deadline_timer_id,
    maintenance_timer_id,
    retry_timer_id,
)
from .timers import Timer, TimerFiring, TimerService

__all__ = [
    "DEADLINE_KIND",
    "MAINTENANCE_KIND",
    "RETRY_KIND",
    "LifecycleScheduler",
    "SchedulerConfig",
    "SchedulerDaemon",
    "Timer",
    "TimerFiring",
    "TimerService",
    "deadline_timer_id",
    "maintenance_timer_id",
    "retry_timer_id",
]
