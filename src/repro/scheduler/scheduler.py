"""The lifecycle scheduler: turning the clock into a driver of the runtime.

:class:`LifecycleScheduler` binds a :class:`~repro.scheduler.timers.TimerService`
to a lifecycle manager (single or sharded) and automates three families of
clock-driven behaviour:

1. **Deadline enforcement.**  Whenever the token enters a phase carrying a
   :class:`~repro.model.deadline.Deadline`, the scheduler arms the named
   timer ``deadline:<instance_id>``; leaving the phase (or completing) moves
   or disarms it.  When the timer fires and the instance is still sitting on
   the phase, the deadline's escalation policy runs:

   * ``"notify"`` — publish ``deadline.escalated`` and annotate the
     instance (kind ``"escalation"``), so the cockpit and the execution log
     see it without polling;
   * ``"advance"`` — additionally move the token along the model's
     designated timeout transition (``Deadline.timeout_to``);
   * ``"invoke"`` — additionally dispatch one of the phase's bound action
     calls (``Deadline.escalate_call_id``, defaulting to the first call)
     through :meth:`~repro.runtime.manager.LifecycleManager.invoke_action`.

   Escalation is once per phase visit: firing consumes the timer, and only
   a new phase entry re-arms it.

2. **Retry with backoff.**  A failed :class:`ActionInvocation` schedules
   ``retry:<instance_id>:<call_id>`` with exponential backoff
   (``initial_delay * factor**(attempt-1)``); firing re-invokes the action
   if the token is still on the phase.  A subsequent failure schedules the
   next attempt, success (or leaving the phase) clears the state, and after
   ``retry_max_attempts`` failures ``action.retries_exhausted`` is
   published.  The attempt counter travels inside the timer payload, so
   recovery rebuilds the backoff position exactly.

3. **Recurring maintenance.**  :meth:`register_job` wires a named callable
   to a recurring ``maintenance:<name>`` timer.  The service tier uses this
   for periodic persistence checkpoints, journal rotation and execution-log
   compaction — see :class:`SchedulerConfig`.

The scheduler never runs on its own thread: the host calls :meth:`tick`
(deterministically with a :class:`~repro.clock.SimulatedClock`, or from
:class:`SchedulerDaemon` / ``POST /v2/runtime/scheduler:tick`` under
wall-clock).  All timer mutations flow through the event bus, so a durable
deployment journals them and rebuilds the pending set on recovery.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from datetime import datetime
from typing import Any, Callable, Dict, List, Optional

from ..clock import Clock
from ..errors import GeleeError, SchedulerError
from ..events import Event, EventBus
from ..model.deadline import ESCALATION_POLICIES
from ..telemetry import (DEFAULT_FAST_BUCKETS, TraceContext, get_registry,
                         span_scope)
from .timers import Timer, TimerFiring, TimerService

#: Timer-id prefixes; also the timer ``kind`` routing keys.
DEADLINE_KIND = "deadline"
RETRY_KIND = "retry"
MAINTENANCE_KIND = "maintenance"


def deadline_timer_id(instance_id: str) -> str:
    return "{}:{}".format(DEADLINE_KIND, instance_id)


def retry_timer_id(instance_id: str, call_id: str) -> str:
    return "{}:{}:{}".format(RETRY_KIND, instance_id, call_id)


def maintenance_timer_id(job_name: str) -> str:
    return "{}:{}".format(MAINTENANCE_KIND, job_name)


@dataclass
class SchedulerConfig:
    """Behaviour knobs of the lifecycle scheduler.

    Attributes:
        enabled: master switch; a disabled scheduler subscribes to nothing
            and :meth:`LifecycleScheduler.tick` is a no-op.
        deadline_timers: arm deadline timers on phase entry.
        retry_failed_actions: schedule retry timers for failed invocations.
        retry_max_attempts: retries per (instance, call) before giving up.
        retry_initial_delay_seconds: backoff base delay.
        retry_backoff_factor: multiplier applied per attempt.
        checkpoint_interval_seconds: when set (and the deployment is
            durable), register the periodic persistence-checkpoint job.
        journal_rotate_interval_seconds: when set, seal the write-ahead
            journal's open segment on this period.
        log_compact_interval_seconds: when set, compact the execution log
            on this period (to ``log_compact_max_entries``, or the log's
            own retention bound).
        log_compact_max_entries: target size for the periodic compaction.
        slo_interval_seconds: when set, evaluate the service's SLO rules
            (:mod:`repro.telemetry.slo`) on this period — threshold edges
            publish ``alert.fired`` / ``alert.resolved`` bus events.
        history_interval_seconds: when set, capture one sample of every
            registry series into the node's telemetry history rings
            (:mod:`repro.telemetry.history`) on this period — what
            ``GET /v2/runtime/telemetry/history`` serves.
        actor: the actor recorded on scheduler-driven operations
            (escalation moves, retries, annotations).
    """

    enabled: bool = True
    deadline_timers: bool = True
    retry_failed_actions: bool = True
    retry_max_attempts: int = 3
    retry_initial_delay_seconds: float = 300.0
    retry_backoff_factor: float = 2.0
    checkpoint_interval_seconds: Optional[float] = None
    journal_rotate_interval_seconds: Optional[float] = None
    log_compact_interval_seconds: Optional[float] = None
    log_compact_max_entries: Optional[int] = None
    slo_interval_seconds: Optional[float] = None
    history_interval_seconds: Optional[float] = None
    actor: str = "scheduler"

    def __post_init__(self):
        if self.retry_max_attempts < 0:
            raise SchedulerError("retry_max_attempts must not be negative")
        if self.retry_initial_delay_seconds < 0:
            raise SchedulerError("retry_initial_delay_seconds must not be negative")
        if self.retry_backoff_factor < 1.0:
            raise SchedulerError("retry_backoff_factor must be at least 1.0")


class LifecycleScheduler:
    """Deadline enforcement, retries and maintenance over one runtime."""

    def __init__(self, manager, bus: EventBus = None, clock: Clock = None,
                 timers: TimerService = None, config: SchedulerConfig = None):
        self._manager = manager
        self._bus = bus if bus is not None else manager.bus
        self._clock = clock or manager.clock
        self._config = config or SchedulerConfig()
        self.timers = timers or TimerService(clock=self._clock, bus=self._bus)
        #: (instance_id, call_id) -> failed attempts so far.
        self._retry_attempts: Dict[Any, int] = {}
        self._jobs: Dict[str, Callable[[], Any]] = {}
        self._job_runs: Dict[str, int] = {}
        self._job_last_result: Dict[str, Any] = {}
        self._lock = threading.RLock()
        self._escalations = 0
        self._escalation_failures = 0
        self._retries_dispatched = 0
        self._retries_exhausted = 0
        self._ticks = 0
        #: Read-replica mode: timers replicate in (via the recovery hooks)
        #: but never *fire* — enforcement is the primary's job.  Promotion
        #: clears this and the standby's timer set becomes live.
        self.dormant = False
        registry = get_registry()
        self._metric_tick = registry.histogram(
            "gelee_scheduler_tick_seconds",
            "Wall-clock time of one scheduler tick (flush + fire due timers).",
            buckets=DEFAULT_FAST_BUCKETS)
        self._metric_escalations = registry.counter(
            "gelee_scheduler_escalations_total",
            "Deadline escalations by outcome.",
            labelnames=("outcome",))
        self._unsubscribes: List[Callable[[], None]] = []
        self.timers.on(DEADLINE_KIND, self._on_deadline_timer)
        self.timers.on(RETRY_KIND, self._on_retry_timer)
        self.timers.on(MAINTENANCE_KIND, self._on_maintenance_timer)
        if self._config.enabled:
            self._subscribe()

    # ------------------------------------------------------------------ plumbing
    @property
    def config(self) -> SchedulerConfig:
        return self._config

    @property
    def clock(self) -> Clock:
        return self._clock

    def close(self) -> None:
        """Detach from the bus; pending timers stay (they are durable state)."""
        for unsubscribe in self._unsubscribes:
            unsubscribe()
        self._unsubscribes = []

    def _subscribe(self) -> None:
        subscribe = self._bus.subscribe
        self._unsubscribes = [
            subscribe("instance.phase_entered", self._on_instance_event),
            subscribe("instance.completed", self._on_instance_event),
            # Model swaps (owner change / accepted propagation) can move the
            # token or change the phase's deadline without a phase entry.
            subscribe("instance.model_changed", self._on_instance_event),
            subscribe("propagation.accepted", self._on_instance_event),
            subscribe("action.failed", self._on_action_failed),
            subscribe("action.completed", self._on_action_completed),
        ]

    # ---------------------------------------------------------------------- tick
    def tick(self, now: datetime = None, limit: int = None) -> List[TimerFiring]:
        """Fire every due timer; the host's single entry point for time.

        With a batching bus the buffered tail is flushed first, so deadline
        timers armed by not-yet-delivered ``phase_entered`` events exist
        before dueness is evaluated.  A *dormant* scheduler (read replica,
        not yet promoted) never fires: its pending set mirrors the
        primary's, which is the one enforcing them.
        """
        if not self._config.enabled or self.dormant:
            return []
        started = time.perf_counter()
        # Background entry point: give scheduler-driven events an origin id
        # of their own (``tick-…``) unless the tick runs inside a request.
        with TraceContext.ensure("tick"):
            with span_scope("scheduler.tick") as span:
                if hasattr(self._bus, "flush"):
                    self._bus.flush()
                with self._lock:
                    self._ticks += 1
                firings = self.timers.fire_due(now=now, limit=limit)
                if span is not None:
                    span.attrs["fired"] = len(firings)
        self._metric_tick.observe(time.perf_counter() - started)
        return firings

    # ------------------------------------------------------------- bus handlers
    def _on_instance_event(self, event: Event) -> None:
        if self._config.deadline_timers:
            self._sync_deadline_timer(event.subject_id)

    def _sync_deadline_timer(self, instance_id: str) -> None:
        """Make the instance's deadline timer match its live state.

        Reconciles instead of reacting to the event payload: with a
        batching bus the instance may already be phases ahead of the event
        being delivered, and re-deriving from current state makes delivery
        of the whole batch converge on the right timer regardless of
        interleaving.  Uses the lock-free ``peek_instance`` because bus
        handlers may run inside another shard's locked flush section.
        """
        timer_id = deadline_timer_id(instance_id)
        instance = self._manager.peek_instance(instance_id)
        if instance is None:
            self.timers.cancel(timer_id)
            return
        visit = instance.current_visit()
        phase = instance.current_phase()
        deadline = phase.deadline if phase is not None else None
        if instance.is_completed or visit is None or deadline is None:
            self.timers.cancel(timer_id)
            return
        due_at = deadline.due_at(visit.entered_at)
        existing = self.timers.get(timer_id)
        if (existing is not None and existing.fire_at == due_at
                and existing.payload.get("phase_id") == phase.phase_id):
            return  # already armed correctly; avoid journal churn
        self.timers.schedule(
            timer_id, fire_at=due_at, kind=DEADLINE_KIND, subject_id=instance_id,
            payload={"phase_id": phase.phase_id,
                     "entered_at": visit.entered_at.isoformat()})

    def _on_action_failed(self, event: Event) -> None:
        if not self._config.retry_failed_actions:
            return
        call_id = event.payload.get("call_id")
        if not call_id:
            return
        instance_id = event.subject_id
        key = (instance_id, call_id)
        with self._lock:
            attempt = self._retry_attempts.get(key, 0)
            if attempt >= self._config.retry_max_attempts:
                self._retry_attempts.pop(key, None)
                self._retries_exhausted += 1
                exhausted = True
            else:
                self._retry_attempts[key] = attempt + 1
                exhausted = False
        if exhausted:
            self.timers.cancel(retry_timer_id(instance_id, call_id))
            self._publish("action.retries_exhausted", instance_id,
                          call_id=call_id, attempts=attempt,
                          phase_id=event.payload.get("phase_id"))
            return
        delay = (self._config.retry_initial_delay_seconds
                 * (self._config.retry_backoff_factor ** attempt))
        self.timers.schedule(
            retry_timer_id(instance_id, call_id), delay_seconds=delay,
            kind=RETRY_KIND, subject_id=instance_id,
            payload={"call_id": call_id, "attempt": attempt + 1,
                     "phase_id": event.payload.get("phase_id")})

    def _on_action_completed(self, event: Event) -> None:
        call_id = event.payload.get("call_id")
        if not call_id:
            return
        key = (event.subject_id, call_id)
        with self._lock:
            cleared = self._retry_attempts.pop(key, None) is not None
        if cleared:
            self.timers.cancel(retry_timer_id(event.subject_id, call_id))

    # ------------------------------------------------------------ timer handlers
    def _on_deadline_timer(self, timer: Timer, now: datetime) -> None:
        instance_id = timer.subject_id
        instance = self._manager.peek_instance(instance_id)
        if instance is None or instance.is_completed:
            return
        phase = instance.current_phase()
        visit = instance.current_visit()
        if (phase is None or visit is None or phase.deadline is None
                or phase.phase_id != timer.payload.get("phase_id")):
            return  # the token moved on between arming and firing
        deadline = phase.deadline
        policy = deadline.escalation if deadline.escalation in ESCALATION_POLICIES \
            else "notify"
        overdue_seconds = max(0.0, (now - deadline.due_at(visit.entered_at))
                              .total_seconds())
        actor = self._config.actor
        # Policy action first, bookkeeping after: a failed advance/invoke
        # must not leave the instance *marked* escalated.  On failure the
        # timer (already consumed by the pop) is re-armed a backoff step
        # away, so one transient error does not abandon the deadline.
        try:
            if policy == "advance":
                target = deadline.timeout_to
                if not target:
                    raise SchedulerError(
                        "deadline on phase {!r} escalates with 'advance' but "
                        "designates no timeout_to phase".format(phase.phase_id))
                self._manager.move_to(instance_id, actor, target)
            elif policy == "invoke":
                call_id = deadline.escalate_call_id
                if not call_id:
                    if not phase.actions:
                        raise SchedulerError(
                            "deadline on phase {!r} escalates with 'invoke' but "
                            "the phase has no action calls".format(phase.phase_id))
                    call_id = phase.actions[0].call_id
                self._invoke_action(instance_id, actor, call_id)
            self._manager.annotate(
                instance_id, actor,
                "deadline on phase {!r} expired ({})".format(phase.phase_id, policy),
                phase_id=phase.phase_id, kind="escalation")
        except GeleeError:
            with self._lock:
                self._escalation_failures += 1
            self._metric_escalations.inc(outcome="failed")
            self.timers.schedule(
                timer.timer_id,
                delay_seconds=max(1.0, self._config.retry_initial_delay_seconds),
                kind=DEADLINE_KIND, subject_id=instance_id,
                payload=dict(timer.payload))
            raise
        with self._lock:
            self._escalations += 1
        self._metric_escalations.inc(outcome="escalated")
        self._publish("deadline.escalated", instance_id,
                      phase_id=phase.phase_id, policy=policy,
                      overdue_seconds=round(overdue_seconds, 6),
                      timeout_to=deadline.timeout_to)

    def _on_retry_timer(self, timer: Timer, now: datetime) -> None:
        instance_id = timer.subject_id
        call_id = timer.payload.get("call_id", "")
        instance = self._manager.peek_instance(instance_id)
        key = (instance_id, call_id)
        if (instance is None or instance.is_completed
                or instance.current_phase_id != timer.payload.get("phase_id")):
            with self._lock:
                self._retry_attempts.pop(key, None)
            return  # the token moved on; the failed action is moot
        with self._lock:
            self._retries_dispatched += 1
        # A failure inside re-publishes action.failed, which schedules the
        # next backoff step (or exhausts); success publishes action.completed,
        # which clears the attempt counter.
        self._invoke_action(instance_id, self._config.actor, call_id)

    def _invoke_action(self, instance_id: str, actor: str, call_id: str) -> None:
        """Fire an action ride-the-completion-callback style.

        Retries and escalations do not need the synchronous outcome — they
        are driven entirely by the ``action.completed`` / ``action.failed``
        events the completion publishes — so prefer the submit-only path
        when the manager has one: a slow web service then costs the tick
        nothing.  Managers without the async surface (test doubles) fall
        back to the blocking call.
        """
        submit = getattr(self._manager, "invoke_action_async", None)
        if submit is not None:
            submit(instance_id, actor, call_id)
        else:
            self._manager.invoke_action(instance_id, actor, call_id)

    def _on_maintenance_timer(self, timer: Timer, now: datetime) -> None:
        name = timer.subject_id
        job = self._jobs.get(name)
        if job is None:
            # An orphan that slipped past pruning: self-cancel the
            # (already reinstalled) recurrence instead of failing forever.
            self.timers.cancel(timer.timer_id)
            raise SchedulerError("no maintenance job named {!r} is registered".format(name))
        result = job()
        with self._lock:
            self._job_runs[name] = self._job_runs.get(name, 0) + 1
            self._job_last_result[name] = result

    # -------------------------------------------------------------- maintenance
    def register_job(self, name: str, job: Callable[[], Any],
                     interval_seconds: float,
                     start_delay_seconds: float = None) -> Timer:
        """Register a recurring maintenance job and arm its timer.

        When the named timer already exists — restored by crash recovery —
        and its interval still matches, the surviving schedule is kept and
        only the callable is (re)bound, so restarts do not reset job phase.
        A *changed* interval wins over the restored timer: the job is
        re-armed on the new period (config is the source of truth).
        """
        if interval_seconds is None or interval_seconds <= 0:
            raise SchedulerError("a maintenance job needs a positive interval")
        with self._lock:
            self._jobs[name] = job
        timer_id = maintenance_timer_id(name)
        existing = self.timers.get(timer_id)
        if existing is not None and existing.interval_seconds == interval_seconds:
            return existing
        return self.timers.schedule(
            timer_id, delay_seconds=start_delay_seconds, kind=MAINTENANCE_KIND,
            subject_id=name, interval_seconds=interval_seconds)

    def cancel_job(self, name: str) -> bool:
        with self._lock:
            self._jobs.pop(name, None)
        return self.timers.cancel(maintenance_timer_id(name))

    def prune_orphan_jobs(self) -> List[str]:
        """Cancel recovered maintenance timers whose job is no longer
        configured — otherwise they would fire (and fail) forever.  The
        service tier calls this after registering the configured jobs."""
        with self._lock:
            known = set(self._jobs)
        orphans = [timer.subject_id
                   for timer in self.timers.pending(kind=MAINTENANCE_KIND)
                   if timer.subject_id not in known]
        for name in orphans:
            self.timers.cancel(maintenance_timer_id(name))
        return orphans

    # ----------------------------------------------------------------- recovery
    def resync_after_recovery(self) -> int:
        """Rebuild in-memory retry counters from the recovered timer set.

        Pending ``retry:*`` timers carry their attempt number in the
        payload; re-seeding the counter map from them makes the backoff
        sequence continue exactly where the crashed process left it.
        Returns how many retry states were rebuilt.
        """
        rebuilt = 0
        with self._lock:
            for timer in self.timers.pending(kind=RETRY_KIND):
                call_id = timer.payload.get("call_id")
                if not call_id:
                    continue
                self._retry_attempts[(timer.subject_id, call_id)] = int(
                    timer.payload.get("attempt", 1))
                rebuilt += 1
        return rebuilt

    # ------------------------------------------------------------------- status
    def status(self) -> Dict[str, Any]:
        next_fire = self.timers.next_fire_at()
        with self._lock:
            maintenance = {
                name: {"runs": self._job_runs.get(name, 0),
                       "last_result": self._job_last_result.get(name)}
                for name in self._jobs
            }
            return {
                "enabled": self._config.enabled,
                "dormant": self.dormant,
                "ticks": self._ticks,
                "timers": self.timers.stats(),
                "next_fire_at": next_fire.isoformat() if next_fire else None,
                "escalations": self._escalations,
                "escalation_failures": self._escalation_failures,
                "retries_dispatched": self._retries_dispatched,
                "retries_exhausted": self._retries_exhausted,
                "retry_states": len(self._retry_attempts),
                "maintenance": maintenance,
            }

    # ------------------------------------------------------------------ internal
    def _publish(self, kind: str, subject_id: str, **payload: Any) -> None:
        self._bus.publish(Event(kind=kind, timestamp=self._clock.now(),
                                subject_id=subject_id, actor=self._config.actor,
                                payload=payload))


class SchedulerDaemon:
    """Background ticker for wall-clock deployments — election-aware.

    Deterministic hosts (tests, benchmarks, the simulated scenarios) call
    :meth:`LifecycleScheduler.tick` themselves; a hosted server under a
    :class:`~repro.clock.SystemClock` starts this daemon instead, which
    ticks on a fixed wall-clock period until stopped.

    With an ``elector`` — anything exposing ``heartbeat() -> bool``, i.e. a
    :class:`~repro.coordination.LeaderElector` or the service's
    :class:`~repro.coordination.Coordinator` — each round first runs one
    election heartbeat (renew while leading, campaign otherwise) and only
    ticks while this node leads.  Every contender in the cluster runs the
    same daemon; the lease store guarantees at most one of them ticks per
    epoch — the **single-ticker** property deadline enforcement needs
    (two tickers would double-fire escalations and retries).

    Shutdown is prompt, idempotent and thread-safe: ``stop()`` wakes the
    event-based sleep immediately (a supervised demotion never waits out a
    full poll period), tolerates concurrent and repeated calls, and is safe
    to call from the daemon thread itself (a tick that decides to shut its
    own host down must not self-join).
    """

    def __init__(self, scheduler: LifecycleScheduler, poll_seconds: float = 1.0,
                 elector=None):
        if poll_seconds <= 0:
            raise SchedulerError("poll_seconds must be positive")
        self._scheduler = scheduler
        self._poll = poll_seconds
        self._elector = elector
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self._lifecycle_lock = threading.Lock()
        self._state_lock = threading.Lock()
        self._ticks = 0
        self._skipped_not_leader = 0
        self._tick_errors = 0

    @property
    def is_running(self) -> bool:
        thread = self._thread
        return thread is not None and thread.is_alive()

    def start(self) -> "SchedulerDaemon":
        with self._lifecycle_lock:
            if self.is_running:
                return self
            self._stop.clear()
            self._thread = threading.Thread(target=self._run, daemon=True,
                                            name="gelee-scheduler")
            self._thread.start()
            return self

    def stop(self, timeout: float = 5.0) -> None:
        """Signal the loop and wait for it to exit.

        Idempotent (a second call is a no-op), safe under concurrency (only
        one caller joins the thread) and safe from the daemon thread itself
        (the self-join is skipped; the loop exits right after the handler
        returns because the event is already set).
        """
        self._stop.set()  # wakes a sleeping wait(poll) immediately
        with self._lifecycle_lock:
            thread, self._thread = self._thread, None
        if thread is not None and thread is not threading.current_thread():
            thread.join(timeout=timeout)

    def run_once(self) -> bool:
        """One daemon round: election heartbeat, then tick while leading.

        Returns whether this round ticked.  Public so deterministic tests
        drive the exact loop body the thread runs.
        """
        leading = True
        if self._elector is not None:
            leading = bool(self._elector.heartbeat())
        if not leading:
            with self._state_lock:
                self._skipped_not_leader += 1
            return False
        try:
            self._scheduler.tick()
        except Exception:  # noqa: BLE001 - the daemon must survive bad ticks
            with self._state_lock:
                self._tick_errors += 1
            return False
        with self._state_lock:
            self._ticks += 1
        return True

    def stats(self) -> Dict[str, Any]:
        with self._state_lock:
            return {
                "running": self.is_running,
                "poll_seconds": self._poll,
                "election_aware": self._elector is not None,
                "ticks": self._ticks,
                "skipped_not_leader": self._skipped_not_leader,
                "tick_errors": self._tick_errors,
            }

    def __enter__(self) -> "SchedulerDaemon":
        return self.start()

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        self.stop()

    def _run(self) -> None:
        while not self._stop.is_set():
            try:
                self.run_once()
            except Exception:  # noqa: BLE001 - heartbeat errors must not kill the loop
                with self._state_lock:
                    self._tick_errors += 1
            self._stop.wait(self._poll)
