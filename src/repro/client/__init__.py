"""The Gelee client SDK.

Typed Python access to the v2 API, in-process or over HTTP::

    from repro.client import GeleeClient

    client = GeleeClient.in_process(shard_count=16, actor="alice")
    client = GeleeClient.connect("127.0.0.1", 8080, actor="alice")
"""

from .gelee import (
    GeleeApiError,
    GeleeClient,
    HttpTransport,
    InProcessTransport,
    OperationHandle,
    Page,
)

__all__ = [
    "GeleeApiError",
    "GeleeClient",
    "HttpTransport",
    "InProcessTransport",
    "OperationHandle",
    "Page",
]
