"""The Python client SDK for the Gelee v2 API.

:class:`GeleeClient` is transport-agnostic: the same client object drives the
service **in-process** (straight against a :class:`~repro.service.rest.RestRouter`
— no sockets, ideal for tests and embedded use) or **over HTTP** (against the
:class:`~repro.service.http.GeleeHttpServer` transport).  Both paths speak
the v2 envelope, so the client sees identical behaviour either way::

    client = GeleeClient.in_process(shard_count=16, actor="alice")
    # ... or ...
    client = GeleeClient.connect(host, port, actor="alice")

    page = client.list_instances(owner="alice", page_size=100)
    for summary in client.iter_instances(owner="alice"):
        ...
    result = client.batch_advance(ids, actor="alice")
    handle = client.batch_advance(ids, actor="alice", wait=False)
    operation = client.wait_operation(handle.operation_id)

Failed calls raise :class:`GeleeApiError` carrying the machine-readable code
(``INSTANCE_NOT_FOUND``, ``VALIDATION_FAILED``, ...), the HTTP status and the
server-side request id — never a bare string.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional, Tuple

from ..errors import GeleeError
from ..service.transport import Request, Response
from ..service.v2.dto import AdvanceItem, BatchResult, CreateInstanceItem
from ..service.v2.envelope import Envelope, ErrorInfo
from ..service.v2.pagination import PageInfo


class GeleeApiError(GeleeError):
    """A v2 call failed; carries the machine-readable error model."""

    def __init__(self, error: ErrorInfo, request_id: str = ""):
        self.code = error.code
        self.status = error.status
        self.details = dict(error.details)
        self.request_id = request_id
        super().__init__("[{}] {} ({})".format(error.code, error.message,
                                               "HTTP {}".format(error.status)))


# ----------------------------------------------------------------- transports
class InProcessTransport:
    """Drives a :class:`RestRouter` directly — no sockets, no serialisation."""

    def __init__(self, router):
        self.router = router

    def request(self, method: str, path: str, query: Dict[str, str] = None,
                body: Dict[str, Any] = None, actor: str = None) -> Response:
        return self.router.handle(Request(
            method=method, path=path,
            query={key: str(value) for key, value in (query or {}).items()},
            body=body, actor=actor))


class HttpTransport:
    """Drives the service over the localhost HTTP transport."""

    def __init__(self, host: str, port: int, timeout: float = 30.0):
        from ..service.http import GeleeHttpClient

        self._make_client = lambda actor: GeleeHttpClient(
            host, port, actor=actor, timeout=timeout)

    def request(self, method: str, path: str, query: Dict[str, str] = None,
                body: Dict[str, Any] = None, actor: str = None) -> Response:
        client = self._make_client(actor)
        if method.upper() == "GET":
            return client.get(path, **(query or {}))
        return client.post(path, body=body, **(query or {}))


# ----------------------------------------------------------------------- page
@dataclass
class Page:
    """One page of a collection, plus the cursor for the next one."""

    items: List[Any]
    info: PageInfo
    meta: Dict[str, Any] = field(default_factory=dict)

    @property
    def next_page_token(self) -> Optional[str]:
        return self.info.next_page_token

    @property
    def total(self) -> Optional[int]:
        return self.info.total

    def __iter__(self):
        return iter(self.items)

    def __len__(self):
        return len(self.items)


@dataclass
class OperationHandle:
    """A 202 handle to a long-running server-side operation."""

    operation_id: str
    kind: str
    status: str
    result: Any = None
    error: Optional[ErrorInfo] = None

    @property
    def is_terminal(self) -> bool:
        return self.status in ("succeeded", "failed")

    @classmethod
    def from_dict(cls, document: Dict[str, Any]) -> "OperationHandle":
        error = document.get("error")
        return cls(operation_id=document["operation_id"], kind=document.get("kind", ""),
                   status=document.get("status", ""), result=document.get("result"),
                   error=ErrorInfo.from_dict(error) if error else None)


# --------------------------------------------------------------------- client
class GeleeClient:
    """High-level, typed access to the Gelee v2 API.

    With a single transport every call goes to one deployment.  A second,
    optional **read transport** splits the traffic the way a replicated
    deployment wants it: ``GET``\\ s (listings, detail reads, monitoring)
    go to a read replica, mutations go to the primary.  The split is per
    *method*, so the same client code runs unmodified against both
    topologies; ``endpoint="read"``/``"write"`` on :meth:`call` overrides
    the routing for the rare admin calls that must target a specific node
    (promotion is a POST served by the *replica*).
    """

    def __init__(self, transport, actor: str = None, read_transport=None):
        self.transport = transport
        self.read_transport = read_transport
        self.actor = actor

    # -------------------------------------------------------------- factories
    @classmethod
    def in_process(cls, router=None, service=None, actor: str = None,
                   shard_count: int = None, read_router=None) -> "GeleeClient":
        """A client over an in-process router (built here if not given).

        ``read_router`` (e.g. ``ReadReplica(...).router()``) enables the
        read/write split without sockets.
        """
        from ..service.rest import RestRouter

        if router is None:
            router = RestRouter(service=service, shard_count=shard_count)
        return cls(InProcessTransport(router), actor=actor,
                   read_transport=InProcessTransport(read_router)
                   if read_router is not None else None)

    @classmethod
    def connect(cls, host: str, port: int, actor: str = None,
                timeout: float = 30.0, read_host: str = None,
                read_port: int = None) -> "GeleeClient":
        """A client over the localhost HTTP transport.

        ``read_host``/``read_port`` point GETs at a read replica; either
        alone inherits the other half from the write endpoint.
        """
        read_transport = None
        if read_host is not None or read_port is not None:
            read_transport = HttpTransport(read_host or host,
                                           read_port if read_port is not None
                                           else port, timeout=timeout)
        return cls(HttpTransport(host, port, timeout=timeout), actor=actor,
                   read_transport=read_transport)

    # ------------------------------------------------------------------ plumbing
    def _select_transport(self, method: str, endpoint: str = None):
        if self.read_transport is None or endpoint == "write":
            return self.transport
        if endpoint == "read":
            return self.read_transport
        return self.read_transport if method.upper() == "GET" else self.transport

    def call(self, method: str, path: str, query: Dict[str, Any] = None,
             body: Dict[str, Any] = None, actor: str = None,
             endpoint: str = None) -> Tuple[Any, Envelope]:
        """Issue one request and unwrap the envelope (raises on error)."""
        transport = self._select_transport(method, endpoint)
        response = transport.request(method, path, query=query, body=body,
                                     actor=actor or self.actor)
        if not isinstance(response.body, dict) or "meta" not in response.body:
            # Not an envelope — a transport-level failure.
            raise GeleeApiError(ErrorInfo(
                code="TRANSPORT_ERROR", status=response.status,
                message=str(response.body)))
        envelope = Envelope.from_dict(response.body)
        if envelope.error is not None:
            raise GeleeApiError(envelope.error, request_id=envelope.meta.request_id)
        return envelope.data, envelope

    def _page(self, path: str, query: Dict[str, Any]) -> Page:
        query = {key: value for key, value in query.items() if value is not None}
        data, envelope = self.call("GET", path, query=query)
        info = PageInfo.from_dict(envelope.meta.pagination or {})
        return Page(items=data or [], info=info, meta=envelope.meta.to_dict())

    def iter_pages(self, fetch, **query) -> Iterator[Any]:
        """Drain every page of a paginated client method.

        ``fetch`` is any method returning a :class:`Page` and accepting a
        ``page_token`` keyword (e.g. ``client.iter_pages(client.monitoring_table,
        owner="alice")``).
        """
        token = None
        while True:
            page = fetch(page_token=token, **query)
            for item in page.items:
                yield item
            token = page.next_page_token
            if token is None:
                return

    # Backwards-friendly internal alias used by the list helpers below.
    _iter = iter_pages

    # --------------------------------------------------------------- design time
    def list_models(self, page_size: int = None, page_token: str = None,
                    sort: str = None) -> Page:
        return self._page("/v2/models", {"page_size": page_size,
                                         "page_token": page_token, "sort": sort})

    def publish_model(self, model: Dict[str, Any] = None, xml: str = None) -> Dict[str, Any]:
        body = {"xml": xml} if xml is not None else {"model": model}
        data, _ = self.call("POST", "/v2/models", body=body)
        return data

    def model_detail(self, uri: str, version: str = None, as_xml: bool = False) -> Dict[str, Any]:
        query = {"uri": uri, "version": version}
        if as_xml:
            query["format"] = "xml"
        data, _ = self.call("GET", "/v2/models/detail", query=query)
        return data

    def list_templates(self, page_size: int = None, page_token: str = None) -> Page:
        return self._page("/v2/templates", {"page_size": page_size,
                                            "page_token": page_token})

    def publish_template(self, template_id: str, name: str = None) -> Dict[str, Any]:
        data, _ = self.call("POST", "/v2/templates/{}:publish".format(template_id),
                            body={"name": name} if name else {})
        return data

    def register_resource(self, resource: Dict[str, Any]) -> Dict[str, Any]:
        data, _ = self.call("POST", "/v2/resources", body=resource)
        return data

    # ------------------------------------------------------------------ instances
    def list_instances(self, model_uri: str = None, owner: str = None,
                       status: str = None, phase_id: str = None,
                       page_size: int = None, page_token: str = None,
                       sort: str = None) -> Page:
        return self._page("/v2/instances", {
            "model_uri": model_uri, "owner": owner, "status": status,
            "phase_id": phase_id, "page_size": page_size,
            "page_token": page_token, "sort": sort})

    def iter_instances(self, **filters) -> Iterator[Dict[str, Any]]:
        """Drain every page of ``list_instances`` transparently."""
        return self._iter(self.list_instances, **filters)

    def create_instance(self, model_uri: str, resource: Dict[str, Any], owner: str,
                        version: str = None, parameters: Dict[str, Any] = None,
                        token_owners: List[str] = None) -> Dict[str, Any]:
        item = CreateInstanceItem(model_uri=model_uri, resource=resource, owner=owner,
                                  version=version, parameters=parameters,
                                  token_owners=token_owners)
        data, _ = self.call("POST", "/v2/instances", body=item.to_dict())
        return data

    def instance(self, instance_id: str) -> Dict[str, Any]:
        data, _ = self.call("GET", "/v2/instances/{}".format(instance_id))
        return data

    def history(self, instance_id: str, page_size: int = None,
                page_token: str = None) -> Page:
        return self._page("/v2/instances/{}/history".format(instance_id),
                          {"page_size": page_size, "page_token": page_token})

    def start(self, instance_id: str, phase_id: str = None,
              call_parameters: Dict[str, Any] = None) -> Dict[str, Any]:
        body: Dict[str, Any] = {}
        if phase_id:
            body["phase_id"] = phase_id
        if call_parameters:
            body["call_parameters"] = call_parameters
        data, _ = self.call("POST", "/v2/instances/{}:start".format(instance_id),
                            body=body)
        return data

    def advance(self, instance_id: str, to_phase_id: str = None,
                annotation: str = None,
                call_parameters: Dict[str, Any] = None) -> Dict[str, Any]:
        body: Dict[str, Any] = {}
        if to_phase_id:
            body["to_phase_id"] = to_phase_id
        if annotation:
            body["annotation"] = annotation
        if call_parameters:
            body["call_parameters"] = call_parameters
        data, _ = self.call("POST", "/v2/instances/{}:advance".format(instance_id),
                            body=body)
        return data

    def move(self, instance_id: str, phase_id: str,
             annotation: str = None) -> Dict[str, Any]:
        body = {"phase_id": phase_id}
        if annotation:
            body["annotation"] = annotation
        data, _ = self.call("POST", "/v2/instances/{}:move".format(instance_id),
                            body=body)
        return data

    def annotate(self, instance_id: str, text: str, kind: str = "note") -> Dict[str, Any]:
        data, _ = self.call("POST", "/v2/instances/{}:annotate".format(instance_id),
                            body={"text": text, "kind": kind})
        return data

    def widget(self, instance_id: str, viewer: str = None) -> Dict[str, Any]:
        data, _ = self.call("GET", "/v2/instances/{}/widget".format(instance_id),
                            query={"viewer": viewer} if viewer else None)
        return data

    # ----------------------------------------------------------------- bulk/async
    def batch_create(self, items: List[Any], wait: bool = True):
        """Create many instances in one call.

        ``items`` are :class:`CreateInstanceItem` objects or plain dicts.
        With ``wait=False`` the server answers 202 and the method returns an
        :class:`OperationHandle` to poll.
        """
        body = {"items": [item.to_dict() if isinstance(item, CreateInstanceItem)
                          else item for item in items]}
        if not wait:
            body["async"] = True
        data, _ = self.call("POST", "/v2/instances:batchCreate", body=body)
        if not wait:
            return OperationHandle.from_dict(data)
        return BatchResult.from_dict(data)

    def batch_advance(self, items: List[Any], actor: str = None, wait: bool = True):
        """Advance many instances in one call (ids, dicts or AdvanceItems)."""
        body: Dict[str, Any] = {
            "items": [item.to_dict() if isinstance(item, AdvanceItem) else item
                      for item in items]}
        if actor:
            body["actor"] = actor
        if not wait:
            body["async"] = True
        data, _ = self.call("POST", "/v2/instances:batchAdvance", body=body)
        if not wait:
            return OperationHandle.from_dict(data)
        return BatchResult.from_dict(data)

    def operation(self, operation_id: str) -> OperationHandle:
        data, _ = self.call("GET", "/v2/operations/{}".format(operation_id))
        return OperationHandle.from_dict(data)

    def wait_operation(self, operation_id: str, timeout: float = 30.0,
                       poll_interval: float = 0.02) -> OperationHandle:
        """Poll an operation handle until it reaches a terminal state."""
        deadline = time.monotonic() + timeout
        while True:
            handle = self.operation(operation_id)
            if handle.is_terminal:
                return handle
            if time.monotonic() >= deadline:
                raise GeleeApiError(ErrorInfo(
                    code="OPERATION_TIMEOUT", status=504,
                    message="operation {} still {} after {:.1f}s".format(
                        operation_id, handle.status, timeout)))
            time.sleep(poll_interval)

    # ---------------------------------------------------------------- propagation
    def propose_change(self, xml: str, instance_ids: List[str] = None) -> List[Dict[str, Any]]:
        body: Dict[str, Any] = {"xml": xml}
        if instance_ids is not None:
            body["instance_ids"] = list(instance_ids)
        data, _ = self.call("POST", "/v2/propagations", body=body)
        return data

    def decide_change(self, proposal_id: str, accept: bool,
                      target_phase_id: str = None, reason: str = "") -> Dict[str, Any]:
        data, _ = self.call("POST", "/v2/propagations/{}:decide".format(proposal_id),
                            body={"accept": accept, "target_phase_id": target_phase_id,
                                  "reason": reason})
        return data

    def action_callback(self, instance_id: str, phase_id: str, call_id: str,
                        status: str, detail: str = "") -> Dict[str, Any]:
        data, _ = self.call(
            "POST", "/v2/callbacks/{}/{}/{}".format(instance_id, phase_id, call_id),
            body={"status": status, "detail": detail})
        return data

    # ----------------------------------------------------------------- monitoring
    def monitoring_summary(self, model_uri: str = None) -> Dict[str, Any]:
        data, _ = self.call("GET", "/v2/monitoring/summary",
                            query={"model_uri": model_uri} if model_uri else None)
        return data

    def monitoring_table(self, model_uri: str = None, owner: str = None,
                         page_size: int = None, page_token: str = None,
                         sort: str = None) -> Page:
        return self._page("/v2/monitoring/table", {
            "model_uri": model_uri, "owner": owner, "page_size": page_size,
            "page_token": page_token, "sort": sort})

    def monitoring_alerts(self) -> List[Dict[str, Any]]:
        data, _ = self.call("GET", "/v2/monitoring/alerts")
        return data

    def monitoring_deadlines(self, model_uri: str = None) -> Dict[str, Any]:
        """Deadline health roll-up: overdue, due-soon, escalated, timers."""
        data, _ = self.call("GET", "/v2/monitoring/deadlines",
                            query={"model_uri": model_uri} if model_uri else None)
        return data

    def runtime_stats(self) -> Dict[str, Any]:
        data, _ = self.call("GET", "/v2/runtime/stats")
        return data

    # ----------------------------------------------------------------- telemetry
    def metrics(self, endpoint: str = None) -> str:
        """The node's Prometheus text exposition (``GET /v2/metrics``).

        The one v2 route that answers plain text instead of the envelope,
        so this bypasses :meth:`call` and returns the raw exposition
        string.  ``endpoint`` picks the node on a split client (the default
        follows the GET routing to the read replica).
        """
        transport = self._select_transport("GET", endpoint)
        response = transport.request("GET", "/v2/metrics", actor=self.actor)
        if not response.ok:
            raise GeleeApiError(ErrorInfo(
                code="TRANSPORT_ERROR", status=response.status,
                message=str(response.body)))
        return response.body

    def telemetry_status(self, endpoint: str = None) -> Dict[str, Any]:
        """Structured snapshot of every instrument on one node."""
        data, _ = self.call("GET", "/v2/runtime/telemetry", endpoint=endpoint)
        return data

    def traces(self, limit: int = None, endpoint: str = None) -> Dict[str, Any]:
        """Summaries of the span traces one node's store still holds."""
        data, _ = self.call("GET", "/v2/runtime/traces",
                            query={"limit": limit} if limit else None,
                            endpoint=endpoint)
        return data

    def trace(self, trace_id: str, endpoint: str = None) -> Dict[str, Any]:
        """One request's span timeline + tree, by its ``X-Request-Id``.

        Raises the catalog's ``TRACE_NOT_FOUND`` when the id was never
        sampled or has aged out of the node's bounded span store.
        """
        data, _ = self.call("GET", "/v2/runtime/traces/{}".format(trace_id),
                            endpoint=endpoint)
        return data

    def alerts(self, endpoint: str = None) -> Dict[str, Any]:
        """The node's SLO rule catalog and per-rule alert states."""
        data, _ = self.call("GET", "/v2/runtime/alerts", endpoint=endpoint)
        return data

    def evaluate_alerts(self) -> Dict[str, Any]:
        """Force one SLO evaluation pass on the write node."""
        data, _ = self.call("POST", "/v2/runtime/alerts:evaluate")
        return data

    def telemetry_history(self, series: str = None, window_seconds: float = None,
                          step_seconds: float = None, tier: str = None,
                          max_series: int = None,
                          endpoint: str = None) -> Dict[str, Any]:
        """Time-series points from one node's metric history rings.

        ``series`` is a substring filter over ``name{label="v"}`` keys;
        ``tier`` picks ``raw`` (default) or ``downsampled``.
        """
        query = {"series": series, "window": window_seconds,
                 "step": step_seconds, "tier": tier, "max_series": max_series}
        data, _ = self.call("GET", "/v2/runtime/telemetry/history",
                            query={k: v for k, v in query.items()
                                   if v is not None} or None,
                            endpoint=endpoint)
        return data

    def capture_history(self, endpoint: str = None) -> Dict[str, Any]:
        """Force one history capture on a node (any node serves this)."""
        data, _ = self.call("POST", "/v2/runtime/telemetry/history:capture",
                            endpoint=endpoint)
        return data

    def logs(self, trace_id: str = None, level: str = None,
             component: str = None, since: str = None, limit: int = None,
             endpoint: str = None) -> Dict[str, Any]:
        """Recent log records from one node's in-memory ring.

        Filter by ``trace_id`` (an ``X-Request-Id``) to see exactly the
        lines a traced request emitted alongside its span tree.
        """
        query = {"trace_id": trace_id, "level": level,
                 "component": component, "since": since, "limit": limit}
        data, _ = self.call("GET", "/v2/runtime/logs",
                            query={k: v for k, v in query.items()
                                   if v is not None} or None,
                            endpoint=endpoint)
        return data

    def cluster(self, endpoint: str = None) -> Dict[str, Any]:
        """The merged cluster view as one node sees it.

        Always succeeds with HTTP 200; peers that cannot be reached come
        back as ``reachable: false`` rows with a ``NODE_UNREACHABLE``
        error and the envelope is marked ``partial``.
        """
        data, _ = self.call("GET", "/v2/runtime/cluster", endpoint=endpoint)
        return data

    def cluster_self(self, endpoint: str = None) -> Dict[str, Any]:
        """One node's own cluster row (role, health, lag, deltas)."""
        data, _ = self.call("GET", "/v2/runtime/cluster/self",
                            endpoint=endpoint)
        return data

    def register_cluster_node(self, node_id: str, url: str = None,
                              host: str = None, port: int = None,
                              endpoint: str = None) -> Dict[str, Any]:
        """Tell a node about a peer so its cluster view can fan out."""
        body = {"node_id": node_id}
        if url is not None:
            body["url"] = url
        if host is not None:
            body["host"] = host
        if port is not None:
            body["port"] = port
        data, _ = self.call("POST", "/v2/runtime/cluster:register",
                            body=body, endpoint=endpoint)
        return data

    def profile(self, endpoint: str = None) -> Dict[str, Any]:
        """The sampling profiler's status and bounded flame tree."""
        data, _ = self.call("GET", "/v2/runtime/profile", endpoint=endpoint)
        return data

    def profile_start(self, interval_seconds: float = None,
                      endpoint: str = None) -> Dict[str, Any]:
        """Start the low-rate stack sampler on one node."""
        body = ({"interval_seconds": interval_seconds}
                if interval_seconds is not None else None)
        data, _ = self.call("POST", "/v2/runtime/profile:start", body=body,
                            endpoint=endpoint)
        return data

    def profile_stop(self, endpoint: str = None) -> Dict[str, Any]:
        """Stop the stack sampler, keeping the aggregate queryable."""
        data, _ = self.call("POST", "/v2/runtime/profile:stop",
                            endpoint=endpoint)
        return data

    def resource_types(self) -> List[str]:
        data, _ = self.call("GET", "/v2/resource-types")
        return data

    # ---------------------------------------------------------------- scheduler
    def list_timers(self, kind: str = None, subject_id: str = None,
                    page_size: int = None, page_token: str = None,
                    sort: str = None) -> Page:
        """One page of pending timers, soonest first."""
        return self._page("/v2/timers", {
            "kind": kind, "subject_id": subject_id, "page_size": page_size,
            "page_token": page_token, "sort": sort})

    def iter_timers(self, **filters) -> Iterator[Dict[str, Any]]:
        return self._iter(self.list_timers, **filters)

    def schedule_timer(self, timer_id: str, fire_at: str = None,
                       delay_seconds: float = None, kind: str = "user",
                       subject_id: str = "", payload: Dict[str, Any] = None,
                       interval_seconds: float = None) -> Dict[str, Any]:
        """Schedule (or replace) a named timer; ids are the idempotency key."""
        body: Dict[str, Any] = {"timer_id": timer_id, "kind": kind}
        if fire_at is not None:
            body["fire_at"] = fire_at
        if delay_seconds is not None:
            body["delay_seconds"] = delay_seconds
        if subject_id:
            body["subject_id"] = subject_id
        if payload:
            body["payload"] = payload
        if interval_seconds is not None:
            body["interval_seconds"] = interval_seconds
        data, _ = self.call("POST", "/v2/timers", body=body)
        return data

    def cancel_timer(self, timer_id: str) -> Dict[str, Any]:
        data, _ = self.call("POST", "/v2/timers/{}:cancel".format(timer_id))
        return data

    def scheduler_status(self) -> Dict[str, Any]:
        data, _ = self.call("GET", "/v2/runtime/scheduler")
        return data

    def scheduler_tick(self, limit: int = None) -> Dict[str, Any]:
        """Fire every due timer now (ops/testing entry point for time)."""
        body = {"limit": limit} if limit is not None else {}
        data, _ = self.call("POST", "/v2/runtime/scheduler:tick", body=body)
        return data

    # --------------------------------------------------------------- persistence
    def persistence_status(self) -> Dict[str, Any]:
        data, _ = self.call("GET", "/v2/runtime/persistence")
        return data

    def persistence_checkpoint(self) -> Dict[str, Any]:
        """Flush dirty instances and publish a snapshot (admin operation)."""
        data, _ = self.call("POST", "/v2/runtime/persistence:checkpoint")
        return data

    # --------------------------------------------------------------- replication
    def replication_status(self, endpoint: str = None) -> Dict[str, Any]:
        """Stream position / follower lag of one node.

        With a split client the default targets the *read* endpoint (the
        replica's lag is the figure ops watch); ``endpoint="write"`` asks
        the primary for its follower table instead.
        """
        data, _ = self.call("GET", "/v2/runtime/replication", endpoint=endpoint)
        return data

    def promote_replica(self) -> Dict[str, Any]:
        """Promote the read endpoint's replica to primary (failover).

        Deliberately a POST to the **read** endpoint: promotion is the one
        mutation a replica serves, and during failover the write endpoint
        is exactly the node that died.
        """
        data, _ = self.call("POST", "/v2/runtime/replication:promote",
                            endpoint="read")
        return data

    def replication_stream(self, after_seq: int = 0, limit: int = None,
                           wait_timeout: float = None,
                           follower_id: str = None) -> Dict[str, Any]:
        """One journal stream batch from the primary (push over HTTP).

        With ``wait_timeout`` a caught-up follower long-polls: the request
        parks on the primary's journal-append notification and returns as
        soon as records newer than ``after_seq`` exist, so a remote tail
        loop gets push latency without a tight poll.  Targets the write
        endpoint — the stream is the primary's to serve.
        """
        query: Dict[str, Any] = {"after_seq": after_seq}
        if limit is not None:
            query["limit"] = limit
        if wait_timeout is not None:
            query["wait_timeout"] = wait_timeout
        if follower_id is not None:
            query["follower_id"] = follower_id
        data, _ = self.call("GET", "/v2/runtime/replication/stream",
                            query=query, endpoint="write")
        return data

    def replication_bootstrap(self) -> Dict[str, Any]:
        """The bootstrap payload a brand-new off-host follower restores.

        Targets the write endpoint: only the primary holds the snapshots
        and instance store a follower boots from.
        """
        data, _ = self.call("GET", "/v2/runtime/replication/bootstrap",
                            endpoint="write")
        return data

    # -------------------------------------------------------------- coordination
    def coordination_status(self, endpoint: str = None) -> Dict[str, Any]:
        """Leader-election figures of one node: role, lease epoch, fencing.

        ``{"enabled": False}`` (plus the node's role) when that node is not
        enrolled in election.
        """
        data, _ = self.call("GET", "/v2/runtime/coordination",
                            endpoint=endpoint)
        return data

    def coordination_resign(self) -> Dict[str, Any]:
        """Ask the write endpoint's node to release the primary lease now.

        Planned-maintenance failover: the lease transfers to the next
        campaigner immediately instead of after a TTL expiry.
        """
        data, _ = self.call("POST", "/v2/runtime/coordination:resign",
                            endpoint="write")
        return data
