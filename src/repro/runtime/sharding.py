"""Sharded, thread-safe lifecycle runtime.

Design
------
The single :class:`~repro.runtime.manager.LifecycleManager` keeps every
instance in one dict and serves one caller at a time — fine for the paper's
prototype, a bottleneck for a hosted deployment where thousands of owners
progress lifecycles concurrently.  :class:`ShardedLifecycleManager` scales
that kernel out *inside one process*:

* **Hash partitioning.** Instances are partitioned across N independent
  ``LifecycleManager`` shards.  The shard of an instance is
  ``crc32(instance_id) % N`` — a *stable* hash (Python's builtin ``hash`` is
  salted per process), so an instance id always routes to the same shard,
  across runs and across processes.  The id is drawn *before* the instance
  is created and handed to the shard, which keeps routing a pure function
  of the id.
* **Per-shard locking.** Every shard is guarded by its own reentrant lock;
  an operation takes only the lock of the shard it touches.  Owners working
  on instances in different shards never contend, while two owners hitting
  the same shard are serialised — the classic lock-striping trade-off.
  Actions dispatched by a shard sleep through their (simulated) web-service
  round-trips while other shards keep progressing.
* **Shared design time.** Lifecycle models are design-time data, read by
  every shard: ``publish_model`` validates once and installs the same model
  object on all shards (instances copy the model at instantiation time, so
  sharing the published object is safe).
* **One event stream.** All shards publish on one bus, so the execution
  log, the monitoring cockpit and the widgets observe a single merged
  stream.  Pass a :class:`~repro.events.BatchingEventBus` to coalesce the
  per-move event flurry into batched dispatches on the hot path.

Cross-shard queries (listings, distributions) take the shard locks one at a
time and merge the per-shard answers; they are read-mostly and far off the
hot path.  The class mirrors the ``LifecycleManager`` surface, so the
monitoring cockpit, the widgets and the service facade run unchanged on top
of either.
"""

from __future__ import annotations

import random
import threading
import time
import zlib
from contextlib import contextmanager
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..actions.completion import CompletionExecutor, PooledCompletionExecutor
from ..clock import Clock
from ..errors import PropagationError
from ..events import EventBus
from ..identifiers import new_id, parse_callback_uri
from ..model.lifecycle import LifecycleModel
from ..plugins.setup import StandardEnvironment
from ..resources.descriptor import ResourceDescriptor
from ..telemetry import current_span_context, span_scope
from ..telemetry.profiling import TimedLock
from ..workers import WorkerPool
from .instance import InstanceStatus, LifecycleInstance
from .manager import LifecycleManager


def shard_index_for(instance_id: str, shard_count: int) -> int:
    """Stable shard routing: ``crc32`` of the id modulo the shard count."""
    return zlib.crc32(instance_id.encode("utf-8")) % shard_count


class ShardedLifecycleManager:
    """N lifecycle-manager shards behind the single-manager interface.

    See the module docstring for the partitioning and locking design.  The
    constructor mirrors :class:`LifecycleManager`; ``shard_count`` picks the
    number of partitions (and therefore the degree of write concurrency).
    """

    #: Default time budget (seconds) quiesce spends draining in-flight
    #: actions before proceeding anyway; override per instance.
    quiesce_drain_timeout: float = 30.0

    def __init__(self, environment: StandardEnvironment, shard_count: int = 4,
                 clock: Clock = None, bus: EventBus = None, access_policy=None,
                 strict_actions: bool = False, rng_seed: int = 0,
                 simulated_action_latency: Tuple[float, float] = (0.0, 0.0),
                 completion_executor: CompletionExecutor = None,
                 completion_workers: int = 0,
                 worker_pool: WorkerPool = None):
        """``completion_workers`` is the convenience knob for asynchronous
        dispatch: when > 0 (and no explicit ``completion_executor`` is
        given) one shared :class:`WorkerPool` is created, sized
        ``shard_count + completion_workers`` so the bulk fan-out always has
        a worker per shard *and* that many in-flight actions can sleep
        through their round-trips concurrently; a
        :class:`PooledCompletionExecutor` on that pool is handed to every
        shard.  With the default (0) dispatch stays inline/synchronous.
        """
        if shard_count < 1:
            raise ValueError("shard_count must be at least 1")
        self.bus = bus or EventBus()
        self._clock = clock or environment.clock
        # Shard locks are wrapped in TimedLock so acquisition waits feed
        # the gelee_lock_wait_seconds{site="shard"} histogram (sampled —
        # this is the dispatch hot path).  The wrapper is a drop-in
        # context manager with acquire/release, so handing one to a shard
        # as its completion_lock works unchanged.
        self._locks = [TimedLock(threading.RLock(), site="shard")
                       for _ in range(shard_count)]
        self._worker_pool = worker_pool
        self._pool_lock = threading.Lock()
        if completion_executor is None and completion_workers > 0:
            if self._worker_pool is None:
                self._worker_pool = WorkerPool(shard_count + completion_workers,
                                               name="gelee-shard")
            completion_executor = PooledCompletionExecutor(self._worker_pool)
        self._completion_executor = completion_executor
        self._shards: List[LifecycleManager] = [
            LifecycleManager(
                environment, clock=self._clock, bus=self.bus,
                access_policy=access_policy, strict_actions=strict_actions,
                # One RNG per shard, derived from the seed, so a run is
                # reproducible for any fixed shard count.
                rng=random.Random(rng_seed * 1000003 + index),
                simulated_action_latency=simulated_action_latency,
                completion_executor=completion_executor,
                # Completions re-acquire the owning shard's lock to apply
                # their outcome — the heart of the submit/complete protocol.
                completion_lock=self._locks[index],
            )
            for index in range(shard_count)
        ]
        #: proposal id -> shard index, so owner decisions route without scanning.
        self._proposal_shards: Dict[str, int] = {}
        self._proposal_lock = threading.Lock()

    # ------------------------------------------------------------------ plumbing
    @property
    def clock(self) -> Clock:
        return self._shards[0].clock

    @property
    def environment(self) -> StandardEnvironment:
        return self._shards[0].environment

    @property
    def resolver(self):
        return self._shards[0].resolver

    @property
    def shard_count(self) -> int:
        return len(self._shards)

    @property
    def shards(self) -> List[LifecycleManager]:
        """The underlying shard managers (read-only use: stats, tests)."""
        return list(self._shards)

    def shard_index(self, instance_id: str) -> int:
        return shard_index_for(instance_id, len(self._shards))

    def shard_sizes(self) -> List[int]:
        """Instances per shard — how even the hash partitioning is."""
        return [shard.instance_count() for shard in self._shards]

    @property
    def read_only(self) -> bool:
        """Whether this runtime rejects mutations (read-replica mode)."""
        return self._shards[0].read_only

    def set_read_only(self, value: bool) -> None:
        """Flip read-replica mode on every shard (see the single manager).

        Flipping *to* read-only also drains in-flight action completions:
        the flip stops new submissions first, then waits for pending ones to
        apply, so no primary-era action lands after the barrier.
        """
        for index in range(len(self._shards)):
            with self._locks[index]:
                self._shards[index].set_read_only(value)
        if value:
            self.drain_in_flight(timeout=self.quiesce_drain_timeout)

    def set_write_guard(self, guard) -> None:
        """Install the fencing write guard on every shard (see the single
        manager's :meth:`~repro.runtime.manager.LifecycleManager.set_write_guard`)."""
        for index in range(len(self._shards)):
            with self._locks[index]:
                self._shards[index].set_write_guard(guard)

    @property
    def completion_executor(self) -> Optional[CompletionExecutor]:
        """The executor shared by all shards (None = inline default)."""
        return self._completion_executor

    @property
    def worker_pool(self) -> Optional[WorkerPool]:
        """The shared fan-out/completion pool, if one exists yet."""
        return self._worker_pool

    # -------------------------------------------------------- in-flight registry
    def in_flight_count(self) -> int:
        """Submitted invocations not yet applied, across all shards."""
        return sum(shard.in_flight_count() for shard in self._shards)

    def drain_in_flight(self, timeout: float = None) -> bool:
        """Wait until no shard has pending completions; True unless timed out.

        Must not be called while holding any shard lock — pending
        completions need their shard's lock to apply.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        for shard in self._shards:
            remaining = None if deadline is None \
                else max(0.0, deadline - time.monotonic())
            if not shard.drain_in_flight(timeout=remaining):
                return False
        return True

    @contextmanager
    def quiesce(self, drain_timeout: float = None):
        """Drain in-flight actions, then hold every shard lock.

        Used by the persistence coordinator to capture a consistent
        point-in-time checkpoint across all shards.  Locks are taken in shard
        order (the only place more than one shard lock is ever held), so the
        acquisition order cannot deadlock against single-shard operations.

        With a pooled completion executor there is a second hazard: queued
        completions *also* need a shard lock to apply, so waiting for them
        while holding all locks would deadlock.  The loop below therefore
        drains first, acquires, and — if submissions slipped in between —
        releases and drains again, bounded by ``drain_timeout`` (default
        :attr:`quiesce_drain_timeout`).  On timeout the checkpoint proceeds
        with actions still in flight: they are captured in their RUNNING
        state and deterministically failed on recovery (see
        :func:`repro.persistence.recovery.fail_interrupted_invocations`).
        """
        timeout = self.quiesce_drain_timeout if drain_timeout is None else drain_timeout
        deadline = None if timeout is None else time.monotonic() + timeout
        acquired: List[Any] = []

        def acquire_all() -> None:
            for lock in self._locks:
                lock.acquire()
                acquired.append(lock)

        def release_all() -> None:
            while acquired:
                acquired.pop().release()

        while True:
            remaining = None if deadline is None \
                else max(0.0, deadline - time.monotonic())
            drained = self.drain_in_flight(timeout=remaining)
            acquire_all()
            if self.in_flight_count() == 0:
                break
            if not drained and (deadline is not None
                                and time.monotonic() >= deadline):
                break
            release_all()
        try:
            yield self
        finally:
            release_all()

    def close(self, drain_timeout: float = None) -> None:
        """Drain pending completions and stop the shared worker pool.

        Safe to call on runtimes that never created a pool (inline
        dispatch, no fan-out yet) and idempotent otherwise.
        """
        self.drain_in_flight(
            timeout=self.quiesce_drain_timeout if drain_timeout is None
            else drain_timeout)
        with self._pool_lock:
            pool, self._worker_pool = self._worker_pool, None
        if pool is not None and not pool.closed:
            pool.close()

    # ============================================================ recovery hooks
    def install_model(self, model: LifecycleModel) -> bool:
        """Silently install a model version on every shard (journal replay)."""
        installed = False
        for index, shard in enumerate(self._shards):
            with self._locks[index]:
                installed = shard.install_model(model) or installed
        return installed

    def install_instance(self, instance: LifecycleInstance) -> LifecycleInstance:
        """Silently insert a rebuilt instance on the shard its id hashes to."""
        index = self.shard_index(instance.instance_id)
        with self._locks[index]:
            return self._shards[index].install_instance(instance)

    def reindex_instance(self, instance_id: str) -> None:
        return self._on_shard(instance_id, "reindex_instance")

    # ================================================================ design time
    def publish_model(self, model: LifecycleModel, actor: str = "") -> LifecycleModel:
        """Validate once, install on every shard (shared design-time data)."""
        for index, shard in enumerate(self._shards):
            with self._locks[index]:
                shard.publish_model(model, actor=actor)
        return model

    def model(self, model_uri: str, version: str = None) -> LifecycleModel:
        return self._shards[0].model(model_uri, version=version)

    def model_versions(self, model_uri: str) -> List[str]:
        return self._shards[0].model_versions(model_uri)

    def models(self) -> List[LifecycleModel]:
        return self._shards[0].models()

    def applicable_resource_types(self, model_uri: str) -> List[str]:
        return self._shards[0].applicable_resource_types(model_uri)

    # ================================================================== runtime
    def instantiate(self, model_uri: str, resource: ResourceDescriptor, owner: str,
                    actor: str = None, version: str = None,
                    instantiation_parameters: Dict[str, Dict[str, Any]] = None,
                    token_owners: List[str] = None,
                    metadata: Dict[str, Any] = None,
                    instance_id: str = None) -> LifecycleInstance:
        """Create an instance on the shard its (pre-drawn) id hashes to."""
        instance_id = instance_id or new_id("inst")
        index = self.shard_index(instance_id)
        with self._locks[index]:
            return self._shards[index].instantiate(
                model_uri, resource, owner, actor=actor, version=version,
                instantiation_parameters=instantiation_parameters,
                token_owners=token_owners, metadata=metadata,
                instance_id=instance_id,
            )

    def instance(self, instance_id: str) -> LifecycleInstance:
        index = self.shard_index(instance_id)
        with self._locks[index]:
            return self._shards[index].instance(instance_id)

    def peek_instance(self, instance_id: str) -> Optional[LifecycleInstance]:
        """Lock-free lookup for bus subscribers (see the single-manager doc).

        Event handlers can run on a shard worker that holds its own shard
        lock while flushing a batch containing *other* shards' events; going
        through :meth:`instance` there would try to take a second shard lock
        and deadlock against that shard's owner waiting on the flush lock.
        """
        return self._shards[self.shard_index(instance_id)].peek_instance(instance_id)

    def instances(self, model_uri: str = None, owner: str = None,
                  status: InstanceStatus = None,
                  phase_id: str = None) -> List[LifecycleInstance]:
        """Cross-shard listing: merge every shard's (indexed) answer."""
        result: List[LifecycleInstance] = []
        for index, shard in enumerate(self._shards):
            with self._locks[index]:
                result.extend(shard.instances(model_uri=model_uri, owner=owner,
                                              status=status, phase_id=phase_id))
        return result

    def instance_count(self) -> int:
        return sum(self.shard_sizes())

    def instances_for_resource(self, resource_uri: str) -> List[LifecycleInstance]:
        result: List[LifecycleInstance] = []
        for index, shard in enumerate(self._shards):
            with self._locks[index]:
                result.extend(shard.instances_for_resource(resource_uri))
        return result

    def phase_distribution(self, model_uri: str = None) -> Dict[Optional[str], int]:
        return self._merge_counts(
            lambda shard: shard.phase_distribution(model_uri=model_uri))

    def owner_distribution(self) -> Dict[str, int]:
        return self._merge_counts(lambda shard: shard.owner_distribution())

    def status_distribution(self) -> Dict[InstanceStatus, int]:
        return self._merge_counts(lambda shard: shard.status_distribution())

    # ------------------------------------------------------------- progression
    # The synchronous verbs submit under the shard lock, then wait for the
    # instance's completions *after releasing it* — waiting inside the lock
    # would deadlock against the completions trying to re-acquire it.  The
    # ``*_async`` variants return as soon as the token has moved.

    def start(self, instance_id: str, actor: str, phase_id: str = None,
              call_parameters: Dict[str, Dict[str, Any]] = None) -> LifecycleInstance:
        return self._on_shard_then_wait(instance_id, "start_async", actor,
                                        phase_id=phase_id,
                                        call_parameters=call_parameters)

    def start_async(self, instance_id: str, actor: str, phase_id: str = None,
                    call_parameters: Dict[str, Dict[str, Any]] = None) -> LifecycleInstance:
        return self._on_shard(instance_id, "start_async", actor, phase_id=phase_id,
                              call_parameters=call_parameters)

    def advance(self, instance_id: str, actor: str, to_phase_id: str = None,
                call_parameters: Dict[str, Dict[str, Any]] = None,
                annotation: str = None) -> LifecycleInstance:
        return self._on_shard_then_wait(instance_id, "advance_async", actor,
                                        to_phase_id=to_phase_id,
                                        call_parameters=call_parameters,
                                        annotation=annotation)

    def advance_async(self, instance_id: str, actor: str, to_phase_id: str = None,
                      call_parameters: Dict[str, Dict[str, Any]] = None,
                      annotation: str = None) -> LifecycleInstance:
        return self._on_shard(instance_id, "advance_async", actor,
                              to_phase_id=to_phase_id,
                              call_parameters=call_parameters, annotation=annotation)

    def move_to(self, instance_id: str, actor: str, phase_id: str,
                call_parameters: Dict[str, Dict[str, Any]] = None,
                annotation: str = None) -> LifecycleInstance:
        return self._on_shard_then_wait(instance_id, "move_to_async", actor, phase_id,
                                        call_parameters=call_parameters,
                                        annotation=annotation)

    def move_to_async(self, instance_id: str, actor: str, phase_id: str,
                      call_parameters: Dict[str, Dict[str, Any]] = None,
                      annotation: str = None) -> LifecycleInstance:
        return self._on_shard(instance_id, "move_to_async", actor, phase_id,
                              call_parameters=call_parameters, annotation=annotation)

    def skip_to(self, instance_id: str, actor: str, phase_id: str, reason: str):
        return self._on_shard_then_wait(instance_id, "skip_to_async", actor,
                                        phase_id, reason)

    def skip_to_async(self, instance_id: str, actor: str, phase_id: str, reason: str):
        return self._on_shard(instance_id, "skip_to_async", actor, phase_id, reason)

    def annotate(self, instance_id: str, actor: str, text: str, phase_id: str = None,
                 kind: str = "note"):
        return self._on_shard(instance_id, "annotate", actor, text,
                              phase_id=phase_id, kind=kind)

    def bind_parameters(self, instance_id: str, actor: str, call_id: str,
                        parameters: Dict[str, Any]) -> None:
        return self._on_shard(instance_id, "bind_parameters", actor, call_id, parameters)

    # ---------------------------------------------------------- model evolution
    def change_instance_model(self, instance_id: str, actor: str, model: LifecycleModel,
                              target_phase_id: str = None) -> LifecycleInstance:
        return self._on_shard(instance_id, "change_instance_model", actor, model,
                              target_phase_id=target_phase_id)

    def propose_change(self, model: LifecycleModel, actor: str,
                       instance_ids: List[str] = None) -> List:
        """Publish the new version everywhere, then propose shard by shard."""
        self.publish_model(model, actor=actor)
        targets: Dict[int, Optional[List[str]]] = {}
        if instance_ids is None:
            # Each shard proposes for its own active instances of the model.
            targets = {index: None for index in range(len(self._shards))}
        else:
            for instance_id in instance_ids:
                targets.setdefault(self.shard_index(instance_id), []).append(instance_id)
        proposals = []
        for index, ids in targets.items():
            with self._locks[index]:
                opened = self._shards[index].open_proposals(model, actor, instance_ids=ids)
            with self._proposal_lock:
                for proposal in opened:
                    self._proposal_shards[proposal.proposal_id] = index
            proposals.extend(opened)
        return proposals

    def accept_change(self, proposal_id: str, actor: str, target_phase_id: str = None):
        index = self._shard_of_proposal(proposal_id)
        with self._locks[index]:
            return self._shards[index].accept_change(
                proposal_id, actor, target_phase_id=target_phase_id)

    def reject_change(self, proposal_id: str, actor: str, reason: str = ""):
        index = self._shard_of_proposal(proposal_id)
        with self._locks[index]:
            return self._shards[index].reject_change(proposal_id, actor, reason=reason)

    # ------------------------------------------------------------- re-dispatch
    def invoke_action(self, instance_id: str, actor: str, call_id: str):
        """Dispatch a bound action and wait for its outcome (terminal on return)."""
        index = self.shard_index(instance_id)
        with self._locks[index]:
            invocation = self._shards[index].invoke_action_async(
                instance_id, actor, call_id)
        self._shards[index].wait_for_invocation(invocation.invocation_id)
        return invocation

    def invoke_action_async(self, instance_id: str, actor: str, call_id: str):
        """Submit a bound action of the instance's current phase (scheduler
        escalation / retry), on the shard the instance lives on; the outcome
        arrives through the ``action.completed`` / ``action.failed`` events."""
        return self._on_shard(instance_id, "invoke_action_async", actor, call_id)

    # -------------------------------------------------------------- callbacks
    def handle_callback(self, callback_uri: str, status: str, detail: str = "",
                        **payload: Any):
        """Route the callback by the instance id embedded in its URI."""
        instance_id, _, _ = parse_callback_uri(callback_uri)
        index = self.shard_index(instance_id)
        with self._locks[index]:
            return self._shards[index].handle_callback(
                callback_uri, status, detail=detail, **payload)

    # ------------------------------------------------------------- concurrency
    def map_instances(self, instance_ids: List[str],
                      operation: Callable[[LifecycleManager, str], Any],
                      capture_errors: bool = False) -> List[Any]:
        """Apply ``operation(shard, instance_id)`` concurrently, one thread per shard.

        The ids are grouped by shard; each worker thread drains one group
        while holding that shard's lock, so shards progress in parallel and
        no shard is ever entered by two threads at once.  Results come back
        in the order of ``instance_ids``.

        With ``capture_errors`` a failing item stores its exception at the
        item's position and the shard keeps draining — the bulk API reports
        partial failures per item.  Without it the first error aborts the
        whole map (after every worker finished) and is re-raised.
        """
        by_shard: Dict[int, List[Tuple[int, str]]] = {}
        for position, instance_id in enumerate(instance_ids):
            by_shard.setdefault(self.shard_index(instance_id), []).append(
                (position, instance_id))
        return self._fan_out(
            by_shard, len(instance_ids), capture_errors,
            lambda shard, instance_id: operation(shard, instance_id))

    def batch_instantiate(self, requests: List[Dict[str, Any]],
                          capture_errors: bool = False) -> List[Any]:
        """Create many instances, fanning out across shards.

        Each request is the kwargs of :meth:`instantiate`.  The instance id
        is drawn *here* (unless the request pins one) so the shard of every
        item is known up front; items are then grouped by shard and created
        concurrently, one worker per shard, exactly like
        :meth:`map_instances`.
        """
        by_shard: Dict[int, List[Tuple[int, Dict[str, Any]]]] = {}
        for position, request in enumerate(requests):
            request = dict(request)
            request.setdefault("instance_id", new_id("inst"))
            by_shard.setdefault(self.shard_index(request["instance_id"]), []).append(
                (position, request))
        return self._fan_out(
            by_shard, len(requests), capture_errors,
            lambda shard, request: shard.instantiate(**request))

    def _fan_out(self, by_shard: Dict[int, List[Tuple[int, Any]]], size: int,
                 capture_errors: bool,
                 apply: Callable[[LifecycleManager, Any], Any]) -> List[Any]:
        """Drain per-shard work lists concurrently on the shared worker pool.

        One drain task per touched shard; each holds its shard's lock while
        it works.  Drain tasks never wait on other pool tasks, so sharing
        the pool with the completion executor cannot deadlock — queued
        completions only need shard locks, which every drain releases.

        Error policy: ``Exception`` is the unit of per-item failure —
        captured into the results with ``capture_errors``, or collected and
        re-raised otherwise.  ``KeyboardInterrupt``/``SystemExit`` and
        friends are *never* captured as item results; they abort the shard's
        drain and re-raise after the fan-out.  When several shards fail, the
        first error is raised and carries the rest as
        ``exc.concurrent_errors``.
        """
        results: List[Any] = [None] * size
        errors: List[BaseException] = []
        errors_lock = threading.Lock()
        # Fan-out workers run on pool threads; re-activate the caller's
        # span context there so every shard-side event keeps the gateway's
        # origin_request_id and each drain shows up as a child span.
        context = current_span_context()

        def drain(index: int, work: List[Tuple[int, Any]]) -> None:
            shard = self._shards[index]
            with span_scope("shard.drain", context=context, shard=index,
                            items=len(work)), self._locks[index]:
                for position, item in work:
                    try:
                        results[position] = apply(shard, item)
                    except Exception as exc:  # noqa: BLE001 - reported below
                        if capture_errors:
                            results[position] = exc
                            continue
                        with errors_lock:
                            errors.append(exc)
                        return
                    except BaseException as exc:
                        # Interrupts abort the batch even in capture mode.
                        with errors_lock:
                            errors.append(exc)
                        return

        pool = self._ensure_pool()
        handles = [pool.submit(drain, index, work)
                   for index, work in by_shard.items()]
        for handle in handles:
            handle.wait()
        if errors:
            primary = errors[0]
            if len(errors) > 1:
                primary.concurrent_errors = tuple(errors[1:])
            raise primary
        return results

    # ------------------------------------------------------------------ internal
    def _ensure_pool(self) -> WorkerPool:
        """The shared worker pool, created on first bulk use when absent."""
        with self._pool_lock:
            if self._worker_pool is None or self._worker_pool.closed:
                self._worker_pool = WorkerPool(len(self._shards),
                                               name="gelee-shard")
            return self._worker_pool

    def _on_shard(self, instance_id: str, operation: str, *args, **kwargs):
        index = self.shard_index(instance_id)
        with self._locks[index]:
            return getattr(self._shards[index], operation)(instance_id, *args, **kwargs)

    def _on_shard_then_wait(self, instance_id: str, operation: str, *args, **kwargs):
        """Submit under the shard lock, wait for completions after releasing it."""
        index = self.shard_index(instance_id)
        with span_scope("shard.apply", shard=index, operation=operation):
            with self._locks[index]:
                result = getattr(self._shards[index], operation)(
                    instance_id, *args, **kwargs)
            self._shards[index].wait_for_instance(instance_id)
        return result

    def _shard_of_proposal(self, proposal_id: str) -> int:
        with self._proposal_lock:
            index = self._proposal_shards.get(proposal_id)
        if index is not None:
            return index
        for index, shard in enumerate(self._shards):
            try:
                shard.propagation.proposal(proposal_id)
            except PropagationError:
                continue
            return index
        raise PropagationError("unknown change proposal {!r}".format(proposal_id))

    def _merge_counts(self, per_shard: Callable[[LifecycleManager], Dict[Any, int]]):
        merged: Dict[Any, int] = {}
        for index, shard in enumerate(self._shards):
            with self._locks[index]:
                for key, count in per_shard(shard).items():
                    merged[key] = merged.get(key, 0) + count
        return merged
