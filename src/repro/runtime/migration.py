"""State migration between model versions.

"Therefore, even in the presence of change, the problem of instance
migrations is here reduced to state migration." (§IV.B)

When a designer publishes a new version of a lifecycle model, each instance
owner who accepts the propagation must say in which phase of the new model the
instance should continue.  :func:`suggest_phase_mapping` computes a sensible
default (same phase id, else same phase name, else an initial phase) that the
owner can override; :class:`MigrationPlan` captures the final decision.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..identifiers import slugify
from ..model.lifecycle import LifecycleModel


@dataclass
class MigrationPlan:
    """The phase mapping applied to one instance when it adopts a new model version."""

    instance_id: str
    from_version: str
    to_version: str
    source_phase_id: Optional[str]
    target_phase_id: Optional[str]
    automatic: bool = True
    notes: str = ""

    def to_dict(self) -> Dict[str, Optional[str]]:
        return {
            "instance_id": self.instance_id,
            "from_version": self.from_version,
            "to_version": self.to_version,
            "source_phase_id": self.source_phase_id,
            "target_phase_id": self.target_phase_id,
            "automatic": self.automatic,
            "notes": self.notes,
        }


def suggest_phase_mapping(old_model: LifecycleModel, new_model: LifecycleModel) -> Dict[str, Optional[str]]:
    """Suggest, for every phase of ``old_model``, the corresponding new phase id.

    Matching strategy, in order:

    1. identical phase id,
    2. identical (case-insensitive) phase name,
    3. identical slug of the phase name,
    4. ``None`` — no suggestion; the owner must choose explicitly.
    """
    new_by_id = {phase.phase_id: phase for phase in new_model.phases}
    new_by_name = {phase.name.strip().lower(): phase for phase in new_model.phases}
    new_by_slug = {slugify(phase.name): phase for phase in new_model.phases}

    mapping: Dict[str, Optional[str]] = {}
    for phase in old_model.phases:
        if phase.phase_id in new_by_id:
            mapping[phase.phase_id] = phase.phase_id
            continue
        by_name = new_by_name.get(phase.name.strip().lower())
        if by_name is not None:
            mapping[phase.phase_id] = by_name.phase_id
            continue
        by_slug = new_by_slug.get(slugify(phase.name))
        if by_slug is not None:
            mapping[phase.phase_id] = by_slug.phase_id
            continue
        mapping[phase.phase_id] = None
    return mapping


def suggest_target_phase(old_model: LifecycleModel, new_model: LifecycleModel,
                         current_phase_id: Optional[str]) -> Optional[str]:
    """Suggest where the token of an instance currently on ``current_phase_id`` should land."""
    if current_phase_id is None:
        return None
    mapping = suggest_phase_mapping(old_model, new_model)
    suggestion = mapping.get(current_phase_id)
    if suggestion is not None:
        return suggestion
    initial = new_model.initial_phases()
    return initial[0].phase_id if initial else None


def unmapped_phases(old_model: LifecycleModel, new_model: LifecycleModel) -> List[str]:
    """Phases of the old model with no counterpart in the new one."""
    mapping = suggest_phase_mapping(old_model, new_model)
    return [phase_id for phase_id, target in mapping.items() if target is None]
