"""Lifecycle instances.

"A lifecycle instance is a particular execution of a lifecycle on a given
resource." (§IV.B)  The instance keeps its *own copy* of the lifecycle model —
that is the light-coupling: "Owners can change the life of a resource without
changing the model, and designers can change the model without affecting
running instances if they so desire."

An instance records where the token is, the full visit history with entry and
exit timestamps (feeding the monitoring cockpit), the action invocations
triggered by each visit, the annotations explaining deviations, and the
parameters bound at instantiation time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from datetime import datetime
from enum import Enum
from typing import Any, Dict, List, Optional

from ..errors import RuntimeStateError, UnknownPhaseError
from ..identifiers import new_id
from ..model.annotation import Annotation
from ..model.lifecycle import LifecycleModel
from ..resources.descriptor import ResourceDescriptor
from ..actions.invocation import ActionInvocation, ActionStatus


class InstanceStatus(str, Enum):
    """Coarse state of a lifecycle instance."""

    CREATED = "created"      # instantiated, token not yet placed
    ACTIVE = "active"        # token on a non-terminal phase
    COMPLETED = "completed"  # token reached an end phase


@dataclass
class PhaseVisit:
    """One stay of the token in a phase."""

    phase_id: str
    phase_name: str
    entered_at: datetime
    entered_by: str
    followed_model: bool = True
    left_at: Optional[datetime] = None
    invocations: List[ActionInvocation] = field(default_factory=list)
    visit_id: str = field(default_factory=lambda: new_id("visit"))

    @property
    def is_open(self) -> bool:
        return self.left_at is None

    def duration_days(self, now: datetime = None) -> float:
        """Length of the stay in days; for open visits measured up to ``now``."""
        end = self.left_at or now
        if end is None:
            return 0.0
        return max(0.0, (end - self.entered_at).total_seconds() / 86400.0)

    def failed_invocations(self) -> List[ActionInvocation]:
        return [inv for inv in self.invocations if inv.status is ActionStatus.FAILED]

    def to_dict(self) -> Dict[str, Any]:
        return {
            "visit_id": self.visit_id,
            "phase_id": self.phase_id,
            "phase_name": self.phase_name,
            "entered_at": self.entered_at.isoformat(),
            "entered_by": self.entered_by,
            "followed_model": self.followed_model,
            "left_at": self.left_at.isoformat() if self.left_at else None,
            "invocations": [invocation.to_dict() for invocation in self.invocations],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "PhaseVisit":
        """Rebuild a visit from :meth:`to_dict` (snapshot recovery)."""
        left_at = data.get("left_at")
        return cls(
            phase_id=data["phase_id"],
            phase_name=data.get("phase_name", data["phase_id"]),
            entered_at=datetime.fromisoformat(data["entered_at"]),
            entered_by=data.get("entered_by", ""),
            followed_model=data.get("followed_model", True),
            left_at=datetime.fromisoformat(left_at) if left_at else None,
            invocations=[ActionInvocation.from_dict(item)
                         for item in data.get("invocations") or []],
            visit_id=data.get("visit_id") or new_id("visit"),
        )


@dataclass
class LifecycleInstance:
    """A running (or completed) lifecycle on one resource."""

    model: LifecycleModel
    resource: ResourceDescriptor
    owner: str
    created_at: datetime
    instance_id: str = field(default_factory=lambda: new_id("inst"))
    status: InstanceStatus = InstanceStatus.CREATED
    current_phase_id: Optional[str] = None
    visits: List[PhaseVisit] = field(default_factory=list)
    annotations: List[Annotation] = field(default_factory=list)
    #: Parameters bound at instantiation time, keyed by action call id.
    instantiation_parameters: Dict[str, Dict[str, Any]] = field(default_factory=dict)
    #: Users allowed to move the token (the "token owner" role of §IV.D).
    token_owners: List[str] = field(default_factory=list)
    model_version: str = ""
    completed_at: Optional[datetime] = None
    metadata: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self):
        if not self.model_version:
            self.model_version = self.model.version.version_number
        if self.owner and self.owner not in self.token_owners:
            self.token_owners.append(self.owner)

    # ------------------------------------------------------------------ queries
    @property
    def is_active(self) -> bool:
        return self.status is InstanceStatus.ACTIVE

    @property
    def is_completed(self) -> bool:
        return self.status is InstanceStatus.COMPLETED

    def current_phase(self):
        """The phase object the token sits on, or None before start."""
        if self.current_phase_id is None:
            return None
        return self.model.phase(self.current_phase_id)

    def current_visit(self) -> Optional[PhaseVisit]:
        for visit in reversed(self.visits):
            if visit.is_open:
                return visit
        return None

    def visit_count(self, phase_id: str) -> int:
        return sum(1 for visit in self.visits if visit.phase_id == phase_id)

    def visited_phase_ids(self) -> List[str]:
        return [visit.phase_id for visit in self.visits]

    def deviations(self) -> List[PhaseVisit]:
        """Visits entered through moves not present in the model."""
        return [visit for visit in self.visits if not visit.followed_model]

    def suggested_next_phases(self):
        """The phases the model suggests from the current position."""
        if self.current_phase_id is None:
            return self.model.initial_phases()
        return self.model.successors(self.current_phase_id)

    def all_invocations(self) -> List[ActionInvocation]:
        invocations = []
        for visit in self.visits:
            invocations.extend(visit.invocations)
        return invocations

    def failed_invocations(self) -> List[ActionInvocation]:
        return [inv for inv in self.all_invocations() if inv.status is ActionStatus.FAILED]

    def elapsed_days(self, now: datetime) -> float:
        end = self.completed_at or now
        return max(0.0, (end - self.created_at).total_seconds() / 86400.0)

    # ------------------------------------------------------------- state change
    def record_entry(self, phase_id: str, entered_at: datetime, entered_by: str,
                     followed_model: bool) -> PhaseVisit:
        """Move the token onto ``phase_id``, closing the previous visit."""
        phase = self.model.phase(phase_id)  # raises UnknownPhaseError
        open_visit = self.current_visit()
        if open_visit is not None:
            open_visit.left_at = entered_at
        visit = PhaseVisit(
            phase_id=phase.phase_id,
            phase_name=phase.name,
            entered_at=entered_at,
            entered_by=entered_by,
            followed_model=followed_model,
        )
        self.visits.append(visit)
        self.current_phase_id = phase.phase_id
        if phase.terminal:
            self.status = InstanceStatus.COMPLETED
            self.completed_at = entered_at
            visit.left_at = entered_at
        else:
            self.status = InstanceStatus.ACTIVE
            self.completed_at = None
        return visit

    def reopen(self) -> None:
        """Clear completion when an owner moves the token out of an end phase."""
        if self.status is InstanceStatus.COMPLETED:
            self.status = InstanceStatus.ACTIVE
            self.completed_at = None

    def annotate(self, annotation: Annotation) -> Annotation:
        self.annotations.append(annotation)
        return annotation

    def bind_instantiation_parameters(self, call_id: str, parameters: Dict[str, Any]) -> None:
        """Record instantiation-time parameter values for an action call."""
        existing = self.instantiation_parameters.setdefault(call_id, {})
        existing.update(parameters)

    def grant_token_ownership(self, user: str) -> None:
        if user not in self.token_owners:
            self.token_owners.append(user)

    def replace_model(self, model: LifecycleModel, target_phase_id: Optional[str]) -> None:
        """Swap the instance's model copy (accepted change propagation).

        The owner "can state in which phase the lifecycle instance should end
        up in the modified model" — instance migration reduced to state
        migration (§IV.B).  The visit history is preserved untouched.
        """
        if target_phase_id is not None and not model.has_phase(target_phase_id):
            raise UnknownPhaseError(
                "target phase {!r} does not exist in the new model version".format(target_phase_id)
            )
        self.model = model
        self.model_version = model.version.version_number
        if target_phase_id is not None:
            self.current_phase_id = target_phase_id
            phase = model.phase(target_phase_id)
            if phase.terminal and self.status is not InstanceStatus.COMPLETED:
                self.status = InstanceStatus.COMPLETED
            elif not phase.terminal and self.status is InstanceStatus.COMPLETED:
                self.reopen()
        elif self.current_phase_id is not None and not model.has_phase(self.current_phase_id):
            raise RuntimeStateError(
                "the new model version has no phase {!r}; a target phase is required".format(
                    self.current_phase_id
                )
            )

    # ------------------------------------------------------------- serialization
    def to_dict(self) -> Dict[str, Any]:
        return {
            "instance_id": self.instance_id,
            "model_uri": self.model.uri,
            "model_name": self.model.name,
            "model_version": self.model_version,
            "resource": self.resource.to_dict(),
            "owner": self.owner,
            "token_owners": list(self.token_owners),
            "status": self.status.value,
            "current_phase_id": self.current_phase_id,
            "created_at": self.created_at.isoformat(),
            "completed_at": self.completed_at.isoformat() if self.completed_at else None,
            "visits": [visit.to_dict() for visit in self.visits],
            "annotations": [annotation.to_dict() for annotation in self.annotations],
            "metadata": dict(self.metadata),
        }

    def to_state_dict(self) -> Dict[str, Any]:
        """The *complete* durable state of the instance.

        Unlike :meth:`to_dict` (the API view), this includes the instance's
        own model copy — the light-coupling means it may differ from any
        published version — plus the instantiation-time parameter bindings
        and the resource credentials, so :meth:`from_state_dict` rebuilds an
        exact replica after a process restart.
        """
        state = self.to_dict()
        state["model"] = self.model.to_dict()
        state["resource"] = self.resource.to_dict(include_credentials=True)
        state["instantiation_parameters"] = {
            call_id: dict(values)
            for call_id, values in self.instantiation_parameters.items()
        }
        return state

    @classmethod
    def from_state_dict(cls, state: Dict[str, Any]) -> "LifecycleInstance":
        """Rebuild an instance from :meth:`to_state_dict` (crash recovery)."""
        completed_at = state.get("completed_at")
        instance = cls(
            model=LifecycleModel.from_dict(state["model"]),
            resource=ResourceDescriptor.from_dict(state["resource"]),
            owner=state["owner"],
            created_at=datetime.fromisoformat(state["created_at"]),
            instance_id=state["instance_id"],
            status=InstanceStatus(state.get("status", InstanceStatus.CREATED.value)),
            current_phase_id=state.get("current_phase_id"),
            visits=[PhaseVisit.from_dict(item) for item in state.get("visits") or []],
            annotations=[Annotation.from_dict(item)
                         for item in state.get("annotations") or []],
            instantiation_parameters={
                call_id: dict(values)
                for call_id, values in (state.get("instantiation_parameters") or {}).items()
            },
            token_owners=list(state.get("token_owners") or []),
            model_version=state.get("model_version", ""),
            completed_at=datetime.fromisoformat(completed_at) if completed_at else None,
            metadata=dict(state.get("metadata") or {}),
        )
        return instance

    def summary(self) -> Dict[str, Any]:
        """A compact snapshot for listings and the monitoring cockpit."""
        return {
            "instance_id": self.instance_id,
            "model_name": self.model.name,
            "resource_uri": self.resource.uri,
            "resource_type": self.resource.resource_type,
            "owner": self.owner,
            "status": self.status.value,
            "current_phase_id": self.current_phase_id,
            "current_phase_name": self.current_phase().name if self.current_phase() else None,
            "visits": len(self.visits),
            "deviations": len(self.deviations()),
            "failed_actions": len(self.failed_invocations()),
        }
