"""The lifecycle manager: design-time and runtime modules of the Gelee kernel.

Fig. 2: "The lifecycle manager is the heart of the system, and it has a
design time and a runtime module."  The design-time side stores and versions
lifecycle models; the runtime side receives progression events issued by the
(human) owners, resolves and dispatches phase actions through the resource
plug-ins, receives the action callbacks, and keeps every instance's history.

The manager enforces role-based permissions when an
:class:`~repro.accesscontrol.policy.AccessPolicy` is supplied, and publishes
every state change on the event bus so that the execution log, the monitoring
cockpit and the widgets stay informed.
"""

from __future__ import annotations

import random
import threading
import time
from contextlib import contextmanager
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..actions.binding import ActionResolver
from ..actions.completion import CompletionExecutor
from ..actions.invocation import (
    DEFAULT_RNG_SEED,
    ActionInvocation,
    ActionStatus,
    InvocationDispatcher,
    PendingInvocation,
    StatusMessage,
)
from ..clock import Clock, SystemClock
from ..errors import (
    GeleeError,
    InstanceNotFoundError,
    LifecycleNotFoundError,
    PermissionDeniedError,
    ReadOnlyReplicaError,
    RuntimeStateError,
    ValidationError,
)
from ..events import Event, EventBus
from ..identifiers import parse_callback_uri
from ..model.annotation import Annotation
from ..model.lifecycle import LifecycleModel
from ..model.validation import validate_lifecycle
from ..plugins.setup import StandardEnvironment
from ..resources.descriptor import ResourceDescriptor
from ..telemetry import DEFAULT_LATENCY_BUCKETS, current_trace_id, get_registry
from .instance import InstanceStatus, LifecycleInstance
from .propagation import ChangeProposal, PropagationService


class InstanceIndex:
    """Secondary indexes over the instances of one manager.

    The monitoring cockpit and the service listings filter instances by
    model, owner, resource, current phase and status; with the original
    single-dict design every such query was a linear scan over all
    instances.  The index keeps one ``key -> {instance_id: instance}``
    mapping per dimension so lookups touch only the matching instances.

    Phase and status are mutable, so the index remembers the position it
    last recorded per instance and :meth:`refresh` moves the entry when the
    manager mutates an instance (token move, model change, migration).
    """

    def __init__(self):
        self.by_model: Dict[str, Dict[str, LifecycleInstance]] = {}
        self.by_owner: Dict[str, Dict[str, LifecycleInstance]] = {}
        self.by_resource: Dict[str, Dict[str, LifecycleInstance]] = {}
        self.by_phase: Dict[Optional[str], Dict[str, LifecycleInstance]] = {}
        self.by_status: Dict[InstanceStatus, Dict[str, LifecycleInstance]] = {}
        #: instance id -> (model_uri, phase_id, status) as last indexed.
        self._positions: Dict[str, Tuple[str, Optional[str], InstanceStatus]] = {}

    def add(self, instance: LifecycleInstance) -> None:
        instance_id = instance.instance_id
        self.by_owner.setdefault(instance.owner, {})[instance_id] = instance
        self.by_resource.setdefault(instance.resource.uri, {})[instance_id] = instance
        self._index_position(instance)

    def refresh(self, instance: LifecycleInstance) -> None:
        """Re-file the instance under its current model/phase/status."""
        recorded = self._positions.get(instance.instance_id)
        current = (instance.model.uri, instance.current_phase_id, instance.status)
        if recorded == current:
            return
        if recorded is not None:
            model_uri, phase_id, status = recorded
            self._discard(self.by_model, model_uri, instance.instance_id)
            self._discard(self.by_phase, phase_id, instance.instance_id)
            self._discard(self.by_status, status, instance.instance_id)
        self._index_position(instance)

    def lookup(self, dimension: Dict[Any, Dict[str, LifecycleInstance]],
               key: Any) -> List[LifecycleInstance]:
        return list(dimension.get(key, {}).values())

    def counts(self, dimension: Dict[Any, Dict[str, LifecycleInstance]]) -> Dict[Any, int]:
        return {key: len(members) for key, members in dimension.items() if members}

    # ------------------------------------------------------------------ internal
    def _index_position(self, instance: LifecycleInstance) -> None:
        instance_id = instance.instance_id
        self.by_model.setdefault(instance.model.uri, {})[instance_id] = instance
        self.by_phase.setdefault(instance.current_phase_id, {})[instance_id] = instance
        self.by_status.setdefault(instance.status, {})[instance_id] = instance
        self._positions[instance_id] = (
            instance.model.uri, instance.current_phase_id, instance.status
        )

    @staticmethod
    def _discard(dimension: Dict[Any, Dict[str, LifecycleInstance]],
                 key: Any, instance_id: str) -> None:
        members = dimension.get(key)
        if members is not None:
            members.pop(instance_id, None)


class LifecycleManager:
    """Design-time and runtime operations over lifecycles and their instances."""

    #: Default time budget (seconds) quiesce spends draining in-flight
    #: actions before proceeding anyway; override per instance.
    quiesce_drain_timeout: float = 30.0

    def __init__(self, environment: StandardEnvironment, clock: Clock = None,
                 bus: EventBus = None, access_policy=None, strict_actions: bool = False,
                 rng: random.Random = None,
                 simulated_action_latency: Tuple[float, float] = (0.0, 0.0),
                 completion_executor: CompletionExecutor = None,
                 completion_lock=None):
        """Create a manager on top of a wired environment.

        Args:
            environment: substrates, adapters, action registry and resource
                manager (see :func:`repro.plugins.setup.build_standard_environment`).
            clock: time source; defaults to the environment clock.
            bus: event bus; a private one is created when omitted.
            access_policy: optional role/permission enforcement
                (:class:`repro.accesscontrol.policy.AccessPolicy`).  When
                ``None`` every operation is allowed — convenient for tests and
                single-user scripts.
            strict_actions: when True, entering a phase fails if any of its
                actions cannot be resolved for the resource type; when False
                (the default, matching the paper's robustness requirement)
                unresolvable actions are skipped and reported as warnings.
            rng: randomness for the non-deterministic action ordering and the
                simulated latencies.  Defaults to a *seeded* RNG
                (``random.Random(DEFAULT_RNG_SEED)``) so that repeated runs —
                in particular benchmark runs — are reproducible; inject an
                unseeded ``random.Random()`` for genuine nondeterminism.
            simulated_action_latency: optional ``(min_s, max_s)`` wall-clock
                sleep per dispatched action, standing in for the web-service
                round-trip of remote action implementations (§IV.C).
            completion_executor: where submitted actions spend their
                round-trip (see :mod:`repro.actions.completion`).  Default
                is the inline executor — fully synchronous dispatch, the
                pre-refactor behaviour.
            completion_lock: the lock completions re-acquire to apply their
                outcome.  The sharded runtime passes the owning shard's
                lock; standalone a private reentrant lock is used so pooled
                completions still serialise against each other.
        """
        self._environment = environment
        self._clock = clock or environment.clock or SystemClock()
        self.bus = bus or EventBus()
        self._policy = access_policy
        self._strict_actions = strict_actions
        self._resolver = ActionResolver(environment.registry)
        self._rng = rng or random.Random(DEFAULT_RNG_SEED)
        self._dispatcher = InvocationDispatcher(
            clock=self._clock, rng=self._rng, callback=self._deliver_callback,
            simulated_latency=simulated_action_latency,
            completion_executor=completion_executor,
        )
        self._completion_lock = completion_lock if completion_lock is not None \
            else threading.RLock()
        #: invocation id -> instance id of every submitted, not-yet-applied
        #: invocation; guarded by the condition below (never by shard locks,
        #: so drains can wait without blocking completions).
        self._in_flight: Dict[str, str] = {}
        self._in_flight_per_instance: Dict[str, int] = {}
        self._in_flight_cv = threading.Condition()
        #: model URI -> list of versions (oldest first); the last one is current.
        self._models: Dict[str, List[LifecycleModel]] = {}
        self._instances: Dict[str, LifecycleInstance] = {}
        self._index = InstanceIndex()
        self._read_only = False
        #: Optional fencing hook (:mod:`repro.coordination`): called with
        #: the operation name before every public mutation; raises to veto.
        self._write_guard = None
        self.propagation = PropagationService(clock=self._clock, bus=self.bus)
        registry = get_registry()
        self._metric_wait = registry.histogram(
            "gelee_dispatch_wait_seconds",
            "Submit-to-start wait of action invocations.",
            buckets=DEFAULT_LATENCY_BUCKETS)
        self._metric_execution = registry.histogram(
            "gelee_dispatch_execution_seconds",
            "Start-to-outcome execution time of action invocations.",
            buckets=DEFAULT_LATENCY_BUCKETS)
        completed_counter = registry.counter(
            "gelee_dispatch_completed_total",
            "Applied action completions by outcome.",
            labelnames=("outcome",))
        # Bound cells: completion is the hot path, so the label key is
        # resolved once here instead of per applied outcome.
        self._metric_completed_ok = completed_counter.bind(outcome="completed")
        self._metric_completed_failed = completed_counter.bind(outcome="failed")

    # ------------------------------------------------------------------ plumbing
    @property
    def read_only(self) -> bool:
        """Whether this runtime rejects mutations (read-replica mode)."""
        return self._read_only

    def set_read_only(self, value: bool) -> None:
        """Flip read-replica mode.

        Read-only gates the *public* mutating operations (publish,
        instantiate, progression, annotation, propagation, action dispatch,
        callbacks); the silent recovery hooks (``install_model`` /
        ``install_instance`` / ``reindex_instance``) stay writable — they
        are exactly how replication applies the primary's stream.
        Promotion flips this back off.
        """
        self._read_only = bool(value)

    def set_write_guard(self, guard) -> None:
        """Install (or with ``None`` remove) the fencing write guard.

        ``guard(operation)`` runs before the read-only check on every
        public mutation; the coordination subsystem uses it to raise
        :class:`~repro.errors.StaleFencingTokenError` once this node's
        leadership epoch has been superseded — the caller gets the precise
        "you were deposed" answer instead of a generic read-only 409.
        Like read-only mode, the silent recovery/replication hooks are not
        guarded.
        """
        self._write_guard = guard

    def _ensure_writable(self, operation: str) -> None:
        if self._write_guard is not None:
            self._write_guard(operation)
        if self._read_only:
            raise ReadOnlyReplicaError(
                "this runtime is a read replica; {} must be sent to the "
                "primary".format(operation))

    @property
    def clock(self) -> Clock:
        return self._clock

    @property
    def rng(self) -> random.Random:
        return self._rng

    @property
    def index(self) -> InstanceIndex:
        """The secondary indexes (model/owner/resource/phase/status)."""
        return self._index

    @property
    def environment(self) -> StandardEnvironment:
        return self._environment

    @property
    def resolver(self) -> ActionResolver:
        return self._resolver

    @property
    def completion_executor(self) -> "CompletionExecutor":
        """Where submitted action round-trips run (inline by default)."""
        return self._dispatcher.completion_executor

    @contextmanager
    def quiesce(self, drain_timeout: float = None):
        """Checkpoint hook, mirroring the sharded manager's interface.

        The single manager has no internal locks — it is single-writer by
        contract, callers serialise access — so after draining in-flight
        action completions (bounded by ``drain_timeout``, default
        :attr:`quiesce_drain_timeout`) this yields immediately, keeping
        ``with manager.quiesce():`` valid on either kernel.  It follows
        that a checkpoint is only consistent here when no concurrent writer
        exists; a deployment serving concurrent requests (e.g. the threaded
        HTTP server) must use :class:`ShardedLifecycleManager`, whose
        per-shard locks make quiesce a real barrier — ``shard_count=1``
        gives single-shard semantics *with* locking.
        """
        timeout = self.quiesce_drain_timeout if drain_timeout is None else drain_timeout
        self.drain_in_flight(timeout=timeout)
        yield self

    # -------------------------------------------------------- in-flight registry
    def in_flight_count(self) -> int:
        """Submitted invocations whose completion has not been applied yet."""
        with self._in_flight_cv:
            return len(self._in_flight)

    def in_flight_for(self, instance_id: str) -> int:
        """Pending completions of one instance."""
        with self._in_flight_cv:
            return self._in_flight_per_instance.get(instance_id, 0)

    def drain_in_flight(self, timeout: float = None) -> bool:
        """Wait until no completions are pending; True unless timed out.

        Never call this while holding the completion (shard) lock — pending
        completions need that lock to apply, so the wait could not end.
        """
        return self._await(lambda: not self._in_flight, timeout)

    def wait_for_instance(self, instance_id: str, timeout: float = None) -> bool:
        """Wait until one instance has no pending completions."""
        return self._await(
            lambda: instance_id not in self._in_flight_per_instance, timeout)

    def wait_for_invocation(self, invocation_id: str, timeout: float = None) -> bool:
        """Wait until one specific invocation's completion was applied."""
        return self._await(lambda: invocation_id not in self._in_flight, timeout)

    def _await(self, settled: Callable[[], bool], timeout: float) -> bool:
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._in_flight_cv:
            while not settled():
                remaining = None if deadline is None else deadline - time.monotonic()
                if remaining is not None and remaining <= 0:
                    return False
                self._in_flight_cv.wait(remaining)
        return True

    # ================================================================ design time
    def publish_model(self, model: LifecycleModel, actor: str = "") -> LifecycleModel:
        """Validate and store a lifecycle model (new model or new version)."""
        self._ensure_writable("model publication")
        self._check(actor, "model.publish", model.uri)
        validate_lifecycle(model)
        versions = self._models.setdefault(model.uri, [])
        if versions and versions[-1].version.version_number == model.version.version_number:
            raise ValidationError(
                ["version {} of model {!r} is already published".format(
                    model.version.version_number, model.uri)]
            )
        versions.append(model)
        kind = "model.updated" if len(versions) > 1 else "model.published"
        self._publish(kind, model.uri, actor,
                      name=model.name, version=model.version.version_number)
        return model

    def model(self, model_uri: str, version: str = None) -> LifecycleModel:
        """Return a stored model (latest version unless ``version`` is given)."""
        versions = self._models.get(model_uri)
        if not versions:
            raise LifecycleNotFoundError("no lifecycle model with URI {!r}".format(model_uri))
        if version is None:
            return versions[-1]
        for candidate in versions:
            if candidate.version.version_number == version:
                return candidate
        raise LifecycleNotFoundError(
            "model {!r} has no version {!r}".format(model_uri, version)
        )

    def model_versions(self, model_uri: str) -> List[str]:
        return [m.version.version_number for m in self._models.get(model_uri, [])]

    def models(self) -> List[LifecycleModel]:
        """The latest version of every published model."""
        return [versions[-1] for versions in self._models.values()]

    def applicable_resource_types(self, model_uri: str) -> List[str]:
        """Resource types on which every action of the model resolves."""
        model = self.model(model_uri)
        calls = [call for _, call in model.action_calls()]
        return self._resolver.applicable_resource_types(calls)

    # ============================================================ recovery hooks
    # Used by :mod:`repro.persistence.recovery` (and usable by replication) to
    # rebuild kernel state *without* re-running validation, action dispatch or
    # event publication — recovered state must not be journaled again.

    def install_model(self, model: LifecycleModel) -> bool:
        """Install an already-validated model version silently.

        Returns ``False`` (and leaves the store untouched) when that version
        is already installed, so replaying a journal is idempotent.
        """
        versions = self._models.setdefault(model.uri, [])
        if any(existing.version.version_number == model.version.version_number
               for existing in versions):
            return False
        versions.append(model)
        return True

    def install_instance(self, instance: LifecycleInstance) -> LifecycleInstance:
        """Insert a rebuilt instance silently (no events, no resource check).

        The instance id must be fresh: recovery creates each instance exactly
        once and applies later journal records to the same object.
        """
        if instance.instance_id in self._instances:
            raise RuntimeStateError(
                "an instance with id {!r} already exists".format(instance.instance_id)
            )
        self._instances[instance.instance_id] = instance
        self._index.add(instance)
        return instance

    def reindex_instance(self, instance_id: str) -> None:
        """Re-file an instance mutated outside the manager (journal replay)."""
        self._index.refresh(self.instance(instance_id))

    # ================================================================== runtime
    def instantiate(self, model_uri: str, resource: ResourceDescriptor, owner: str,
                    actor: str = None, version: str = None,
                    instantiation_parameters: Dict[str, Dict[str, Any]] = None,
                    token_owners: List[str] = None,
                    metadata: Dict[str, Any] = None,
                    instance_id: str = None) -> LifecycleInstance:
        """Create a lifecycle instance on a resource.

        The instance receives a *copy* of the model (light-coupling) and the
        instantiation-time parameter bindings ("actions can be configured if
        necessary", §IV.B).  The token is not placed yet; call :meth:`start`.

        ``instance_id`` lets a routing layer (the sharded runtime) pick the
        id before creation, so the hash of the id decides the shard; when
        omitted a fresh unique id is generated.
        """
        self._ensure_writable("instance creation")
        actor = actor or owner
        self._check(actor, "instance.create", model_uri)
        model = self.model(model_uri, version=version)
        self._environment.resource_manager.require(resource)
        if instance_id is not None and instance_id in self._instances:
            raise RuntimeStateError(
                "an instance with id {!r} already exists".format(instance_id)
            )
        extra = {"instance_id": instance_id} if instance_id is not None else {}
        instance = LifecycleInstance(
            model=model.copy(),
            resource=resource,
            owner=owner,
            created_at=self._clock.now(),
            metadata=dict(metadata or {}),
            **extra,
        )
        for token_owner in token_owners or []:
            instance.grant_token_ownership(token_owner)
        for call_id, parameters in (instantiation_parameters or {}).items():
            instance.bind_instantiation_parameters(call_id, parameters)
        self._instances[instance.instance_id] = instance
        self._index.add(instance)
        self._publish("instance.created", instance.instance_id, actor,
                      model_uri=model_uri, resource_uri=resource.uri, owner=owner)
        return instance

    def batch_instantiate(self, requests: List[Dict[str, Any]],
                          capture_errors: bool = False) -> List[Any]:
        """Create many instances; one list entry per request, in order.

        Each request is the kwargs of :meth:`instantiate`.  With
        ``capture_errors`` a failing item yields its exception in place of an
        instance instead of aborting the batch — the bulk API reports such
        partial failures per item.  The sharded runtime overrides this with a
        shard-parallel fan-out; here the loop is serial.
        """
        results: List[Any] = []
        for request in requests:
            try:
                results.append(self.instantiate(**request))
            except Exception as exc:  # noqa: BLE001 - captured per item
                if not capture_errors:
                    raise
                results.append(exc)
        return results

    def map_instances(self, instance_ids: List[str],
                      operation, capture_errors: bool = False) -> List[Any]:
        """Apply ``operation(manager, instance_id)`` to each id, in order.

        The single-shard counterpart of
        :meth:`~repro.runtime.sharding.ShardedLifecycleManager.map_instances`,
        so the service's bulk endpoints run unchanged on either kernel.  With
        ``capture_errors`` a failing item yields its exception in place of a
        result instead of aborting the batch.
        """
        results: List[Any] = []
        for instance_id in instance_ids:
            try:
                results.append(operation(self, instance_id))
            except Exception as exc:  # noqa: BLE001 - captured per item
                if not capture_errors:
                    raise
                results.append(exc)
        return results

    def instance(self, instance_id: str) -> LifecycleInstance:
        try:
            return self._instances[instance_id]
        except KeyError:
            raise InstanceNotFoundError(
                "no lifecycle instance with id {!r}".format(instance_id)
            ) from None

    def peek_instance(self, instance_id: str) -> Optional[LifecycleInstance]:
        """Lock-free lookup: the instance, or ``None`` when unknown.

        Exists for bus subscribers (the persistence coordinator) that may run
        *inside* another shard's locked section and therefore must never
        acquire shard locks themselves.  Safe because an instance is fully
        constructed before any event about it is published.
        """
        return self._instances.get(instance_id)

    def instances(self, model_uri: str = None, owner: str = None,
                  status: InstanceStatus = None,
                  phase_id: str = None) -> List[LifecycleInstance]:
        """List instances, optionally filtered by model, owner, status or phase.

        Filtered queries are answered from the secondary indexes: the most
        selective dimension provides the candidate set and the remaining
        filters are verified per candidate, so a query never scans instances
        that cannot match.
        """
        candidates = self._candidates(model_uri, owner, status, phase_id)
        result = []
        for instance in candidates:
            if model_uri is not None and instance.model.uri != model_uri:
                continue
            if owner is not None and instance.owner != owner:
                continue
            if status is not None and instance.status is not status:
                continue
            if phase_id is not None and instance.current_phase_id != phase_id:
                continue
            result.append(instance)
        return result

    def instance_count(self) -> int:
        return len(self._instances)

    def instances_for_resource(self, resource_uri: str) -> List[LifecycleInstance]:
        """All instances attached to a URI — several may run at once (§IV.B)."""
        return self._index.lookup(self._index.by_resource, resource_uri)

    def phase_distribution(self, model_uri: str = None) -> Dict[Optional[str], int]:
        """Instances per current phase id (``None`` = not started), from the index."""
        if model_uri is None:
            return self._index.counts(self._index.by_phase)
        counts: Dict[Optional[str], int] = {}
        for instance in self._index.lookup(self._index.by_model, model_uri):
            counts[instance.current_phase_id] = counts.get(instance.current_phase_id, 0) + 1
        return counts

    def owner_distribution(self) -> Dict[str, int]:
        """Instances per owner, straight from the index."""
        return self._index.counts(self._index.by_owner)

    def status_distribution(self) -> Dict[InstanceStatus, int]:
        """Instances per status, straight from the index."""
        return self._index.counts(self._index.by_status)

    def _candidates(self, model_uri, owner, status, phase_id) -> List[LifecycleInstance]:
        """Pick the smallest indexed candidate set for an instances() query."""
        pools = []
        if model_uri is not None:
            pools.append(self._index.by_model.get(model_uri, {}))
        if owner is not None:
            pools.append(self._index.by_owner.get(owner, {}))
        if status is not None:
            pools.append(self._index.by_status.get(status, {}))
        if phase_id is not None:
            pools.append(self._index.by_phase.get(phase_id, {}))
        if not pools:
            return list(self._instances.values())
        smallest = min(pools, key=len)
        return list(smallest.values())

    # ------------------------------------------------------------- progression
    # Every token move comes in two flavours: ``*_async`` submits the phase
    # actions and returns as soon as the token has moved (completions apply
    # later, wherever the completion executor runs them), while the classic
    # synchronous name is a thin wrapper — submit, then wait for the
    # instance's pending completions.  With the default inline executor the
    # wait is a no-op and behaviour is exactly the pre-refactor one.

    def start(self, instance_id: str, actor: str, phase_id: str = None,
              call_parameters: Dict[str, Dict[str, Any]] = None) -> LifecycleInstance:
        """Place the token on an initial phase and run its actions."""
        instance = self.start_async(instance_id, actor, phase_id=phase_id,
                                    call_parameters=call_parameters)
        self.wait_for_instance(instance_id)
        return instance

    def start_async(self, instance_id: str, actor: str, phase_id: str = None,
                    call_parameters: Dict[str, Dict[str, Any]] = None) -> LifecycleInstance:
        """Place the token on an initial phase and submit its actions."""
        self._ensure_writable("token moves")
        instance = self.instance(instance_id)
        self._check_token_move(actor, instance)
        if instance.current_phase_id is not None:
            raise RuntimeStateError("instance {!r} was already started".format(instance_id))
        initial = instance.model.initial_phases()
        if phase_id is None:
            if not initial:
                raise RuntimeStateError("the model has no phases to start from")
            phase_id = initial[0].phase_id
        followed = instance.model.is_modeled_move(None, phase_id)
        return self._enter_phase(instance, phase_id, actor, followed, call_parameters)

    def advance(self, instance_id: str, actor: str, to_phase_id: str = None,
                call_parameters: Dict[str, Dict[str, Any]] = None,
                annotation: str = None) -> LifecycleInstance:
        """Move the token along a modelled transition.

        With ``to_phase_id`` omitted the single suggested successor is used;
        when the model suggests several, the owner must choose one (that is
        the "human in the driver's seat").
        """
        instance = self.advance_async(instance_id, actor, to_phase_id=to_phase_id,
                                      call_parameters=call_parameters,
                                      annotation=annotation)
        self.wait_for_instance(instance_id)
        return instance

    def advance_async(self, instance_id: str, actor: str, to_phase_id: str = None,
                      call_parameters: Dict[str, Dict[str, Any]] = None,
                      annotation: str = None) -> LifecycleInstance:
        """:meth:`advance` without waiting for the submitted actions."""
        self._ensure_writable("token moves")
        instance = self.instance(instance_id)
        self._check_token_move(actor, instance)
        if instance.current_phase_id is None:
            return self.start_async(instance_id, actor, phase_id=to_phase_id,
                                    call_parameters=call_parameters)
        successors = instance.model.successors(instance.current_phase_id)
        if to_phase_id is None:
            if len(successors) != 1:
                raise RuntimeStateError(
                    "phase {!r} suggests {} next phases; specify which one to move to".format(
                        instance.current_phase_id, len(successors)
                    )
                )
            to_phase_id = successors[0].phase_id
        followed = instance.model.is_modeled_move(instance.current_phase_id, to_phase_id)
        result = self._enter_phase(instance, to_phase_id, actor, followed, call_parameters)
        if annotation:
            self.annotate(instance_id, actor, annotation,
                          kind="note" if followed else "deviation")
        return result

    def move_to(self, instance_id: str, actor: str, phase_id: str,
                call_parameters: Dict[str, Dict[str, Any]] = None,
                annotation: str = None) -> LifecycleInstance:
        """Move the token to *any* phase, modelled or not.

        "the lifecycle owner can at any time move the token to any phase"
        (§IV.B).  Off-model moves are recorded as deviations, and the optional
        annotation explains why.
        """
        instance = self.move_to_async(instance_id, actor, phase_id,
                                      call_parameters=call_parameters,
                                      annotation=annotation)
        self.wait_for_instance(instance_id)
        return instance

    def move_to_async(self, instance_id: str, actor: str, phase_id: str,
                      call_parameters: Dict[str, Dict[str, Any]] = None,
                      annotation: str = None) -> LifecycleInstance:
        """:meth:`move_to` without waiting for the submitted actions."""
        self._ensure_writable("token moves")
        instance = self.instance(instance_id)
        self._check_token_move(actor, instance)
        followed = instance.model.is_modeled_move(instance.current_phase_id, phase_id)
        instance.reopen()
        result = self._enter_phase(instance, phase_id, actor, followed, call_parameters)
        if annotation:
            self.annotate(instance_id, actor, annotation,
                          kind="note" if followed else "deviation")
        return result

    def skip_to(self, instance_id: str, actor: str, phase_id: str, reason: str) -> LifecycleInstance:
        """Deviation helper: jump to a phase documenting why (e.g. skipping a review)."""
        return self.move_to(instance_id, actor, phase_id, annotation=reason)

    def skip_to_async(self, instance_id: str, actor: str, phase_id: str,
                      reason: str) -> LifecycleInstance:
        """:meth:`skip_to` without waiting for the submitted actions."""
        return self.move_to_async(instance_id, actor, phase_id, annotation=reason)

    def annotate(self, instance_id: str, actor: str, text: str, phase_id: str = None,
                 kind: str = "note") -> Annotation:
        """Attach a free-text annotation to the instance."""
        self._ensure_writable("annotations")
        instance = self.instance(instance_id)
        self._check(actor, "instance.annotate", instance_id)
        annotation = Annotation(
            text=text,
            author=actor,
            created_at=self._clock.now(),
            phase_id=phase_id if phase_id is not None else instance.current_phase_id,
            kind=kind,
        )
        instance.annotate(annotation)
        self._publish("instance.annotated", instance_id, actor,
                      text=text, kind=kind, phase_id=annotation.phase_id)
        return annotation

    def bind_parameters(self, instance_id: str, actor: str, call_id: str,
                        parameters: Dict[str, Any]) -> None:
        """Bind instantiation-time parameters after creation (late configuration)."""
        self._ensure_writable("parameter binding")
        instance = self.instance(instance_id)
        self._check(actor, "instance.configure", instance_id)
        instance.bind_instantiation_parameters(call_id, parameters)

    # ---------------------------------------------------------- model evolution
    def change_instance_model(self, instance_id: str, actor: str, model: LifecycleModel,
                              target_phase_id: str = None) -> LifecycleInstance:
        """Let the owner swap the model copy followed by one instance.

        "owners can change the lifecycle followed by a resource, in other
        words they can change the model associated to a lifecycle instance"
        (§IV.B).  The replacement model does not need to be published.
        """
        self._ensure_writable("model changes")
        instance = self.instance(instance_id)
        self._check(actor, "instance.change_model", instance_id)
        validate_lifecycle(model)
        target = target_phase_id
        if target is None and instance.current_phase_id is not None:
            if model.has_phase(instance.current_phase_id):
                target = instance.current_phase_id
            else:
                initial = model.initial_phases()
                target = initial[0].phase_id if initial else None
        instance.replace_model(model.copy(), target)
        self._index.refresh(instance)
        self._publish("instance.model_changed", instance_id, actor,
                      model_uri=model.uri, version=model.version.version_number,
                      target_phase=target)
        return instance

    def propose_change(self, model: LifecycleModel, actor: str,
                       instance_ids: List[str] = None) -> List[ChangeProposal]:
        """Publish a new model version and open propagation proposals.

        Proposals are opened for the given instances (default: every active
        instance of the model); owners decide later via :meth:`accept_change`
        or :meth:`reject_change`.
        """
        self.publish_model(model, actor=actor)
        return self.open_proposals(model, actor, instance_ids=instance_ids)

    def open_proposals(self, model: LifecycleModel, actor: str,
                       instance_ids: List[str] = None) -> List[ChangeProposal]:
        """Open propagation proposals for an already-published model version.

        Shared by :meth:`propose_change` and the sharded runtime (which
        publishes once across all shards and then opens proposals shard by
        shard).  Instances already on the new version are skipped.
        """
        self._ensure_writable("change propagation")
        if instance_ids is None:
            targets = [
                instance
                for instance in self._index.lookup(self._index.by_model, model.uri)
                if not instance.is_completed
            ]
        else:
            targets = [self.instance(instance_id) for instance_id in instance_ids]
        proposals = []
        for instance in targets:
            if instance.model_version == model.version.version_number:
                continue
            proposals.append(self.propagation.propose(instance, model, requested_by=actor))
        return proposals

    def accept_change(self, proposal_id: str, actor: str, target_phase_id: str = None):
        """Owner accepts a propagation proposal (state migration)."""
        self._ensure_writable("change propagation")
        proposal = self.propagation.proposal(proposal_id)
        instance = self.instance(proposal.instance_id)
        self._check(actor, "instance.change_model", instance.instance_id)
        plan = self.propagation.accept(proposal_id, instance, decided_by=actor,
                                       target_phase_id=target_phase_id)
        self._index.refresh(instance)
        return plan

    def reject_change(self, proposal_id: str, actor: str, reason: str = ""):
        """Owner rejects a propagation proposal; the instance keeps its model copy."""
        self._ensure_writable("change propagation")
        proposal = self.propagation.proposal(proposal_id)
        instance = self.instance(proposal.instance_id)
        self._check(actor, "instance.change_model", instance.instance_id)
        return self.propagation.reject(proposal_id, decided_by=actor, reason=reason)

    # ------------------------------------------------------------- re-dispatch
    def invoke_action(self, instance_id: str, actor: str, call_id: str) -> ActionInvocation:
        """Dispatch one of the current phase's bound action calls on demand.

        Submit + wait: the returned invocation is terminal.  See
        :meth:`invoke_action_async` for the fire-and-observe variant the
        scheduler's retry machinery uses.
        """
        invocation = self.invoke_action_async(instance_id, actor, call_id)
        self.wait_for_invocation(invocation.invocation_id)
        return invocation

    def invoke_action_async(self, instance_id: str, actor: str,
                            call_id: str) -> ActionInvocation:
        """Submit one of the current phase's bound action calls on demand.

        The clock-driven hook used by :mod:`repro.scheduler` — deadline
        escalation with policy ``"invoke"`` fires the designated call, and
        retry-with-backoff re-fires a call whose earlier invocation failed.
        The invocation is recorded on the *current open visit* exactly like
        an entry-time dispatch, and the same ``action.dispatched`` /
        ``action.completed`` / ``action.failed`` events are published; the
        terminal one arrives when the completion is applied, which is what
        the scheduler's event subscriptions ride.
        """
        self._ensure_writable("action dispatch")
        instance = self.instance(instance_id)
        # Re-firing a phase action is progression-level privilege: gate it
        # exactly like a token move (a view-only stakeholder must not be
        # able to dispatch side-effectful actions).
        self._check_token_move(actor, instance)
        phase = instance.current_phase()
        visit = instance.current_visit()
        if phase is None or visit is None:
            raise RuntimeStateError(
                "instance {!r} has no open phase visit to invoke actions on".format(
                    instance_id))
        call = next((c for c in phase.actions if c.call_id == call_id), None)
        if call is None:
            raise RuntimeStateError(
                "phase {!r} of instance {!r} has no action call {!r}".format(
                    phase.phase_id, instance_id, call_id))
        resource_type = instance.resource.resource_type
        resolved = self._resolver.resolve(
            call, resource_type,
            instantiation_parameters=instance.instantiation_parameters.get(call_id, {}),
            call_parameters={},
        )
        invocation = self._resolver.build_invocation(
            resolved, instance.resource.uri, resource_type,
            instance.instance_id, phase.phase_id,
        )
        visit.invocations.append(invocation)
        adapter = self._environment.adapter(resource_type)
        context = adapter.context_for(instance.resource.uri, resolved.parameters,
                                      actor=actor)

        def executor(inv: ActionInvocation) -> Dict[str, Any]:
            return resolved.implementation.callable(context)

        self._submit_invocation(instance, phase.phase_id, actor, invocation, executor)
        return invocation

    # -------------------------------------------------------------- callbacks
    def handle_callback(self, callback_uri: str, status: str, detail: str = "",
                        **payload: Any) -> StatusMessage:
        """Receive a status message sent by an action to its callback URI.

        This is the entry point used by the service layer when an external
        action implementation reports progress (§IV.C); statuses are
        informational and never move the token.
        """
        self._ensure_writable("action callbacks")
        instance_id, phase_id, call_id = parse_callback_uri(callback_uri)
        instance = self.instance(instance_id)
        for visit in reversed(instance.visits):
            if visit.phase_id != phase_id:
                continue
            for invocation in visit.invocations:
                if invocation.call_id == call_id:
                    message = StatusMessage(status=status, detail=detail,
                                            timestamp=self._clock.now(), payload=payload)
                    invocation.record(message)
                    self._publish("action.status", instance_id, None,
                                  call_id=call_id, status=status, detail=detail)
                    return message
        raise RuntimeStateError(
            "no invocation matches callback {!r}".format(callback_uri)
        )

    # ------------------------------------------------------------------ internal
    def _enter_phase(self, instance: LifecycleInstance, phase_id: str, actor: str,
                     followed_model: bool,
                     call_parameters: Dict[str, Dict[str, Any]] = None) -> LifecycleInstance:
        previous_phase = instance.current_phase_id
        visit = instance.record_entry(phase_id, self._clock.now(), actor, followed_model)
        self._index.refresh(instance)
        if previous_phase is not None:
            self._publish("instance.phase_left", instance.instance_id, actor,
                          phase_id=previous_phase)
        self._publish("instance.phase_entered", instance.instance_id, actor,
                      phase_id=phase_id, followed_model=followed_model,
                      resource_uri=instance.resource.uri)
        self._execute_phase_actions(instance, phase_id, actor, visit, call_parameters)
        if instance.is_completed:
            self._publish("instance.completed", instance.instance_id, actor,
                          phase_id=phase_id)
        return instance

    def _execute_phase_actions(self, instance: LifecycleInstance, phase_id: str, actor: str,
                               visit, call_parameters: Dict[str, Dict[str, Any]] = None) -> None:
        phase = instance.model.phase(phase_id)
        if not phase.actions:
            return
        resource_type = instance.resource.resource_type
        unresolvable = self._resolver.unresolvable_calls(phase.actions, resource_type)
        if unresolvable and self._strict_actions:
            raise RuntimeStateError(
                "actions {} have no implementation for resource type {!r}".format(
                    [call.name or call.action_uri for call in unresolvable], resource_type
                )
            )
        for call in unresolvable:
            self._publish("action.skipped", instance.instance_id, actor,
                          action_uri=call.action_uri, reason="no implementation for {}".format(
                              resource_type))
        adapter = self._environment.adapter(resource_type)
        invocations: List[ActionInvocation] = []
        failed_bindings: List[ActionInvocation] = []
        contexts = {}
        for call in phase.actions:
            if call in unresolvable:
                continue
            try:
                resolved = self._resolver.resolve(
                    call, resource_type,
                    instantiation_parameters=instance.instantiation_parameters.get(
                        call.call_id, {}),
                    call_parameters=(call_parameters or {}).get(call.call_id, {}),
                )
            except GeleeError as exc:
                if self._strict_actions:
                    raise
                # "Actions are not guaranteed to succeed": a call that cannot be
                # configured is recorded as a failed invocation instead of
                # blocking the (human-driven) token move.
                failed = ActionInvocation(
                    action_uri=call.action_uri,
                    action_name=call.name or call.action_uri,
                    call_id=call.call_id,
                    resource_uri=instance.resource.uri,
                    resource_type=resource_type,
                )
                failed.status = ActionStatus.FAILED
                failed.error = str(exc)
                failed_bindings.append(failed)
                continue
            invocation = self._resolver.build_invocation(
                resolved, instance.resource.uri, resource_type,
                instance.instance_id, phase_id,
            )
            invocations.append(invocation)
            contexts[invocation.invocation_id] = (resolved, adapter.context_for(
                instance.resource.uri, resolved.parameters, actor=actor))
        visit.invocations.extend(failed_bindings)
        for failed in failed_bindings:
            self._publish("action.failed", instance.instance_id, actor,
                          action_uri=failed.action_uri, action_name=failed.action_name,
                          call_id=failed.call_id, phase_id=phase_id, error=failed.error)
        visit.invocations.extend(invocations)

        def executor(invocation: ActionInvocation) -> Dict[str, Any]:
            resolved, context = contexts[invocation.invocation_id]
            return resolved.implementation.callable(context)

        # Shuffle here (with the same rng as before) to keep the paper's
        # non-deterministic ordering and the seeded draw sequence intact.
        ordered = list(invocations)
        self._rng.shuffle(ordered)
        for invocation in ordered:
            self._submit_invocation(instance, phase_id, actor, invocation, executor)

    def _submit_invocation(self, instance: LifecycleInstance, phase_id: str,
                           actor: str, invocation: ActionInvocation,
                           executor: Callable[[ActionInvocation], Dict[str, Any]],
                           ) -> PendingInvocation:
        """Register, announce and submit one invocation (submit phase).

        Runs under the owning shard lock (when there is one).  The
        ``action.dispatched`` event is published here — at submit time — so
        the journal records the in-flight window; the terminal event is
        published by the completion handler below, which re-acquires the
        completion lock only to apply the outcome.
        """
        instance_id = instance.instance_id
        self._publish("action.dispatched", instance_id, actor,
                      action_uri=invocation.action_uri,
                      action_name=invocation.action_name,
                      call_id=invocation.call_id, phase_id=phase_id)
        with self._in_flight_cv:
            self._in_flight[invocation.invocation_id] = instance_id
            self._in_flight_per_instance[instance_id] = \
                self._in_flight_per_instance.get(instance_id, 0) + 1

        def on_complete(pending: PendingInvocation,
                        result: Optional[Dict[str, Any]], error: str) -> None:
            # Complete phase: runs on the completion executor's thread.  The
            # completion lock is the owning shard's lock, so the outcome is
            # applied under the same mutual exclusion as any other mutation.
            try:
                with self._completion_lock:
                    self._dispatcher.complete(invocation, result=result, error=error)
                    completed = invocation.status is ActionStatus.COMPLETED
                    kind = "action.completed" if completed else "action.failed"
                    self._publish(kind, instance_id, actor,
                                  action_uri=invocation.action_uri,
                                  action_name=invocation.action_name,
                                  call_id=invocation.call_id, phase_id=phase_id,
                                  error=invocation.error)
                wait = invocation.wait_seconds
                if wait is not None:
                    self._metric_wait.observe(wait)
                execution = invocation.execution_seconds
                if execution is not None:
                    self._metric_execution.observe(execution)
                (self._metric_completed_ok if completed
                 else self._metric_completed_failed).inc()
            finally:
                with self._in_flight_cv:
                    self._in_flight.pop(invocation.invocation_id, None)
                    remaining = self._in_flight_per_instance.get(instance_id, 0) - 1
                    if remaining > 0:
                        self._in_flight_per_instance[instance_id] = remaining
                    else:
                        self._in_flight_per_instance.pop(instance_id, None)
                    self._in_flight_cv.notify_all()

        return self._dispatcher.submit(invocation, executor, on_complete=on_complete)

    def _deliver_callback(self, callback_uri: str, invocation: ActionInvocation,
                          message: StatusMessage) -> None:
        """Dispatcher callback hook: in-process delivery of status messages."""
        # The invocation object already records the message; the hook exists so
        # the hosted service can forward callbacks over HTTP when configured.

    def _check_token_move(self, actor: str, instance: LifecycleInstance) -> None:
        if self._policy is None:
            return
        if not self._policy.can_move_token(actor, instance):
            raise PermissionDeniedError(
                "user {!r} may not move the token of instance {!r}".format(
                    actor, instance.instance_id
                )
            )

    def _check(self, actor: str, operation: str, subject_id: str) -> None:
        if self._policy is None or actor is None:
            return
        if not self._policy.allows(actor, operation, subject_id):
            raise PermissionDeniedError(
                "user {!r} may not perform {!r} on {!r}".format(actor, operation, subject_id)
            )

    def _publish(self, event_kind: str, subject_id: str, actor: Optional[str],
                 **payload: Any) -> None:
        # Stamp the gateway's correlation id onto every kernel event: the
        # journal persists the payload verbatim and the replication stream
        # ships the record as-is, so one X-Request-Id is followable from
        # the primary's wire log into every follower's applied copy.
        if "origin_request_id" not in payload:
            trace_id = current_trace_id()
            if trace_id is not None:
                payload["origin_request_id"] = trace_id
        self.bus.publish(Event(kind=event_kind, timestamp=self._clock.now(),
                               subject_id=subject_id, actor=actor, payload=payload))
