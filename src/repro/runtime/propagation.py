"""Change propagation between lifecycle models and running instances.

"If designers change a lifecycle model, they can request to propagate the
change to running lifecycles.  Upon receiving the request, lifecycle owners
can accept or reject the change, and if they accept, they can state in which
phase the lifecycle instance should end up in the modified model." (§IV.B)

:class:`PropagationService` manages the proposals: the designer opens one per
affected instance, owners later decide, and accepted decisions apply the new
model copy to the instance via state migration.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from datetime import datetime
from enum import Enum
from typing import Dict, List, Optional

from ..clock import Clock, SystemClock
from ..errors import PropagationError
from ..events import Event, EventBus
from ..identifiers import new_id
from ..model.lifecycle import LifecycleModel
from .instance import LifecycleInstance
from .migration import MigrationPlan, suggest_target_phase


class PropagationDecision(str, Enum):
    """Owner's answer to a change-propagation request."""

    PENDING = "pending"
    ACCEPTED = "accepted"
    REJECTED = "rejected"


@dataclass
class ChangeProposal:
    """A pending request to move one instance onto a new model version."""

    instance_id: str
    model_uri: str
    from_version: str
    to_version: str
    requested_by: str
    requested_at: datetime
    suggested_target_phase: Optional[str]
    decision: PropagationDecision = PropagationDecision.PENDING
    decided_by: str = ""
    decided_at: Optional[datetime] = None
    target_phase_id: Optional[str] = None
    proposal_id: str = field(default_factory=lambda: new_id("prop"))

    @property
    def is_pending(self) -> bool:
        return self.decision is PropagationDecision.PENDING

    def to_dict(self) -> Dict[str, Optional[str]]:
        return {
            "proposal_id": self.proposal_id,
            "instance_id": self.instance_id,
            "model_uri": self.model_uri,
            "from_version": self.from_version,
            "to_version": self.to_version,
            "requested_by": self.requested_by,
            "requested_at": self.requested_at.isoformat(),
            "suggested_target_phase": self.suggested_target_phase,
            "decision": self.decision.value,
            "decided_by": self.decided_by,
            "decided_at": self.decided_at.isoformat() if self.decided_at else None,
            "target_phase_id": self.target_phase_id,
        }


class PropagationService:
    """Creates, tracks and resolves change proposals."""

    def __init__(self, clock: Clock = None, bus: EventBus = None):
        self._clock = clock or SystemClock()
        self._bus = bus
        self._proposals: Dict[str, ChangeProposal] = {}
        self._new_models: Dict[str, LifecycleModel] = {}

    # ------------------------------------------------------------------ creation
    def propose(self, instance: LifecycleInstance, new_model: LifecycleModel,
                requested_by: str) -> ChangeProposal:
        """Open a proposal asking ``instance``'s owner to adopt ``new_model``."""
        if new_model.uri != instance.model.uri:
            raise PropagationError(
                "the new model has URI {!r}; the instance follows {!r}".format(
                    new_model.uri, instance.model.uri
                )
            )
        if new_model.version.version_number == instance.model_version:
            raise PropagationError("the proposed model has the same version as the instance")
        proposal = ChangeProposal(
            instance_id=instance.instance_id,
            model_uri=new_model.uri,
            from_version=instance.model_version,
            to_version=new_model.version.version_number,
            requested_by=requested_by,
            requested_at=self._clock.now(),
            suggested_target_phase=suggest_target_phase(
                instance.model, new_model, instance.current_phase_id
            ),
        )
        self._proposals[proposal.proposal_id] = proposal
        self._new_models[proposal.proposal_id] = new_model
        self._publish("propagation.requested", proposal, requested_by)
        return proposal

    # ------------------------------------------------------------------ queries
    def proposal(self, proposal_id: str) -> ChangeProposal:
        try:
            return self._proposals[proposal_id]
        except KeyError:
            raise PropagationError("unknown change proposal {!r}".format(proposal_id)) from None

    def pending_for_instance(self, instance_id: str) -> List[ChangeProposal]:
        return [
            proposal
            for proposal in self._proposals.values()
            if proposal.instance_id == instance_id and proposal.is_pending
        ]

    def all_proposals(self) -> List[ChangeProposal]:
        return list(self._proposals.values())

    def proposed_model(self, proposal_id: str) -> LifecycleModel:
        return self._new_models[self.proposal(proposal_id).proposal_id]

    # ----------------------------------------------------------------- decisions
    def accept(self, proposal_id: str, instance: LifecycleInstance, decided_by: str,
               target_phase_id: Optional[str] = None) -> MigrationPlan:
        """Accept the proposal and migrate the instance's state.

        ``target_phase_id`` defaults to the suggestion computed when the
        proposal was opened; the owner can override it.
        """
        proposal = self.proposal(proposal_id)
        self._require_pending(proposal)
        if proposal.instance_id != instance.instance_id:
            raise PropagationError("the proposal does not concern this instance")
        new_model = self._new_models[proposal_id]
        chosen_phase = target_phase_id or proposal.suggested_target_phase
        instance.replace_model(new_model.copy(), chosen_phase)
        proposal.decision = PropagationDecision.ACCEPTED
        proposal.decided_by = decided_by
        proposal.decided_at = self._clock.now()
        proposal.target_phase_id = chosen_phase
        self._publish("propagation.accepted", proposal, decided_by)
        return MigrationPlan(
            instance_id=instance.instance_id,
            from_version=proposal.from_version,
            to_version=proposal.to_version,
            source_phase_id=proposal.suggested_target_phase,
            target_phase_id=chosen_phase,
            automatic=target_phase_id is None,
        )

    def reject(self, proposal_id: str, decided_by: str, reason: str = "") -> ChangeProposal:
        """Reject the proposal; the instance keeps following its current model copy."""
        proposal = self.proposal(proposal_id)
        self._require_pending(proposal)
        proposal.decision = PropagationDecision.REJECTED
        proposal.decided_by = decided_by
        proposal.decided_at = self._clock.now()
        self._publish("propagation.rejected", proposal, decided_by, reason=reason)
        return proposal

    # ------------------------------------------------------------------ internal
    @staticmethod
    def _require_pending(proposal: ChangeProposal) -> None:
        if not proposal.is_pending:
            raise PropagationError(
                "proposal {!r} was already {}".format(proposal.proposal_id, proposal.decision.value)
            )

    def _publish(self, kind: str, proposal: ChangeProposal, actor: str, **extra) -> None:
        if self._bus is None:
            return
        payload = proposal.to_dict()
        payload.update(extra)
        self._bus.publish(Event(kind=kind, timestamp=self._clock.now(),
                                subject_id=proposal.instance_id, actor=actor, payload=payload))
