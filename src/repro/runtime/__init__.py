"""Lifecycle execution runtime (paper §IV.B, §IV.C and the Fig. 2 kernel).

There is no workflow engine: "The engine is the human, who executes the
lifecycle instances (i.e., moves the tokens from phase to phase) and, while
doing so, initiates the execution of actions."  The runtime therefore exposes
operations that *humans* (instance owners, token owners) call — instantiate,
start, move — and takes care of everything mechanical: resolving and
dispatching actions, recording history, handling callbacks, propagating model
changes, and reducing instance migration to state migration.
"""

from ..workers import TaskHandle, WorkerPool
from .instance import InstanceStatus, LifecycleInstance, PhaseVisit
from .manager import InstanceIndex, LifecycleManager
from .propagation import ChangeProposal, PropagationDecision, PropagationService
from .migration import MigrationPlan, suggest_phase_mapping
from .sharding import ShardedLifecycleManager, shard_index_for

__all__ = [
    "TaskHandle",
    "WorkerPool",
    "InstanceStatus",
    "InstanceIndex",
    "LifecycleInstance",
    "PhaseVisit",
    "LifecycleManager",
    "ShardedLifecycleManager",
    "shard_index_for",
    "ChangeProposal",
    "PropagationDecision",
    "PropagationService",
    "MigrationPlan",
    "suggest_phase_mapping",
]
