"""The standard action-type library.

The paper names a set of recurring actions — changing access rights, notifying
reviewers, sending for review, generating a PDF, posting on a web site,
performing CRUD operations, subscribing to changes (§IV.A, §IV.C, Fig. 1).
This module declares those as :class:`ActionType` objects with the parameter
signatures and binding times used by the Fig. 1 lifecycle, and registers them
into an :class:`~repro.actions.registry.ActionRegistry`.

Implementations are *not* registered here; they come from the resource
plug-ins (see :mod:`repro.plugins`), which is exactly the paper's division of
labour between composers and programmers.
"""

from __future__ import annotations

from datetime import date
from typing import Dict, List

from ..model.parameters import BindingTime, ParameterDefinition
from ..model.versioning import VersionInfo
from .definitions import ActionType
from .registry import ActionRegistry

#: Canonical URIs for the standard actions; the "change access rights" one is
#: the URI shown in the paper's Table I.
CHANGE_ACCESS_RIGHTS = "http://www.liquidpub.org/a/chr"
NOTIFY_REVIEWERS = "http://www.liquidpub.org/a/notify"
SEND_FOR_REVIEW = "http://www.liquidpub.org/a/sfr"
GENERATE_PDF = "http://www.liquidpub.org/a/pdf"
POST_ON_WEBSITE = "http://www.liquidpub.org/a/post"
CREATE_SNAPSHOT = "http://www.liquidpub.org/a/snapshot"
SUBSCRIBE_TO_CHANGES = "http://www.liquidpub.org/a/subscribe"
ARCHIVE_RESOURCE = "http://www.liquidpub.org/a/archive"
COLLECT_REVIEWS = "http://www.liquidpub.org/a/collect"
SUBMIT_TO_AGENCY = "http://www.liquidpub.org/a/submit"

_PAPER_VERSION = VersionInfo(version_number="1.0", created_by="lpAdmin",
                             creation_date=date(2008, 7, 8))


def standard_action_types() -> List[ActionType]:
    """Build (fresh copies of) the standard action types."""
    return [
        ActionType(
            uri=CHANGE_ACCESS_RIGHTS,
            name="Change Access Rights",
            category="sharing",
            description="Set who can read or edit the resource in its managing application.",
            version=_PAPER_VERSION,
            parameters=[
                ParameterDefinition("visibility", BindingTime.ANY, required=True,
                                    description="one of private, team, consortium, public"),
                ParameterDefinition("editors", BindingTime.ANY, required=False, default=(),
                                    description="users or groups granted edit rights"),
                ParameterDefinition("readers", BindingTime.ANY, required=False, default=(),
                                    description="users or groups granted read rights"),
            ],
        ),
        ActionType(
            uri=NOTIFY_REVIEWERS,
            name="Notify Reviewers",
            category="communication",
            description="Send a notification to the reviewers of the resource.",
            version=_PAPER_VERSION,
            parameters=[
                # "an information we could have or not beforehand" (§IV.A): the
                # reviewers list may be supplied as late as phase entry.
                ParameterDefinition("reviewers", BindingTime.ANY, required=True,
                                    description="the reviewers list (paper §IV.A example)"),
                ParameterDefinition("message", BindingTime.ANY, required=False,
                                    default="Please review the attached resource."),
            ],
        ),
        ActionType(
            uri=SEND_FOR_REVIEW,
            name="Send for Review",
            category="review",
            description="Share the resource with reviewers and open a review round.",
            version=_PAPER_VERSION,
            parameters=[
                ParameterDefinition("reviewers", BindingTime.ANY, required=True),
                ParameterDefinition("due_in_days", BindingTime.ANY, required=False, default=14),
            ],
        ),
        ActionType(
            uri=COLLECT_REVIEWS,
            name="Collect Reviews",
            category="review",
            description="Gather review comments entered on the resource.",
            version=_PAPER_VERSION,
            parameters=[
                ParameterDefinition("minimum_reviews", BindingTime.ANY, required=False, default=1),
            ],
        ),
        ActionType(
            uri=GENERATE_PDF,
            name="Generate PDF",
            category="export",
            description="Export the resource to PDF for submission or publication.",
            version=_PAPER_VERSION,
            parameters=[
                ParameterDefinition("paper_size", BindingTime.ANY, required=False, default="A4"),
                ParameterDefinition("include_history", BindingTime.ANY, required=False,
                                    default=False),
            ],
        ),
        ActionType(
            uri=POST_ON_WEBSITE,
            name="Post on Web Site",
            category="publication",
            description="Publish the resource (or its export) on the project web site.",
            version=_PAPER_VERSION,
            parameters=[
                ParameterDefinition("site_section", BindingTime.ANY, required=False,
                                    default="deliverables"),
                ParameterDefinition("visibility", BindingTime.ANY, required=False,
                                    default="public"),
            ],
        ),
        ActionType(
            uri=CREATE_SNAPSHOT,
            name="Create Snapshot",
            category="versioning",
            description="Record an immutable snapshot/revision of the resource.",
            version=_PAPER_VERSION,
            parameters=[
                ParameterDefinition("label", BindingTime.ANY, required=False, default="snapshot"),
            ],
        ),
        ActionType(
            uri=SUBSCRIBE_TO_CHANGES,
            name="Subscribe to Changes",
            category="monitoring",
            description="Subscribe a user to change notifications of the resource.",
            version=_PAPER_VERSION,
            parameters=[
                ParameterDefinition("subscriber", BindingTime.ANY, required=True),
            ],
        ),
        ActionType(
            uri=ARCHIVE_RESOURCE,
            name="Archive Resource",
            category="retention",
            description="Freeze the resource and mark it read-only in its application.",
            version=_PAPER_VERSION,
            parameters=[
                ParameterDefinition("reason", BindingTime.ANY, required=False, default=""),
            ],
        ),
        ActionType(
            uri=SUBMIT_TO_AGENCY,
            name="Submit to Funding Agency",
            category="submission",
            description="Send the exported deliverable to the funding agency (EU).",
            version=_PAPER_VERSION,
            parameters=[
                ParameterDefinition("agency", BindingTime.ANY, required=False,
                                    default="European Commission"),
                ParameterDefinition("deadline", BindingTime.INSTANTIATION, required=False),
            ],
        ),
    ]


def register_standard_library(registry: ActionRegistry) -> Dict[str, ActionType]:
    """Register every standard action type in ``registry`` and return them by URI."""
    registered = {}
    for action_type in standard_action_types():
        registered[action_type.uri] = registry.register_type(action_type, replace=True)
    return registered
