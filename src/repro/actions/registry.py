"""The action registry.

The paper describes a library of actions "written by programmers" from which
lifecycle composers pick (§I, §IV.A), and an adapter registration step: "the
adapter needs to register the new action implementation with Gelee, to make
Gelee aware that there is an action implementation for a specific resource
type … or that a completely new action type is introduced" (§V.B).

:class:`ActionRegistry` is that library: it stores action types keyed by URI
and implementations keyed by (action URI, resource type).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from ..errors import ActionResolutionError, UnknownActionTypeError
from .definitions import ActionImplementation, ActionType


class ActionRegistry:
    """Stores action types and their per-resource-type implementations."""

    def __init__(self):
        self._types: Dict[str, ActionType] = {}
        self._implementations: Dict[Tuple[str, str], ActionImplementation] = {}

    # -------------------------------------------------------------- action types
    def register_type(self, action_type: ActionType, replace: bool = False) -> ActionType:
        """Register an action type; re-registration requires ``replace=True``."""
        if action_type.uri in self._types and not replace:
            existing = self._types[action_type.uri]
            if existing.name != action_type.name:
                raise UnknownActionTypeError(
                    "action type {!r} is already registered as {!r}".format(
                        action_type.uri, existing.name
                    )
                )
            return existing
        self._types[action_type.uri] = action_type
        return action_type

    def type(self, action_uri: str) -> ActionType:
        try:
            return self._types[action_uri]
        except KeyError:
            raise UnknownActionTypeError(
                "no action type registered for URI {!r}".format(action_uri)
            ) from None

    def has_type(self, action_uri: str) -> bool:
        return action_uri in self._types

    def types(self) -> List[ActionType]:
        """All registered action types, for the designer's action browser."""
        return list(self._types.values())

    def types_by_category(self) -> Dict[str, List[ActionType]]:
        grouped: Dict[str, List[ActionType]] = {}
        for action_type in self._types.values():
            grouped.setdefault(action_type.category or "general", []).append(action_type)
        return grouped

    # ----------------------------------------------------------- implementations
    def register_implementation(self, implementation: ActionImplementation,
                                replace: bool = False) -> ActionImplementation:
        """Register an implementation for (action type, resource type).

        The action type must exist first — an adapter introducing "a
        completely new action type" registers the type and then the
        implementation.
        """
        if implementation.action_uri not in self._types:
            raise UnknownActionTypeError(
                "cannot register an implementation for unknown action type {!r}; "
                "register the ActionType first".format(implementation.action_uri)
            )
        key = (implementation.action_uri, implementation.resource_type)
        if key in self._implementations and not replace:
            raise ActionResolutionError(
                "an implementation of {!r} for resource type {!r} is already "
                "registered".format(implementation.action_uri, implementation.resource_type)
            )
        self._implementations[key] = implementation
        return implementation

    def implementation(self, action_uri: str, resource_type: str) -> ActionImplementation:
        """Return the implementation of ``action_uri`` for ``resource_type``."""
        self.type(action_uri)  # raise UnknownActionTypeError when the type is unknown
        try:
            return self._implementations[(action_uri, resource_type)]
        except KeyError:
            raise ActionResolutionError(
                "no implementation of action {!r} for resource type {!r}".format(
                    action_uri, resource_type
                )
            ) from None

    def has_implementation(self, action_uri: str, resource_type: str) -> bool:
        return (action_uri, resource_type) in self._implementations

    def implementations_for_type(self, resource_type: str) -> List[ActionImplementation]:
        """All implementations usable on ``resource_type``."""
        return [
            implementation
            for (_, impl_type), implementation in self._implementations.items()
            if impl_type == resource_type
        ]

    def actions_for_resource_type(self, resource_type: str) -> List[ActionType]:
        """Action types that have an implementation for ``resource_type``.

        This is what the runtime designer view shows: "For modifications at
        runtime, only actions for which there is an implementation for the
        resource being managed are shown" (§V.B).
        """
        uris = {
            action_uri
            for (action_uri, impl_type) in self._implementations
            if impl_type == resource_type
        }
        return [self._types[uri] for uri in uris if uri in self._types]

    def resource_types_for_action(self, action_uri: str) -> List[str]:
        """Resource types on which ``action_uri`` can run."""
        return sorted(
            impl_type
            for (uri, impl_type) in self._implementations
            if uri == action_uri
        )

    def applicable_resource_types(self, action_uris: Iterable[str]) -> List[str]:
        """Resource types supporting *all* of ``action_uris``.

        "The actions they select will determine the resource types to which
        the lifecycle can be applied" (§IV.A); a lifecycle is applicable to a
        resource type only if every referenced action resolves for it.
        """
        uris = list(action_uris)
        if not uris:
            return sorted({impl_type for (_, impl_type) in self._implementations})
        candidate_sets = [set(self.resource_types_for_action(uri)) for uri in uris]
        applicable = set.intersection(*candidate_sets) if candidate_sets else set()
        return sorted(applicable)

    def stats(self) -> Dict[str, int]:
        return {
            "action_types": len(self._types),
            "implementations": len(self._implementations),
            "resource_types": len({impl_type for (_, impl_type) in self._implementations}),
        }
