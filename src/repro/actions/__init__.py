"""Action framework (paper §IV.C and §V.B).

Actions are the only place where resource-type-specific behaviour lives.
The framework separates:

* **Action types** — the abstract operation ("Change access rights") with its
  parameters and binding times (Table II),
* **Action implementations** — resource-type-specific code registered by
  plug-ins ("Change access rights on a Google Doc"),
* **Resolution / binding** — mapping an action call in a lifecycle to the
  implementation for the concrete resource's type, done when the lifecycle is
  instantiated on a URI,
* **Invocation** — the asynchronous call with a resource link and a callback
  URI, the status messages, and the two model-defined terminal statuses
  (completed, failed).
"""

from .definitions import ActionType, ActionImplementation
from .registry import ActionRegistry
from .binding import ActionResolver, ResolvedAction
from .completion import (
    CompletionExecutor,
    InlineCompletionExecutor,
    PooledCompletionExecutor,
)
from .invocation import (
    ActionInvocation,
    ActionStatus,
    StatusMessage,
    InvocationDispatcher,
    PendingInvocation,
)
from .library import standard_action_types, register_standard_library

__all__ = [
    "ActionType",
    "ActionImplementation",
    "ActionRegistry",
    "ActionResolver",
    "ResolvedAction",
    "ActionInvocation",
    "ActionStatus",
    "StatusMessage",
    "CompletionExecutor",
    "InlineCompletionExecutor",
    "PooledCompletionExecutor",
    "InvocationDispatcher",
    "PendingInvocation",
    "standard_action_types",
    "register_standard_library",
]
