"""Action invocations, status messages and the dispatcher.

"At execution time, the action is invoked by calling an URI that identifies a
web service (either REST or SOAP), passing as parameters a link to the object
and a callback URI.  Upon completion, or periodically during execution, the
action can then call the callback URI and update on its status.  The status
messages are arbitrary except two defined by the model, corresponding to
failure and successful completion.  The status messages have only information
purposes." (§IV.C)

The model also fixes the concurrency semantics: "All actions associated to a
phase are executed in parallel and anyway in a non-deterministic order …
Actions are not guaranteed to succeed and there is no transactional semantic."
(§IV.A).  :class:`InvocationDispatcher` honours that: it dispatches every
action of a phase independently, shuffles the order, isolates failures, and
reports each outcome through the callback.
"""

from __future__ import annotations

import random
import threading
import time
from dataclasses import dataclass, field
from datetime import datetime
from enum import Enum
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..clock import Clock, SystemClock
from ..errors import ActionInvocationError
from ..identifiers import new_id
from ..telemetry import SpanContext, current_span_context, span_scope
from .completion import CompletionExecutor, InlineCompletionExecutor

#: Default RNG seed: the dispatcher must be reproducible out of the box so
#: benchmark runs are comparable; pass an explicitly unseeded ``random.Random()``
#: to opt back into nondeterministic ordering.
DEFAULT_RNG_SEED = 0


class ActionStatus(str, Enum):
    """Lifecycle of a single action invocation.

    Only ``COMPLETED`` and ``FAILED`` are defined by the paper's model; the
    others are bookkeeping states of the dispatcher, and arbitrary progress
    messages can be attached to a running invocation.
    """

    PENDING = "pending"
    RUNNING = "running"
    COMPLETED = "completed"
    FAILED = "failed"

    @property
    def is_terminal(self) -> bool:
        return self in (ActionStatus.COMPLETED, ActionStatus.FAILED)


@dataclass
class StatusMessage:
    """A status update reported through the callback URI."""

    status: str
    detail: str = ""
    timestamp: Optional[datetime] = None
    payload: Dict[str, Any] = field(default_factory=dict)

    @property
    def is_model_defined(self) -> bool:
        """True for the two statuses the model defines (completed / failed)."""
        return self.status in (ActionStatus.COMPLETED.value, ActionStatus.FAILED.value)


@dataclass
class ActionInvocation:
    """One asynchronous execution of an action implementation.

    Attributes:
        invocation_id: unique id, also embedded in the callback URI.
        action_uri: action type being executed.
        action_name: display name of the action.
        call_id: id of the :class:`~repro.model.actions.ActionCall` that
            produced this invocation.
        resource_uri: "link to the object" passed to the action.
        resource_type: the resolved resource type.
        parameters: the resolved parameter values.
        callback_uri: where status messages are delivered.
        status: current dispatcher status.
        messages: every status message received so far (informational only).
        result: the dictionary returned by the implementation on success.
        error: error text when the invocation failed.
        submitted_at: when the dispatcher accepted the invocation (the
            instant it went RUNNING, before any network wait).
        started_at: when the implementation actually began executing, i.e.
            *after* the (simulated) round-trip wait — the gap to
            ``submitted_at`` is queue/network time, not execution time.
        finished_at: when the terminal status was applied.
    """

    action_uri: str
    action_name: str
    call_id: str
    resource_uri: str
    resource_type: str
    parameters: Dict[str, Any] = field(default_factory=dict)
    callback_uri: str = ""
    invocation_id: str = field(default_factory=lambda: new_id("inv"))
    status: ActionStatus = ActionStatus.PENDING
    messages: List[StatusMessage] = field(default_factory=list)
    result: Optional[Dict[str, Any]] = None
    error: str = ""
    submitted_at: Optional[datetime] = None
    started_at: Optional[datetime] = None
    finished_at: Optional[datetime] = None

    @property
    def wait_seconds(self) -> Optional[float]:
        """Queue/network time: submission until execution began."""
        if self.submitted_at is None or self.started_at is None:
            return None
        return (self.started_at - self.submitted_at).total_seconds()

    @property
    def execution_seconds(self) -> Optional[float]:
        """Pure execution time, excluding the round-trip wait."""
        if self.started_at is None or self.finished_at is None:
            return None
        return (self.finished_at - self.started_at).total_seconds()

    def record(self, message: StatusMessage) -> None:
        """Attach a status message; terminal messages update the status."""
        self.messages.append(message)
        if message.status == ActionStatus.COMPLETED.value:
            self.status = ActionStatus.COMPLETED
        elif message.status == ActionStatus.FAILED.value:
            self.status = ActionStatus.FAILED

    def to_dict(self) -> Dict[str, Any]:
        return {
            "invocation_id": self.invocation_id,
            "action_uri": self.action_uri,
            "action_name": self.action_name,
            "call_id": self.call_id,
            "resource_uri": self.resource_uri,
            "resource_type": self.resource_type,
            "parameters": dict(self.parameters),
            "callback_uri": self.callback_uri,
            "status": self.status.value,
            "messages": [
                {
                    "status": m.status,
                    "detail": m.detail,
                    "timestamp": m.timestamp.isoformat() if m.timestamp else None,
                    "payload": dict(m.payload),
                }
                for m in self.messages
            ],
            "result": self.result,
            "error": self.error,
            "submitted_at": self.submitted_at.isoformat() if self.submitted_at else None,
            "started_at": self.started_at.isoformat() if self.started_at else None,
            "finished_at": self.finished_at.isoformat() if self.finished_at else None,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ActionInvocation":
        """Rebuild an invocation from :meth:`to_dict` (snapshot recovery)."""
        invocation = cls(
            action_uri=data["action_uri"],
            action_name=data.get("action_name", data["action_uri"]),
            call_id=data.get("call_id", ""),
            resource_uri=data.get("resource_uri", ""),
            resource_type=data.get("resource_type", ""),
            parameters=dict(data.get("parameters") or {}),
            callback_uri=data.get("callback_uri", ""),
            invocation_id=data.get("invocation_id") or new_id("inv"),
            status=ActionStatus(data.get("status", ActionStatus.PENDING.value)),
            result=data.get("result"),
            error=data.get("error", ""),
        )
        for stamp in ("submitted_at", "started_at", "finished_at"):
            value = data.get(stamp)
            if value:
                setattr(invocation, stamp, datetime.fromisoformat(value))
        for message in data.get("messages") or []:
            timestamp = message.get("timestamp")
            invocation.messages.append(StatusMessage(
                status=message.get("status", ""),
                detail=message.get("detail", ""),
                timestamp=datetime.fromisoformat(timestamp) if timestamp else None,
                payload=dict(message.get("payload") or {}),
            ))
        return invocation


# Callback contract: callable(callback_uri, invocation, message) -> None
CallbackHandler = Callable[[str, ActionInvocation, StatusMessage], None]

# Completion contract: callable(pending, result, error) -> None.  The
# receiver is responsible for calling ``dispatcher.complete`` (under
# whatever lock owns the invocation's instance) and must not raise.
CompletionHandler = Callable[["PendingInvocation", Optional[Dict[str, Any]], str], None]


class PendingInvocation:
    """Handle for one submitted-but-not-yet-completed invocation.

    Returned by :meth:`InvocationDispatcher.submit`; ``wait`` blocks until
    the completion callback has run (with the inline executor that has
    already happened by the time the handle is returned).
    """

    __slots__ = ("invocation", "latency", "span_context", "_done")

    def __init__(self, invocation: ActionInvocation, latency: float = 0.0,
                 span_context: Optional[SpanContext] = None):
        self.invocation = invocation
        #: The latency sampled at submit time (seconds).  Sampling happens
        #: under the submitter's lock so the latency *sequence* stays
        #: reproducible; the sleep itself runs in the completion executor.
        self.latency = latency
        #: The span context (correlation id + submit-side span) active when
        #: the invocation was submitted.  Thread-locals do not cross the
        #: completion pool, so the submit phase captures it here and the
        #: completion task re-activates it — the terminal
        #: ``action.completed``/``action.failed`` events carry the same
        #: ``origin_request_id`` as the submit-side events, and the
        #: wait/execute spans parent under the submit-side shard drain.
        self.span_context = span_context
        self._done = threading.Event()

    @property
    def trace_id(self) -> Optional[str]:
        """The correlation id captured at submit time (may be ``None``)."""
        return self.span_context.trace_id if self.span_context else None

    @property
    def done(self) -> bool:
        return self._done.is_set()

    def wait(self, timeout: float = None) -> bool:
        """Block until the outcome was applied; True unless timed out."""
        return self._done.wait(timeout)


class InvocationDispatcher:
    """Executes the resolved actions of a phase with the paper's semantics.

    * every action is invoked independently, in a shuffled order
      (non-deterministic order, no sequencing guarantees),
    * a failing action does not prevent the others from running
      (no transactional semantics),
    * each outcome is reported to the callback as a status message.

    The ``rng`` argument makes the shuffling — and the optional simulated
    action latency — reproducible in tests and benchmarks; when omitted a
    seeded RNG (:data:`DEFAULT_RNG_SEED`) is used so two identical runs
    produce identical traces.

    ``simulated_latency`` is a ``(min_seconds, max_seconds)`` range; when
    non-zero, every dispatched action sleeps a uniformly sampled wall-clock
    duration before executing, standing in for the network round-trip of the
    paper's remote (REST/SOAP) action implementations.  The sample comes from
    the injected ``rng``, so the latency *sequence* is reproducible even
    though the sleep itself is real time.

    Dispatch is a two-phase **submit/complete** protocol (see
    :mod:`repro.actions.completion`): :meth:`submit` marks the invocation
    RUNNING, samples its latency and hands a completion task to the
    ``completion_executor``; when the task finishes it delivers the outcome
    through the completion handler, which calls :meth:`complete` under the
    lock that owns the invocation.  The classic synchronous entry points
    (:meth:`dispatch` / :meth:`dispatch_one`) are thin submit+wait wrappers
    — with the default inline executor they behave exactly as before.
    """

    def __init__(self, clock: Clock = None, rng: random.Random = None,
                 callback: CallbackHandler = None,
                 simulated_latency: Tuple[float, float] = (0.0, 0.0),
                 completion_executor: CompletionExecutor = None):
        self._clock = clock or SystemClock()
        self._rng = rng or random.Random(DEFAULT_RNG_SEED)
        self._callback = callback
        low, high = simulated_latency
        if low < 0 or high < low:
            raise ValueError("simulated_latency must satisfy 0 <= min <= max")
        self._latency = (low, high)
        self._completion_executor = completion_executor or InlineCompletionExecutor()

    @property
    def completion_executor(self) -> CompletionExecutor:
        return self._completion_executor

    # ------------------------------------------------------- two-phase protocol
    def submit(self, invocation: ActionInvocation,
               executor: Callable[[ActionInvocation], Dict[str, Any]],
               on_complete: CompletionHandler = None) -> PendingInvocation:
        """Phase one: mark RUNNING and hand the round-trip to the executor.

        The caller may hold its shard lock here — submit never sleeps.  The
        completion task (latency wait + implementation call) runs wherever
        the completion executor puts it; its outcome is delivered to
        ``on_complete`` (default: apply directly via :meth:`complete`),
        after which the returned handle unblocks.
        """
        invocation.status = ActionStatus.RUNNING
        invocation.submitted_at = self._clock.now()
        pending = PendingInvocation(invocation, latency=self._sample_latency(),
                                    span_context=current_span_context())
        deliver = on_complete if on_complete is not None else self._complete_pending

        def task() -> None:
            with span_scope("action.dispatch", context=pending.span_context,
                            action=invocation.action_name,
                            invocation_id=invocation.invocation_id):
                with span_scope("dispatch.wait",
                                latency_seconds=pending.latency):
                    if pending.latency > 0.0:
                        # Slept on the executor's thread, *outside* any
                        # shard lock.
                        time.sleep(pending.latency)
                invocation.started_at = self._clock.now()
                result: Optional[Dict[str, Any]] = None
                error = ""
                with span_scope("dispatch.execute") as span:
                    try:
                        result = executor(invocation) or {}
                    except ActionInvocationError as exc:
                        error = str(exc)
                    except Exception as exc:  # noqa: BLE001 - actions are black boxes
                        error = "{}: {}".format(type(exc).__name__, exc)
                    if error and span is not None:
                        span.attrs["action_error"] = error
                    try:
                        deliver(pending, result, error)
                    finally:
                        pending._done.set()

        self._completion_executor.submit(task)
        return pending

    def complete(self, invocation: ActionInvocation,
                 result: Dict[str, Any] = None, error: str = "") -> ActionInvocation:
        """Phase two: apply the outcome (caller holds the owning lock)."""
        if error:
            self._finish(invocation, ActionStatus.FAILED, error=error)
        else:
            self._finish(invocation, ActionStatus.COMPLETED, result=result or {})
        return invocation

    # ------------------------------------------------------ synchronous facade
    def dispatch(self, invocations: List[ActionInvocation],
                 executor: Callable[[ActionInvocation], Dict[str, Any]]) -> List[ActionInvocation]:
        """Run ``executor`` for every invocation, in a non-deterministic order.

        Submit+wait over the configured executor.  Do not call this while
        holding the lock a pooled completion needs to re-acquire — use
        :meth:`submit` there and wait after releasing the lock.
        """
        ordered = list(invocations)
        self._rng.shuffle(ordered)
        for pending in [self.submit(invocation, executor) for invocation in ordered]:
            pending.wait()
        return invocations

    def dispatch_one(self, invocation: ActionInvocation,
                     executor: Callable[[ActionInvocation], Dict[str, Any]]) -> ActionInvocation:
        """Run a single invocation, capturing failure instead of propagating it."""
        self.submit(invocation, executor).wait()
        return invocation

    def report_progress(self, invocation: ActionInvocation, status: str,
                        detail: str = "", **payload: Any) -> StatusMessage:
        """Send an arbitrary (informational) progress message through the callback."""
        message = StatusMessage(status=status, detail=detail, timestamp=self._clock.now(),
                                payload=payload)
        invocation.record(message)
        if self._callback is not None and invocation.callback_uri:
            self._callback(invocation.callback_uri, invocation, message)
        return message

    # ----------------------------------------------------------------- internal
    def _sample_latency(self) -> float:
        """Draw the simulated round-trip for one submission.

        Sampled at submit time — under the submitter's lock — so the
        sequence of draws stays reproducible for a fixed seed regardless of
        which executor later runs (and overlaps) the sleeps.
        """
        low, high = self._latency
        if high <= 0.0:
            return 0.0
        return self._rng.uniform(low, high)

    def _complete_pending(self, pending: PendingInvocation,
                          result: Optional[Dict[str, Any]], error: str) -> None:
        """Default completion handler: apply the outcome with no extra locking."""
        self.complete(pending.invocation, result=result, error=error)

    def _finish(self, invocation: ActionInvocation, status: ActionStatus,
                result: Dict[str, Any] = None, error: str = "") -> None:
        invocation.finished_at = self._clock.now()
        invocation.result = result
        invocation.error = error
        detail = error if error else "action completed"
        message = StatusMessage(status=status.value, detail=detail,
                                timestamp=invocation.finished_at,
                                payload=dict(result or {}))
        invocation.record(message)
        if self._callback is not None and invocation.callback_uri:
            self._callback(invocation.callback_uri, invocation, message)
