"""Action invocations, status messages and the dispatcher.

"At execution time, the action is invoked by calling an URI that identifies a
web service (either REST or SOAP), passing as parameters a link to the object
and a callback URI.  Upon completion, or periodically during execution, the
action can then call the callback URI and update on its status.  The status
messages are arbitrary except two defined by the model, corresponding to
failure and successful completion.  The status messages have only information
purposes." (§IV.C)

The model also fixes the concurrency semantics: "All actions associated to a
phase are executed in parallel and anyway in a non-deterministic order …
Actions are not guaranteed to succeed and there is no transactional semantic."
(§IV.A).  :class:`InvocationDispatcher` honours that: it dispatches every
action of a phase independently, shuffles the order, isolates failures, and
reports each outcome through the callback.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from datetime import datetime
from enum import Enum
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..clock import Clock, SystemClock
from ..errors import ActionInvocationError
from ..identifiers import new_id

#: Default RNG seed: the dispatcher must be reproducible out of the box so
#: benchmark runs are comparable; pass an explicitly unseeded ``random.Random()``
#: to opt back into nondeterministic ordering.
DEFAULT_RNG_SEED = 0


class ActionStatus(str, Enum):
    """Lifecycle of a single action invocation.

    Only ``COMPLETED`` and ``FAILED`` are defined by the paper's model; the
    others are bookkeeping states of the dispatcher, and arbitrary progress
    messages can be attached to a running invocation.
    """

    PENDING = "pending"
    RUNNING = "running"
    COMPLETED = "completed"
    FAILED = "failed"

    @property
    def is_terminal(self) -> bool:
        return self in (ActionStatus.COMPLETED, ActionStatus.FAILED)


@dataclass
class StatusMessage:
    """A status update reported through the callback URI."""

    status: str
    detail: str = ""
    timestamp: Optional[datetime] = None
    payload: Dict[str, Any] = field(default_factory=dict)

    @property
    def is_model_defined(self) -> bool:
        """True for the two statuses the model defines (completed / failed)."""
        return self.status in (ActionStatus.COMPLETED.value, ActionStatus.FAILED.value)


@dataclass
class ActionInvocation:
    """One asynchronous execution of an action implementation.

    Attributes:
        invocation_id: unique id, also embedded in the callback URI.
        action_uri: action type being executed.
        action_name: display name of the action.
        call_id: id of the :class:`~repro.model.actions.ActionCall` that
            produced this invocation.
        resource_uri: "link to the object" passed to the action.
        resource_type: the resolved resource type.
        parameters: the resolved parameter values.
        callback_uri: where status messages are delivered.
        status: current dispatcher status.
        messages: every status message received so far (informational only).
        result: the dictionary returned by the implementation on success.
        error: error text when the invocation failed.
    """

    action_uri: str
    action_name: str
    call_id: str
    resource_uri: str
    resource_type: str
    parameters: Dict[str, Any] = field(default_factory=dict)
    callback_uri: str = ""
    invocation_id: str = field(default_factory=lambda: new_id("inv"))
    status: ActionStatus = ActionStatus.PENDING
    messages: List[StatusMessage] = field(default_factory=list)
    result: Optional[Dict[str, Any]] = None
    error: str = ""
    started_at: Optional[datetime] = None
    finished_at: Optional[datetime] = None

    def record(self, message: StatusMessage) -> None:
        """Attach a status message; terminal messages update the status."""
        self.messages.append(message)
        if message.status == ActionStatus.COMPLETED.value:
            self.status = ActionStatus.COMPLETED
        elif message.status == ActionStatus.FAILED.value:
            self.status = ActionStatus.FAILED

    def to_dict(self) -> Dict[str, Any]:
        return {
            "invocation_id": self.invocation_id,
            "action_uri": self.action_uri,
            "action_name": self.action_name,
            "call_id": self.call_id,
            "resource_uri": self.resource_uri,
            "resource_type": self.resource_type,
            "parameters": dict(self.parameters),
            "callback_uri": self.callback_uri,
            "status": self.status.value,
            "messages": [
                {
                    "status": m.status,
                    "detail": m.detail,
                    "timestamp": m.timestamp.isoformat() if m.timestamp else None,
                    "payload": dict(m.payload),
                }
                for m in self.messages
            ],
            "result": self.result,
            "error": self.error,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ActionInvocation":
        """Rebuild an invocation from :meth:`to_dict` (snapshot recovery)."""
        invocation = cls(
            action_uri=data["action_uri"],
            action_name=data.get("action_name", data["action_uri"]),
            call_id=data.get("call_id", ""),
            resource_uri=data.get("resource_uri", ""),
            resource_type=data.get("resource_type", ""),
            parameters=dict(data.get("parameters") or {}),
            callback_uri=data.get("callback_uri", ""),
            invocation_id=data.get("invocation_id") or new_id("inv"),
            status=ActionStatus(data.get("status", ActionStatus.PENDING.value)),
            result=data.get("result"),
            error=data.get("error", ""),
        )
        for message in data.get("messages") or []:
            timestamp = message.get("timestamp")
            invocation.messages.append(StatusMessage(
                status=message.get("status", ""),
                detail=message.get("detail", ""),
                timestamp=datetime.fromisoformat(timestamp) if timestamp else None,
                payload=dict(message.get("payload") or {}),
            ))
        return invocation


# Callback contract: callable(callback_uri, invocation, message) -> None
CallbackHandler = Callable[[str, ActionInvocation, StatusMessage], None]


class InvocationDispatcher:
    """Executes the resolved actions of a phase with the paper's semantics.

    * every action is invoked independently, in a shuffled order
      (non-deterministic order, no sequencing guarantees),
    * a failing action does not prevent the others from running
      (no transactional semantics),
    * each outcome is reported to the callback as a status message.

    The ``rng`` argument makes the shuffling — and the optional simulated
    action latency — reproducible in tests and benchmarks; when omitted a
    seeded RNG (:data:`DEFAULT_RNG_SEED`) is used so two identical runs
    produce identical traces.

    ``simulated_latency`` is a ``(min_seconds, max_seconds)`` range; when
    non-zero, every dispatched action sleeps a uniformly sampled wall-clock
    duration before executing, standing in for the network round-trip of the
    paper's remote (REST/SOAP) action implementations.  The sample comes from
    the injected ``rng``, so the latency *sequence* is reproducible even
    though the sleep itself is real time.
    """

    def __init__(self, clock: Clock = None, rng: random.Random = None,
                 callback: CallbackHandler = None,
                 simulated_latency: Tuple[float, float] = (0.0, 0.0)):
        self._clock = clock or SystemClock()
        self._rng = rng or random.Random(DEFAULT_RNG_SEED)
        self._callback = callback
        low, high = simulated_latency
        if low < 0 or high < low:
            raise ValueError("simulated_latency must satisfy 0 <= min <= max")
        self._latency = (low, high)

    def dispatch(self, invocations: List[ActionInvocation],
                 executor: Callable[[ActionInvocation], Dict[str, Any]]) -> List[ActionInvocation]:
        """Run ``executor`` for every invocation, in a non-deterministic order."""
        ordered = list(invocations)
        self._rng.shuffle(ordered)
        for invocation in ordered:
            self.dispatch_one(invocation, executor)
        return invocations

    def dispatch_one(self, invocation: ActionInvocation,
                     executor: Callable[[ActionInvocation], Dict[str, Any]]) -> ActionInvocation:
        """Run a single invocation, capturing failure instead of propagating it."""
        invocation.status = ActionStatus.RUNNING
        invocation.started_at = self._clock.now()
        self._simulate_latency()
        try:
            result = executor(invocation)
        except ActionInvocationError as exc:
            self._finish(invocation, ActionStatus.FAILED, error=str(exc))
        except Exception as exc:  # noqa: BLE001 - actions are black boxes
            self._finish(invocation, ActionStatus.FAILED, error="{}: {}".format(type(exc).__name__, exc))
        else:
            self._finish(invocation, ActionStatus.COMPLETED, result=result or {})
        return invocation

    def report_progress(self, invocation: ActionInvocation, status: str,
                        detail: str = "", **payload: Any) -> StatusMessage:
        """Send an arbitrary (informational) progress message through the callback."""
        message = StatusMessage(status=status, detail=detail, timestamp=self._clock.now(),
                                payload=payload)
        invocation.record(message)
        if self._callback is not None and invocation.callback_uri:
            self._callback(invocation.callback_uri, invocation, message)
        return message

    # ----------------------------------------------------------------- internal
    def _simulate_latency(self) -> None:
        low, high = self._latency
        if high <= 0.0:
            return
        # The sampled duration is deterministic (seeded rng); the sleep
        # releases the GIL, so concurrent shards overlap their waits exactly
        # like they would overlap real web-service round-trips.
        time.sleep(self._rng.uniform(low, high))

    def _finish(self, invocation: ActionInvocation, status: ActionStatus,
                result: Dict[str, Any] = None, error: str = "") -> None:
        invocation.finished_at = self._clock.now()
        invocation.result = result
        invocation.error = error
        detail = error if error else "action completed"
        message = StatusMessage(status=status.value, detail=detail,
                                timestamp=invocation.finished_at,
                                payload=dict(result or {}))
        invocation.record(message)
        if self._callback is not None and invocation.callback_uri:
            self._callback(invocation.callback_uri, invocation, message)
