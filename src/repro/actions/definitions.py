"""Action types and action implementations.

"This separation between action types and action implementations is another
way in which Gelee supports light-coupling. Designers can define lifecycles
(including definition of actions) that can be made applicable to different
resource types. When a lifecycle is instantiated on a specific URI (and
therefore on a specific resource of a specific type), action types are
resolved to specific action signatures and implementations." (§V.B)
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from ..errors import ParameterBindingError
from ..model.parameters import ParameterDefinition, ParameterSet
from ..model.versioning import VersionInfo


@dataclass
class ActionType:
    """The abstract, resource-independent definition of an operation.

    Attributes:
        uri: globally unique identifier of the action type (Table II ``uri``).
        name: display name, e.g. "Change Access Rights".
        parameters: declared parameters with binding times and required flags.
        description: documentation shown in the designer's action browser.
        category: free grouping used by the designer UI (e.g. "sharing").
        version: the ``version_info`` block.
    """

    uri: str
    name: str
    parameters: List[ParameterDefinition] = field(default_factory=list)
    description: str = ""
    category: str = ""
    version: VersionInfo = field(default_factory=VersionInfo)

    def parameter(self, name: str) -> Optional[ParameterDefinition]:
        for definition in self.parameters:
            if definition.name == name:
                return definition
        return None

    def parameter_names(self) -> List[str]:
        return [definition.name for definition in self.parameters]

    def new_parameter_set(self) -> ParameterSet:
        """Create an empty :class:`ParameterSet` declared from this type."""
        return ParameterSet(self.parameters)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "uri": self.uri,
            "name": self.name,
            "description": self.description,
            "category": self.category,
            "version": self.version.to_dict(),
            "parameters": [
                {
                    "name": p.name,
                    "binding_time": p.binding_time.value,
                    "required": p.required,
                    "default": p.default,
                    "description": p.description,
                }
                for p in self.parameters
            ],
        }


# The callable contract every implementation must honour.  It receives the
# resource handle (from the plug-in), the resolved parameters, and an
# invocation context exposing the callback; it returns a result dictionary.
ImplementationCallable = Callable[..., Dict[str, Any]]


@dataclass
class ActionImplementation:
    """A resource-type-specific implementation of an action type.

    Attributes:
        action_uri: URI of the action type this implements.
        resource_type: resource type it applies to ("Google Doc", "MediaWiki
            page", ...).
        callable: the code to run; written by programmers, black box for the
            lifecycle model.
        signature_overrides: extra or narrowed parameters for this resource
            type ("the 'signature' details are different", §V.B).
        description: implementation-specific documentation.
    """

    action_uri: str
    resource_type: str
    callable: ImplementationCallable
    signature_overrides: List[ParameterDefinition] = field(default_factory=list)
    description: str = ""

    def effective_parameters(self, action_type: ActionType) -> List[ParameterDefinition]:
        """Merge the action-type parameters with implementation overrides."""
        merged: Dict[str, ParameterDefinition] = {p.name: p for p in action_type.parameters}
        for override in self.signature_overrides:
            merged[override.name] = override
        return list(merged.values())

    def check_parameters(self, action_type: ActionType, values: Dict[str, Any]) -> Dict[str, Any]:
        """Validate resolved parameter values against the effective signature."""
        effective = {p.name: p for p in self.effective_parameters(action_type)}
        for name, definition in effective.items():
            if definition.required and values.get(name) is None and definition.default is None:
                raise ParameterBindingError(
                    "action {!r} on {!r} requires parameter {!r}".format(
                        action_type.name, self.resource_type, name
                    )
                )
        checked = dict(values)
        for name, definition in effective.items():
            if name not in checked and definition.default is not None:
                checked[name] = definition.default
        return checked
