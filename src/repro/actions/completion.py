"""Completion executors: where an in-flight action spends its round-trip.

The paper's actions are *remote* web-service calls (§IV.C): the kernel
submits them and learns the outcome later, through the callback URI.  The
dispatcher mirrors that with a two-phase **submit/complete** protocol
(:meth:`~repro.actions.invocation.InvocationDispatcher.submit`): submit
marks the invocation RUNNING and hands a *completion task* — simulated
network wait, implementation call, completion callback — to one of the
executors below.  Where that task runs decides the concurrency model:

* :class:`InlineCompletionExecutor` runs it on the submitting thread, so
  submit returns with the invocation already terminal.  This is the
  default: single-threaded callers, tests and recovery see exactly the old
  synchronous behaviour.
* :class:`PooledCompletionExecutor` runs it on a shared
  :class:`~repro.workers.WorkerPool`.  Submit returns immediately and —
  crucially — the simulated latency is slept on a pool worker, *outside*
  any shard lock, so one slow web service no longer stalls its whole
  shard.  The completion callback re-acquires the owning shard lock only
  for the brief moment it takes to apply the outcome.

Executors never interpret the task; sequencing, locking and event
publication live in the dispatcher and the managers.
"""

from __future__ import annotations

from typing import Any, Callable, Dict

from ..workers import WorkerPool


class CompletionExecutor:
    """Strategy interface: run one completion task (a zero-arg callable)."""

    #: Human-readable mode tag, surfaced by runtime stats.
    mode = "abstract"

    def submit(self, task: Callable[[], None]) -> None:
        raise NotImplementedError

    def stats(self) -> Dict[str, Any]:
        return {"mode": self.mode}


class InlineCompletionExecutor(CompletionExecutor):
    """Run the completion task synchronously on the submitting thread.

    With this executor the two-phase protocol collapses back into the
    original blocking dispatch: by the time ``submit`` returns, the
    invocation has completed (or failed) and every ``action.*`` event has
    been published.  It is the default everywhere, which is what keeps the
    synchronous API a thin wrapper over submit+wait.
    """

    mode = "inline"

    def submit(self, task: Callable[[], None]) -> None:
        task()


class PooledCompletionExecutor(CompletionExecutor):
    """Run completion tasks on a persistent worker pool.

    The pool is typically shared with the sharded runtime's bulk fan-out
    (see :class:`~repro.runtime.sharding.ShardedLifecycleManager`); the
    sharing is safe because fan-out drain tasks never wait on completion
    tasks — a queued completion only needs a shard lock, and every shard
    lock holder eventually releases it without touching the pool.
    """

    mode = "pooled"

    def __init__(self, pool: WorkerPool):
        self._pool = pool

    @property
    def pool(self) -> WorkerPool:
        return self._pool

    def submit(self, task: Callable[[], None]) -> None:
        self._pool.submit(task)

    def stats(self) -> Dict[str, Any]:
        data = {"mode": self.mode}
        data.update(self._pool.stats())
        return data
