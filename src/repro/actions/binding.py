"""Late binding of action calls to implementations.

"When a lifecycle is instantiated on a specific URI (and therefore on a
specific resource of a specific type), action types are resolved to specific
action signatures and implementations." (§V.B)

:class:`ActionResolver` performs that resolution and builds ready-to-dispatch
:class:`~repro.actions.invocation.ActionInvocation` objects, merging parameter
values bound at definition, instantiation and call time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional

from ..errors import ActionResolutionError
from ..identifiers import callback_uri
from ..model.actions import ActionCall
from ..model.parameters import BindingTime
from .definitions import ActionImplementation, ActionType
from .invocation import ActionInvocation
from .registry import ActionRegistry


@dataclass
class ResolvedAction:
    """An action call resolved against a concrete resource type."""

    call: ActionCall
    action_type: ActionType
    implementation: ActionImplementation
    parameters: Dict[str, Any]

    @property
    def action_uri(self) -> str:
        return self.call.action_uri

    @property
    def name(self) -> str:
        return self.call.name or self.action_type.name


class ActionResolver:
    """Resolves action calls for a resource type and prepares invocations."""

    def __init__(self, registry: ActionRegistry, callback_base: str = "urn:gelee:runtime"):
        self._registry = registry
        self._callback_base = callback_base

    @property
    def registry(self) -> ActionRegistry:
        return self._registry

    def can_resolve(self, call: ActionCall, resource_type: str) -> bool:
        """True when an implementation of the call exists for ``resource_type``."""
        return self._registry.has_type(call.action_uri) and self._registry.has_implementation(
            call.action_uri, resource_type
        )

    def unresolvable_calls(self, calls: List[ActionCall], resource_type: str) -> List[ActionCall]:
        """The subset of ``calls`` that cannot run on ``resource_type``."""
        return [call for call in calls if not self.can_resolve(call, resource_type)]

    def resolve(self, call: ActionCall, resource_type: str,
                instantiation_parameters: Dict[str, Any] = None,
                call_parameters: Dict[str, Any] = None) -> ResolvedAction:
        """Resolve one call, merging parameters across binding stages.

        Definition-time values come from the call itself (Table I), the
        instance owner supplies instantiation-time values when the lifecycle
        is attached to the resource, and call-time values when the phase is
        entered.  Later stages override earlier ones.
        """
        action_type = self._registry.type(call.action_uri)
        implementation = self._registry.implementation(call.action_uri, resource_type)

        parameter_set = action_type.new_parameter_set()
        for binding in call.definition_bindings():
            parameter_set.bind(binding.name, binding.value, BindingTime.DEFINITION)
        for name, value in (instantiation_parameters or {}).items():
            parameter_set.bind(name, value, BindingTime.INSTANTIATION)
        for name, value in (call_parameters or {}).items():
            parameter_set.bind(name, value, BindingTime.CALL)

        values = parameter_set.resolve()
        values = implementation.check_parameters(action_type, values)
        return ResolvedAction(call=call, action_type=action_type,
                              implementation=implementation, parameters=values)

    def resolve_all(self, calls: List[ActionCall], resource_type: str,
                    instantiation_parameters: Dict[str, Dict[str, Any]] = None,
                    call_parameters: Dict[str, Dict[str, Any]] = None,
                    strict: bool = True) -> List[ResolvedAction]:
        """Resolve every call of a phase.

        ``instantiation_parameters`` and ``call_parameters`` are keyed by the
        call id.  With ``strict=False`` unresolvable calls are skipped instead
        of raising, supporting the paper's robustness requirement (partially
        specified lifecycles remain usable).
        """
        resolved = []
        for call in calls:
            per_call_inst = (instantiation_parameters or {}).get(call.call_id, {})
            per_call_call = (call_parameters or {}).get(call.call_id, {})
            try:
                resolved.append(
                    self.resolve(call, resource_type, per_call_inst, per_call_call)
                )
            except ActionResolutionError:
                if strict:
                    raise
        return resolved

    def build_invocation(self, resolved: ResolvedAction, resource_uri: str,
                         resource_type: str, instance_id: str, phase_id: str) -> ActionInvocation:
        """Create the invocation record handed to the dispatcher."""
        return ActionInvocation(
            action_uri=resolved.action_uri,
            action_name=resolved.name,
            call_id=resolved.call.call_id,
            resource_uri=resource_uri,
            resource_type=resource_type,
            parameters=dict(resolved.parameters),
            callback_uri=callback_uri(self._callback_base, instance_id, phase_id,
                                      resolved.call.call_id),
        )

    def applicable_resource_types(self, calls: List[ActionCall]) -> List[str]:
        """Resource types on which *all* of ``calls`` resolve (lifecycle applicability)."""
        return self._registry.applicable_resource_types(call.action_uri for call in calls)
