"""Monitoring cockpit (requirement 4 of §II.B, the "Monitoring cockpit" of Fig. 2).

"We (as project managers) would like to be able to have a picture of the
status of the lifecycle for each artifact at any given point in time, with
particular attention to delays."

The cockpit aggregates the lifecycle instances managed by a
:class:`~repro.runtime.manager.LifecycleManager` into portfolio views: status
at a glance, delayed artifacts, deviation reports, phase timelines and
per-phase duration statistics.
"""

from .cockpit import MonitoringCockpit, InstanceStatusRow, PortfolioSummary
from .timeline import TimelineEntry, instance_timeline
from .alerts import Alert, AlertSeverity, collect_alerts

__all__ = [
    "MonitoringCockpit",
    "InstanceStatusRow",
    "PortfolioSummary",
    "TimelineEntry",
    "instance_timeline",
    "Alert",
    "AlertSeverity",
    "collect_alerts",
]
