"""The monitoring cockpit.

Builds the project-manager views: one row per lifecycle instance (phase,
owner, time in phase, deadline state), portfolio roll-ups by phase and by
owner, delay reports and per-phase duration statistics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from datetime import datetime, timedelta
from typing import Dict, List, Optional

from ..clock import Clock
from ..runtime.instance import InstanceStatus, LifecycleInstance
from ..runtime.manager import LifecycleManager


@dataclass
class InstanceStatusRow:
    """One line of the cockpit's status table."""

    instance_id: str
    resource_name: str
    resource_uri: str
    owner: str
    model_name: str
    status: str
    phase_id: Optional[str]
    phase_name: Optional[str]
    days_in_phase: float
    overdue_days: float
    deviations: int
    failed_actions: int
    annotations: int

    @property
    def is_late(self) -> bool:
        return self.overdue_days > 0

    def to_dict(self) -> Dict[str, object]:
        return {
            "instance_id": self.instance_id,
            "resource_name": self.resource_name,
            "resource_uri": self.resource_uri,
            "owner": self.owner,
            "model_name": self.model_name,
            "status": self.status,
            "phase_id": self.phase_id,
            "phase_name": self.phase_name,
            "days_in_phase": round(self.days_in_phase, 2),
            "overdue_days": round(self.overdue_days, 2),
            "deviations": self.deviations,
            "failed_actions": self.failed_actions,
            "annotations": self.annotations,
        }


@dataclass
class PortfolioSummary:
    """Roll-up of a set of instances (typically one project's deliverables)."""

    total: int = 0
    active: int = 0
    completed: int = 0
    not_started: int = 0
    late: int = 0
    with_deviations: int = 0
    with_failed_actions: int = 0
    #: Instances the scheduler escalated at least once (annotation kind
    #: ``"escalation"`` — durable, so the count survives restarts).
    escalated: int = 0
    by_phase: Dict[str, int] = field(default_factory=dict)
    by_owner: Dict[str, int] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, object]:
        return {
            "total": self.total,
            "active": self.active,
            "completed": self.completed,
            "not_started": self.not_started,
            "late": self.late,
            "with_deviations": self.with_deviations,
            "with_failed_actions": self.with_failed_actions,
            "escalated": self.escalated,
            "by_phase": dict(self.by_phase),
            "by_owner": dict(self.by_owner),
        }


class MonitoringCockpit:
    """Project-manager monitoring over a lifecycle manager's instances."""

    def __init__(self, manager: LifecycleManager, clock: Clock = None):
        self._manager = manager
        self._clock = clock or manager.clock

    # --------------------------------------------------------------- status rows
    def status_row(self, instance: LifecycleInstance, now: datetime = None) -> InstanceStatusRow:
        """Compute the cockpit row for one instance."""
        now = now or self._clock.now()
        visit = instance.current_visit()
        days_in_phase = visit.duration_days(now) if visit is not None else 0.0
        overdue = 0.0
        phase = instance.current_phase()
        if phase is not None and phase.deadline is not None and visit is not None and visit.is_open:
            delta = phase.deadline.overdue_by(visit.entered_at, now)
            overdue = max(0.0, delta.total_seconds() / 86400.0)
        return InstanceStatusRow(
            instance_id=instance.instance_id,
            resource_name=instance.resource.display_name,
            resource_uri=instance.resource.uri,
            owner=instance.owner,
            model_name=instance.model.name,
            status=instance.status.value,
            phase_id=instance.current_phase_id,
            phase_name=phase.name if phase else None,
            days_in_phase=days_in_phase,
            overdue_days=overdue,
            deviations=len(instance.deviations()),
            failed_actions=len(instance.failed_invocations()),
            annotations=len(instance.annotations),
        )

    def status_table(self, model_uri: str = None, owner: str = None,
                     now: datetime = None) -> List[InstanceStatusRow]:
        """The "status at a glance" table, optionally filtered."""
        now = now or self._clock.now()
        instances = self._manager.instances(model_uri=model_uri, owner=owner)
        rows = [self.status_row(instance, now) for instance in instances]
        rows.sort(key=lambda row: (-row.overdue_days, row.resource_name))
        return rows

    # ------------------------------------------------------------------ roll-ups
    def phase_counts(self, model_uri: str = None) -> Dict[str, int]:
        """Instances per current phase id, answered from the runtime index."""
        counts = self._manager.phase_distribution(model_uri=model_uri)
        return {(phase_id or "(not started)"): count for phase_id, count in counts.items()}

    def owner_counts(self) -> Dict[str, int]:
        """Instances per owner, answered from the runtime index."""
        return self._manager.owner_distribution()

    def status_counts(self) -> Dict[str, int]:
        """Instances per status, answered from the runtime index."""
        return {status.value: count
                for status, count in self._manager.status_distribution().items()}

    def portfolio_summary(self, model_uri: str = None, now: datetime = None) -> PortfolioSummary:
        """Roll-up over the (index-selected) instances of one model or all.

        Selection comes from the runtime index (only instances of
        ``model_uri`` are visited); the per-instance work is reduced to the
        deadline check — no full status rows are materialised.
        """
        now = now or self._clock.now()
        summary = PortfolioSummary()
        for instance in self._manager.instances(model_uri=model_uri):
            summary.total += 1
            if instance.status is InstanceStatus.COMPLETED:
                summary.completed += 1
            elif instance.status is InstanceStatus.ACTIVE:
                summary.active += 1
            else:
                summary.not_started += 1
            if self._is_late(instance, now):
                summary.late += 1
            if instance.deviations():
                summary.with_deviations += 1
            if instance.failed_invocations():
                summary.with_failed_actions += 1
            if any(a.kind == "escalation" for a in instance.annotations):
                summary.escalated += 1
            phase = instance.current_phase()
            phase_name = phase.name if phase is not None else "(not started)"
            summary.by_phase[phase_name] = summary.by_phase.get(phase_name, 0) + 1
            summary.by_owner[instance.owner] = summary.by_owner.get(instance.owner, 0) + 1
        return summary

    def _is_late(self, instance: LifecycleInstance, now: datetime) -> bool:
        phase = instance.current_phase()
        if phase is None or phase.deadline is None:
            return False
        visit = instance.current_visit()
        if visit is None or not visit.is_open:
            return False
        return phase.deadline.overdue_by(visit.entered_at, now).total_seconds() > 0

    def late_instances(self, model_uri: str = None, now: datetime = None) -> List[InstanceStatusRow]:
        """Instances whose current phase deadline has passed, most late first."""
        return [row for row in self.status_table(model_uri=model_uri, now=now) if row.is_late]

    def deadline_rollup(self, model_uri: str = None, now: datetime = None,
                        scheduler=None) -> Dict[str, object]:
        """One-look deadline health: armed, due-soon, overdue, escalated.

        The passive view (deadline arithmetic over the instances) plus —
        when the deployment's :class:`~repro.scheduler.LifecycleScheduler`
        is passed — the active view: how many deadline timers are pending
        and how many escalations have already fired.  ``escalated`` counts
        instances carrying at least one durable ``"escalation"`` annotation,
        so it needs no scheduler at all.
        """
        now = now or self._clock.now()
        with_deadline = 0
        overdue = 0
        due_soon = 0
        escalated = 0
        overdue_ids: List[str] = []
        for instance in self._manager.instances(model_uri=model_uri):
            if any(a.kind == "escalation" for a in instance.annotations):
                escalated += 1
            phase = instance.current_phase()
            visit = instance.current_visit()
            if phase is None or phase.deadline is None or visit is None or not visit.is_open:
                continue
            with_deadline += 1
            # One source of truth for boundary semantics: Deadline itself.
            if phase.deadline.is_overdue(visit.entered_at, now):
                overdue += 1
                overdue_ids.append(instance.instance_id)
            elif phase.deadline.is_expired(visit.entered_at,
                                           now + timedelta(days=1)):
                due_soon += 1
        rollup: Dict[str, object] = {
            "with_deadline": with_deadline,
            "overdue": overdue,
            "due_within_24h": due_soon,
            "escalated": escalated,
            "overdue_instance_ids": overdue_ids,
        }
        if scheduler is not None:
            status = scheduler.status()
            rollup["pending_deadline_timers"] = scheduler.timers.count(
                kind="deadline")
            rollup["escalations_fired"] = status["escalations"]
            rollup["next_fire_at"] = status["next_fire_at"]
        return rollup

    def replication_rollup(self, replication) -> Dict[str, object]:
        """One-look replication health for the cockpit.

        ``replication`` is the deployment's attachment — a
        :class:`~repro.replication.ReadReplica` (stream position + lag) or
        a :class:`~repro.replication.ReplicationPrimary` (follower lag
        table).  Only the at-a-glance figures are kept; the full picture
        lives at ``GET /v2/runtime/replication``.
        """
        status = replication.status()
        keys = ("role", "applied_seq", "head_seq", "lag_records",
                "lag_seconds", "promoted", "journal_seq", "followers",
                "max_follower_lag")
        return {key: status[key] for key in keys if key in status}

    def coordination_rollup(self, coordination) -> Dict[str, object]:
        """One-look election health for the cockpit.

        ``coordination`` is the node's attachment — the
        :class:`~repro.coordination.Coordinator` of an enrolled primary or
        the :class:`~repro.coordination.FailoverSupervisor` of a standby.
        Who leads, at what epoch, how long the lease has left, and how
        often power changed hands; the full picture lives at
        ``GET /v2/runtime/coordination``.
        """
        status = coordination.status()
        keys = ("role", "is_leader", "leader_id", "node_id", "token",
                "latest_token", "ttl_seconds", "lease_expires_in",
                "elections", "depositions", "failovers", "demotions",
                "fenced_appends")
        return {key: status[key] for key in keys if key in status}

    def telemetry_rollup(self, registry) -> Dict[str, object]:
        """One-look telemetry health for the cockpit.

        ``registry`` is the process :class:`~repro.telemetry.MetricsRegistry`.
        Only the headline figures are kept — request volume, dispatch
        latency, journal position, replication lag and election churn;
        the full exposition lives at ``GET /v2/metrics`` and the
        structured snapshot at ``GET /v2/runtime/telemetry``.
        """
        rollup: Dict[str, object] = {"enabled": registry.enabled}

        def total(name):
            instrument = registry.get(name)
            if instrument is None:
                return 0.0
            snapshot = instrument.snapshot()
            if snapshot["type"] == "histogram":
                return sum(series["count"] for series in snapshot["series"])
            return sum(series["value"] for series in snapshot["series"])

        def gauge_value(name):
            instrument = registry.get(name)
            if instrument is None:
                return None
            series = instrument.snapshot()["series"]
            return series[0]["value"] if series else None

        rollup["api_requests"] = total("gelee_api_requests_total")
        rollup["actions_completed"] = total("gelee_dispatch_completed_total")
        rollup["timers_fired"] = total("gelee_timers_fired_total")
        rollup["fencing_rejections"] = total("gelee_fencing_rejections_total")
        rollup["election_transitions"] = total(
            "gelee_election_transitions_total")
        for key, name in (("in_flight", "gelee_dispatch_in_flight"),
                          ("journal_last_seq", "gelee_journal_last_seq"),
                          ("replication_lag_records",
                           "gelee_replication_lag_records")):
            value = gauge_value(name)
            if value is not None:
                rollup[key] = value
        for key, name in (
                ("dispatch_wait_mean_seconds", "gelee_dispatch_wait_seconds"),
                ("lock_wait_mean_seconds", "gelee_lock_wait_seconds")):
            histogram = registry.get(name)
            if histogram is None:
                continue
            cell = histogram.snapshot()
            counts = sum(series["count"] for series in cell["series"])
            sums = sum(series["sum"] for series in cell["series"])
            rollup[key] = sums / counts if counts else 0.0
        return rollup

    def observability_rollup(self, history, log_ring,
                             profiler) -> Dict[str, object]:
        """One-look status of the second observability layer.

        How far back the history rings reach, how full the log ring is
        and whether the stack sampler is on — enough for the cockpit to
        say "the flight recorder is running" without shipping any of the
        recorded data (that lives at ``GET /v2/runtime/telemetry/history``,
        ``/v2/runtime/logs`` and ``/v2/runtime/profile``).
        """
        rollup: Dict[str, object] = {}
        if history is not None:
            stats = history.stats()
            rollup["history"] = {
                "enabled": stats["enabled"],
                "captures": stats["captures"],
                "series": stats["series"],
                "last_capture_at": stats["last_capture_at"],
            }
        if log_ring is not None:
            stats = log_ring.stats()
            rollup["logs"] = {
                "enabled": stats["enabled"],
                "size": stats["size"],
                "capacity": stats["capacity"],
                "dropped": stats["dropped"],
            }
        if profiler is not None:
            rollup["profiler"] = {
                "running": profiler.running,
                "samples": profiler.status()["samples"],
            }
        return rollup

    def alerts_rollup(self, engine) -> Dict[str, object]:
        """One-look SLO health for the cockpit.

        ``engine`` is the service's :class:`~repro.telemetry.SloEngine`.
        How many rules exist, how many are firing (and which, with their
        severities) and when the last evaluation ran; the full per-rule
        state lives at ``GET /v2/runtime/alerts``.
        """
        status = engine.status()
        firing = [alert for alert in status["alerts"]
                  if alert["state"] == "firing"]
        return {
            "rules": len(status["rules"]),
            "firing": len(firing),
            "firing_rules": [{"rule": alert["rule"],
                              "severity": alert["severity"],
                              "value": alert["value"],
                              "threshold": alert["threshold"],
                              "fired_at": alert["fired_at"]}
                             for alert in firing],
            "evaluations": status["evaluations"],
            "last_evaluated_at": status["last_evaluated_at"],
        }

    def deviating_instances(self, model_uri: str = None) -> List[LifecycleInstance]:
        """Instances that left the modelled flow at least once."""
        return [instance for instance in self._manager.instances(model_uri=model_uri)
                if instance.deviations()]

    def instances_in_phase(self, phase_id: str,
                           model_uri: str = None) -> List[LifecycleInstance]:
        """The instances whose token currently sits on ``phase_id`` (indexed)."""
        return self._manager.instances(model_uri=model_uri, phase_id=phase_id)

    # ----------------------------------------------------------------- statistics
    def phase_duration_statistics(self, model_uri: str = None,
                                  now: datetime = None) -> Dict[str, Dict[str, float]]:
        """Per-phase stay duration statistics (count, mean, max) in days."""
        now = now or self._clock.now()
        durations: Dict[str, List[float]] = {}
        for instance in self._manager.instances(model_uri=model_uri):
            for visit in instance.visits:
                durations.setdefault(visit.phase_name, []).append(visit.duration_days(now))
        statistics = {}
        for phase_name, values in durations.items():
            statistics[phase_name] = {
                "count": float(len(values)),
                "mean_days": sum(values) / len(values),
                "max_days": max(values),
            }
        return statistics

    def completion_rate(self, model_uri: str = None) -> float:
        """Fraction of instances that reached an end phase (index counts)."""
        if model_uri is None:
            counts = self._manager.status_distribution()
            total = sum(counts.values())
            if not total:
                return 0.0
            return counts.get(InstanceStatus.COMPLETED, 0) / total
        instances = self._manager.instances(model_uri=model_uri)
        if not instances:
            return 0.0
        completed = sum(1 for instance in instances if instance.is_completed)
        return completed / len(instances)

    # --------------------------------------------------------------------- text
    def render_text(self, model_uri: str = None, now: datetime = None) -> str:
        """Plain-text cockpit view (also used by the examples' console output)."""
        now = now or self._clock.now()
        rows = self.status_table(model_uri=model_uri, now=now)
        summary = self.portfolio_summary(model_uri=model_uri, now=now)
        lines = [
            "Portfolio: {} artifacts — {} active, {} completed, {} not started, {} late".format(
                summary.total, summary.active, summary.completed, summary.not_started,
                summary.late),
            "-" * 78,
        ]
        for row in rows:
            marker = "LATE" if row.is_late else ("DONE" if row.status == "completed" else "    ")
            lines.append(
                "{:4s} {:<32s} {:<18s} {:>6.1f}d in phase  owner={}".format(
                    marker, row.resource_name[:32], (row.phase_name or "-")[:18],
                    row.days_in_phase, row.owner)
            )
        return "\n".join(lines)
