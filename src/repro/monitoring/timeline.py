"""Per-instance timelines.

The monitoring interface shows "status and history of the resources under her
responsibility" (§I).  A timeline interleaves phase visits, action outcomes
and annotations for one instance, ordered by time — the data behind a history
widget or a Gantt-like rendering.
"""

from __future__ import annotations

from dataclasses import dataclass
from datetime import datetime
from typing import Dict, List, Optional

from ..runtime.instance import LifecycleInstance


@dataclass
class TimelineEntry:
    """One item of an instance timeline."""

    timestamp: datetime
    kind: str            # phase_entered | phase_left | action | annotation | completed
    title: str
    detail: str = ""
    phase_id: Optional[str] = None

    def to_dict(self) -> Dict[str, object]:
        return {
            "timestamp": self.timestamp.isoformat(),
            "kind": self.kind,
            "title": self.title,
            "detail": self.detail,
            "phase_id": self.phase_id,
        }


def instance_timeline(instance: LifecycleInstance) -> List[TimelineEntry]:
    """Build the ordered timeline of one lifecycle instance."""
    entries: List[TimelineEntry] = []

    for visit in instance.visits:
        marker = "" if visit.followed_model else " (deviation)"
        entries.append(TimelineEntry(
            timestamp=visit.entered_at,
            kind="phase_entered",
            title="Entered {}{}".format(visit.phase_name, marker),
            detail="by {}".format(visit.entered_by),
            phase_id=visit.phase_id,
        ))
        for invocation in visit.invocations:
            timestamp = invocation.finished_at or invocation.started_at or visit.entered_at
            outcome = invocation.status.value
            detail = invocation.error if invocation.error else ""
            entries.append(TimelineEntry(
                timestamp=timestamp,
                kind="action",
                title="{} — {}".format(invocation.action_name, outcome),
                detail=detail,
                phase_id=visit.phase_id,
            ))
        if visit.left_at is not None:
            entries.append(TimelineEntry(
                timestamp=visit.left_at,
                kind="phase_left",
                title="Left {}".format(visit.phase_name),
                phase_id=visit.phase_id,
            ))

    for annotation in instance.annotations:
        entries.append(TimelineEntry(
            timestamp=annotation.created_at,
            kind="annotation",
            title="Note by {}".format(annotation.author),
            detail=annotation.text,
            phase_id=annotation.phase_id,
        ))

    if instance.completed_at is not None:
        entries.append(TimelineEntry(
            timestamp=instance.completed_at,
            kind="completed",
            title="Lifecycle completed",
            phase_id=instance.current_phase_id,
        ))

    entries.sort(key=lambda entry: (entry.timestamp, _kind_rank(entry.kind)))
    return entries


def _kind_rank(kind: str) -> int:
    order = {"phase_left": 0, "phase_entered": 1, "action": 2, "annotation": 3, "completed": 4}
    return order.get(kind, 5)
