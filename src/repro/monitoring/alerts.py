"""Monitoring alerts.

Condenses the cockpit's "particular attention to delays" requirement into a
list of actionable alerts: overdue phases, failed actions, unusual numbers of
deviations, and instances stuck for a long time in a non-terminal phase.
"""

from __future__ import annotations

from dataclasses import dataclass
from datetime import datetime
from enum import Enum
from typing import Dict, List, Optional

from ..runtime.manager import LifecycleManager


class AlertSeverity(str, Enum):
    INFO = "info"
    WARNING = "warning"
    CRITICAL = "critical"


@dataclass
class Alert:
    """One monitoring alert about one instance."""

    severity: AlertSeverity
    instance_id: str
    resource_name: str
    message: str
    phase_id: Optional[str] = None

    def to_dict(self) -> Dict[str, str]:
        return {
            "severity": self.severity.value,
            "instance_id": self.instance_id,
            "resource_name": self.resource_name,
            "message": self.message,
            "phase_id": self.phase_id or "",
        }


def collect_alerts(manager: LifecycleManager, now: datetime = None,
                   stuck_after_days: float = 30.0,
                   deviation_threshold: int = 2) -> List[Alert]:
    """Scan every instance and produce the current alert list.

    Args:
        manager: the lifecycle manager whose instances are scanned.
        now: evaluation time (defaults to the manager clock).
        stuck_after_days: flag open phases older than this even without a
            deadline.
        deviation_threshold: flag instances with at least this many off-model
            moves.
    """
    now = now or manager.clock.now()
    alerts: List[Alert] = []
    for instance in manager.instances():
        resource_name = instance.resource.display_name
        visit = instance.current_visit()
        phase = instance.current_phase()

        if phase is not None and phase.deadline is not None and visit is not None:
            overdue = phase.deadline.overdue_by(visit.entered_at, now)
            overdue_days = overdue.total_seconds() / 86400.0
            if overdue_days > 0:
                severity = AlertSeverity.CRITICAL if overdue_days > 7 else AlertSeverity.WARNING
                alerts.append(Alert(
                    severity=severity,
                    instance_id=instance.instance_id,
                    resource_name=resource_name,
                    message="phase {!r} overdue by {:.1f} days".format(phase.name, overdue_days),
                    phase_id=phase.phase_id,
                ))

        if visit is not None and visit.is_open and visit.duration_days(now) > stuck_after_days:
            alerts.append(Alert(
                severity=AlertSeverity.WARNING,
                instance_id=instance.instance_id,
                resource_name=resource_name,
                message="no progress for {:.0f} days in phase {!r}".format(
                    visit.duration_days(now), visit.phase_name),
                phase_id=visit.phase_id,
            ))

        failed = instance.failed_invocations()
        if failed:
            alerts.append(Alert(
                severity=AlertSeverity.WARNING,
                instance_id=instance.instance_id,
                resource_name=resource_name,
                message="{} action(s) failed (latest: {})".format(
                    len(failed), failed[-1].action_name),
                phase_id=instance.current_phase_id,
            ))

        deviations = instance.deviations()
        if len(deviations) >= deviation_threshold:
            alerts.append(Alert(
                severity=AlertSeverity.INFO,
                instance_id=instance.instance_id,
                resource_name=resource_name,
                message="{} off-model moves recorded".format(len(deviations)),
                phase_id=instance.current_phase_id,
            ))

    severity_order = {AlertSeverity.CRITICAL: 0, AlertSeverity.WARNING: 1, AlertSeverity.INFO: 2}
    alerts.sort(key=lambda alert: (severity_order[alert.severity], alert.resource_name))
    return alerts
