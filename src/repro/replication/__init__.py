"""Replication: journal streaming, warm standbys, read replicas, failover.

The durable runtime (:mod:`repro.persistence`) made one process
restartable; this package makes the *deployment* survive losing that
process — and multiplies read throughput on the way:

* :mod:`~repro.replication.stream` — the journal as a resumable,
  rotation-safe record stream: per-segment cursors, snapshot bootstrap,
  typed staleness (:class:`~repro.errors.JournalTruncatedError`), and the
  log-shipping :class:`JournalShippingSource` that keeps working after the
  primary process dies;
* :mod:`~repro.replication.primary` — :class:`ReplicationPrimary`, the
  live primary's streaming endpoint with follower-lag tracking;
* :mod:`~repro.replication.replica` — :class:`ReadReplica`, a complete
  read-only service kept continuously in sync through the recovery
  reducer, serving the v2 read surface, promotable to primary;
* :mod:`~repro.replication.httpsource` — :class:`HttpReplicationSource`,
  the same stream consumed over the primary's v2 HTTP surface (bootstrap
  route + long-poll stream route), so followers run off-host with nothing
  shared but a TCP route.

Typical wiring (see ``docs/REPLICATION.md`` and
``examples/replicated_service.py``)::

    config = PersistenceConfig("/var/lib/gelee", backend="sqlite")
    primary = GeleeService(shard_count=16, persistence=config)
    ReplicationPrimary(primary)                      # streaming endpoint

    replica = ReadReplica(JournalShippingSource(config), shard_count=16,
                          primary_hint="https://gelee-primary:8080")
    replica.sync()                                   # bootstrap + catch up
    follower = StreamFollower(replica).start()       # push-driven tailing

    # primary dies →
    follower.stop()
    replica.promote()                                # drain, wake, go writable
"""

from .httpsource import HttpReplicationSource
from .primary import ReplicationPrimary
from .replica import ReadReplica, StreamFollower
from .stream import (
    DEFAULT_BATCH_LIMIT,
    BootstrapPayload,
    JournalShippingSource,
    ReplicationSource,
    StreamBatch,
)

__all__ = [
    "DEFAULT_BATCH_LIMIT",
    "BootstrapPayload",
    "HttpReplicationSource",
    "JournalShippingSource",
    "ReadReplica",
    "ReplicationPrimary",
    "ReplicationSource",
    "StreamBatch",
    "StreamFollower",
]
