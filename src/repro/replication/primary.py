"""The primary side of replication: serve the journal stream, track followers.

:class:`ReplicationPrimary` attaches to a durable
:class:`~repro.service.api.GeleeService` (one with a
:class:`~repro.persistence.PersistenceCoordinator`) and exposes its journal
as a :class:`~repro.replication.stream.ReplicationSource`: snapshot
bootstrap for brand-new followers, resumable batched reads for streaming
ones.  Nothing about the primary's write path changes — the stream is read
straight off the same segments the coordinator appends to, under the
journal's own lock discipline.

Follower cursors are remembered per ``follower_id`` (replicas send theirs
on every poll), so ``GET /v2/runtime/replication`` on the primary answers
the operational question "how far behind is each standby?" without asking
the standbys.
"""

from __future__ import annotations

import threading
from typing import Any, Dict, List

from ..errors import ReplicationError
from .stream import (
    DEFAULT_BATCH_LIMIT,
    BootstrapPayload,
    ReplicationSource,
    StreamBatch,
)


class ReplicationPrimary(ReplicationSource):
    """A live primary's in-process streaming endpoint."""

    def __init__(self, service):
        if service.persistence is None:
            raise ReplicationError(
                "replication needs a durable primary; construct the service "
                "with persistence=PersistenceConfig(...)")
        if service.read_only:
            raise ReplicationError("a read replica cannot act as a primary")
        self._service = service
        self._coordinator = service.persistence
        #: follower id -> last observed cursor + lag.
        self._followers: Dict[str, Dict[str, Any]] = {}
        self._lock = threading.Lock()
        service.replication = self

    # ------------------------------------------------------------------ source
    def bootstrap(self) -> BootstrapPayload:
        """Snapshot shipping for a brand-new follower.

        Uses whatever snapshot exists; without one (young deployment, or a
        memory store that never publishes manifests) the payload is empty
        and the follower replays the journal from sequence 0 — the journal
        is never truncated before a manifest exists, so that is complete.
        """
        manifest = self._coordinator.snapshots.latest()
        return BootstrapPayload(manifest=manifest,
                                documents=self._coordinator.store.all())

    def read_batch(self, after_seq: int, limit: int = None,
                   follower_id: str = None) -> StreamBatch:
        limit = limit or DEFAULT_BATCH_LIMIT
        journal = self._coordinator.journal
        records = []
        for record in journal.read(after_seq=after_seq, strict=True):
            records.append(record)
            if len(records) >= limit:
                break
        next_seq = records[-1].seq if records else after_seq
        head = max(next_seq, journal.last_seq)
        if follower_id:
            with self._lock:
                self._followers[follower_id] = {
                    "acked_seq": after_seq,
                    "streamed_seq": next_seq,
                    "lag_records": max(0, head - next_seq),
                    "last_poll_at": self._service.manager.clock.now().isoformat(),
                }
        return StreamBatch(records=records, next_seq=next_seq, head_seq=head)

    def head_seq(self) -> int:
        return self._coordinator.journal.last_seq

    def wait_for(self, seq: int, timeout: float = None) -> int:
        """Push, not poll: park on the journal's append condition.

        Every :meth:`~repro.persistence.journal.Journal.append` notifies
        this wait, so an in-process follower (or a long-polling
        ``GET /v2/runtime/replication/stream`` request) observes new
        records with condition-variable latency — microseconds after the
        primary's write, instead of a follower poll interval later.
        """
        return self._coordinator.journal.wait_for_seq(seq, timeout=timeout)

    def describe(self) -> Dict[str, Any]:
        return {"type": "in-process",
                "directory": self._coordinator.journal.directory}

    # ------------------------------------------------------------------ status
    @property
    def role(self) -> str:
        return "primary"

    def follower_ids(self) -> List[str]:
        with self._lock:
            return sorted(self._followers)

    def status(self) -> Dict[str, Any]:
        """The ``GET /v2/runtime/replication`` body on the primary."""
        journal = self._coordinator.journal
        with self._lock:
            followers = {fid: dict(view) for fid, view in self._followers.items()}
        head = journal.last_seq
        for view in followers.values():
            # Lag against the *current* head, not the head at poll time.
            view["lag_records"] = max(0, head - view["streamed_seq"])
        return {
            "enabled": True,
            "role": "primary",
            "journal_seq": head,
            "first_available_seq": journal.first_available_seq(),
            "followers": followers,
            "max_follower_lag": max(
                (view["lag_records"] for view in followers.values()), default=0),
        }
