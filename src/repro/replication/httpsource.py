"""HTTP replication source: run a follower off-host over the v2 wire.

:class:`JournalShippingSource` needs the primary's persistence directory on
a shared filesystem; :class:`~repro.replication.primary.ReplicationPrimary`
needs the primary *in the same process*.  :class:`HttpReplicationSource`
removes both constraints: it speaks the primary's own admin surface —
``GET /v2/runtime/replication/bootstrap`` for the snapshot-plus-documents
payload and ``GET /v2/runtime/replication/stream`` for batches — so a
:class:`~repro.replication.ReadReplica` can tail a primary on another
machine with nothing shared but a TCP route.

Latency comes from the stream route's long-poll half: :meth:`wait_for`
issues ``wait_timeout`` requests that park on the primary's journal-append
notification, so a caught-up follower sees new records within notification
latency, not a poll interval.  The batch such a wait returns is cached and
handed to the next :meth:`read_batch` call for the same cursor — the
replica's wait-then-read loop costs one round trip per batch, not two.

Error mapping keeps the follower's recovery semantics intact across the
wire: a ``JOURNAL_TRUNCATED`` envelope becomes the typed, resumable
:class:`~repro.errors.JournalTruncatedError` (the replica re-bootstraps),
and transport failures become :class:`~repro.errors.StorageError` (the
replica keeps retrying, and a promotion attempt treats the primary as
unreachable rather than corrupt).
"""

from __future__ import annotations

import time
from typing import Any, Dict, Optional

from ..errors import JournalTruncatedError, StorageError
from .stream import BootstrapPayload, ReplicationSource, StreamBatch

#: One long-poll slice.  Kept under the server's
#: ``REPLICATION_STREAM_MAX_WAIT`` (30s) so a slice is never silently
#: clipped server-side; :meth:`HttpReplicationSource.wait_for` loops slices
#: until its own deadline.
LONG_POLL_SLICE = 25.0


class HttpReplicationSource(ReplicationSource):
    """Stream a remote primary's journal over the v2 HTTP API.

    ``client`` may be any :class:`~repro.client.GeleeClient` (useful for
    in-process tests via ``GeleeClient.in_process``); with ``host``/``port``
    one is built over the HTTP transport.  ``follower_id`` is attributed on
    every stream request, so the primary's follower table shows this
    replica's cursor and lag like any in-process follower.
    """

    def __init__(self, host: str = None, port: int = None, client=None,
                 follower_id: str = None, timeout: float = None):
        if client is None:
            if host is None or port is None:
                raise StorageError(
                    "HttpReplicationSource needs host and port (or a client)")
            from ..client.gelee import GeleeClient

            # The transport timeout must outlive a full long-poll slice.
            client = GeleeClient.connect(
                host, port, timeout=timeout or LONG_POLL_SLICE + 10.0)
        self._client = client
        self._follower_id = follower_id
        self._endpoint = ("{}:{}".format(host, port)
                          if host is not None else "in-process")
        self._last_head = 0
        self._cached: Optional[StreamBatch] = None
        self._cached_after = -1
        self._requests = 0
        self._long_polls = 0
        self._cache_hits = 0

    # ------------------------------------------------------------- wire calls
    def _stream(self, after_seq: int, limit: int = None,
                wait_timeout: float = None) -> StreamBatch:
        from ..client.gelee import GeleeApiError

        self._requests += 1
        try:
            data = self._client.replication_stream(
                after_seq=after_seq, limit=limit, wait_timeout=wait_timeout,
                follower_id=self._follower_id)
        except GeleeApiError as exc:
            if exc.code == "JOURNAL_TRUNCATED":
                oldest = int(exc.details.get("oldest_available_seq", 0))
                raise JournalTruncatedError(str(exc),
                                            oldest_available=oldest) from exc
            raise StorageError(
                "replication stream request failed: {}".format(exc)) from exc
        except (JournalTruncatedError, StorageError):
            raise
        except OSError as exc:
            raise StorageError(
                "primary unreachable at {}: {}".format(self._endpoint,
                                                       exc)) from exc
        batch = StreamBatch.from_dict(data)
        self._last_head = max(self._last_head, batch.head_seq)
        return batch

    # --------------------------------------------------------------- protocol
    def bootstrap(self) -> BootstrapPayload:
        from ..client.gelee import GeleeApiError

        self._requests += 1
        try:
            data = self._client.replication_bootstrap()
        except GeleeApiError as exc:
            raise StorageError(
                "replication bootstrap request failed: {}".format(exc)) from exc
        except OSError as exc:
            raise StorageError(
                "primary unreachable at {}: {}".format(self._endpoint,
                                                       exc)) from exc
        return BootstrapPayload.from_dict(data)

    def read_batch(self, after_seq: int, limit: int = None,
                   follower_id: str = None) -> StreamBatch:
        cached, self._cached = self._cached, None
        if cached is not None and self._cached_after == after_seq:
            # A long-poll already fetched exactly this batch — serve it
            # without a second round trip.
            self._cache_hits += 1
            return cached
        return self._stream(after_seq, limit=limit)

    def wait_for(self, seq: int, timeout: float = None) -> int:
        """Long-poll the primary until its head reaches ``seq``.

        Each slice parks server-side on the journal-append notification; a
        slice that returns records caches them for the follow-up
        :meth:`read_batch` at the same cursor.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            remaining = (None if deadline is None
                         else max(0.0, deadline - time.monotonic()))
            slice_wait = LONG_POLL_SLICE
            if remaining is not None:
                slice_wait = min(slice_wait, remaining)
            self._long_polls += 1
            batch = self._stream(seq - 1, wait_timeout=slice_wait)
            if batch.count:
                self._cached = batch
                self._cached_after = seq - 1
            if batch.head_seq >= seq:
                return batch.head_seq
            if deadline is not None and time.monotonic() >= deadline:
                return batch.head_seq

    def head_seq(self) -> int:
        batch = self._stream(self._last_head, limit=1)
        return batch.head_seq

    def describe(self) -> Dict[str, Any]:
        return {
            "type": "http",
            "endpoint": self._endpoint,
            "follower_id": self._follower_id,
            "requests": self._requests,
            "long_polls": self._long_polls,
            "cache_hits": self._cache_hits,
            "last_head": self._last_head,
        }
