"""Journal streaming: the resumable record feed that replicas consume.

The write-ahead journal (:mod:`repro.persistence.journal`) already records
every kernel event with a dense, monotonically increasing sequence number —
which makes it a replication log for free.  This module defines the small
protocol a follower speaks against it:

* **bootstrap** — a :class:`BootstrapPayload`: the newest snapshot manifest
  plus one full state document per instance.  A new follower restores it
  exactly like crash recovery does, then streams from the manifest's
  ``journal_seq``.
* **stream** — :meth:`ReplicationSource.read_batch` returns a
  :class:`StreamBatch` of records with ``seq > after_seq``.  The cursor is
  the sequence number itself: segment file names encode their first
  sequence number, so a resume seeks directly to the right segment without
  scanning the ones before it.  Batches carry the journal head at read
  time, so the follower tracks ``(applied_seq, lag)`` continuously.
* **staleness** — rotation is safe for concurrent readers, and truncation
  is *detected*, never silently skipped: a cursor pointing into a
  truncated-away range raises the typed, resumable
  :class:`~repro.errors.JournalTruncatedError` (the follower re-bootstraps
  from the newest snapshot).

Two sources ship here and in :mod:`repro.replication.primary`:

* :class:`JournalShippingSource` — classic log shipping: the follower
  reads the primary's persistence directory (journal segments, snapshots,
  instance store) over a shared filesystem, never writing to it.  Because
  the files outlive the primary *process*, this source keeps working after
  the primary dies — which is exactly when a standby needs its final drain.
* :class:`~repro.replication.primary.ReplicationPrimary` — the in-process
  endpoint of a live primary service, which additionally tracks follower
  cursors for the admin surface.

Both batches and bootstrap payloads round-trip through plain dicts
(:meth:`StreamBatch.to_dict` / :meth:`BootstrapPayload.to_dict`), so a
wire transport can ship them without knowing their internals.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from ..persistence.coordinator import PersistenceConfig
from ..persistence.journal import (
    JournalRecord,
    scan_last_seq,
    scan_oldest_seq,
    scan_records,
)
from ..persistence.snapshot import SnapshotManifest

#: Records per stream batch unless the caller asks otherwise.
DEFAULT_BATCH_LIMIT = 512


@dataclass
class StreamBatch:
    """One slice of the journal stream, plus the head position it saw."""

    records: List[JournalRecord] = field(default_factory=list)
    #: The cursor after applying this batch (== the last record's seq, or
    #: the request's ``after_seq`` when the batch is empty).
    next_seq: int = 0
    #: The journal's newest sequence number at read time — the follower's
    #: lag is ``head_seq - next_seq``.
    head_seq: int = 0

    @property
    def count(self) -> int:
        return len(self.records)

    @property
    def caught_up(self) -> bool:
        """Whether applying this batch reaches the head seen at read time."""
        return self.next_seq >= self.head_seq

    def to_dict(self) -> Dict[str, Any]:
        return {
            "records": [record.to_dict() for record in self.records],
            "next_seq": self.next_seq,
            "head_seq": self.head_seq,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "StreamBatch":
        return cls(
            records=[JournalRecord.from_dict(item)
                     for item in data.get("records") or []],
            next_seq=int(data.get("next_seq", 0)),
            head_seq=int(data.get("head_seq", 0)),
        )


@dataclass
class BootstrapPayload:
    """Everything a brand-new follower needs before it can stream."""

    manifest: Optional[SnapshotManifest] = None
    #: Instance store documents (:func:`repro.persistence.store.document_for`
    #: shape); may cover sequence numbers *newer* than the manifest — each
    #: document's ``journal_seq`` makes replay skip what it already holds.
    documents: List[Dict[str, Any]] = field(default_factory=list)

    @property
    def base_seq(self) -> int:
        """The journal position streaming resumes from after restore."""
        return self.manifest.journal_seq if self.manifest is not None else 0

    def to_dict(self) -> Dict[str, Any]:
        return {
            "manifest": self.manifest.to_dict() if self.manifest else None,
            "documents": list(self.documents),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "BootstrapPayload":
        manifest = data.get("manifest")
        return cls(
            manifest=SnapshotManifest.from_dict(manifest) if manifest else None,
            documents=list(data.get("documents") or []),
        )


class ReplicationSource:
    """What a :class:`~repro.replication.ReadReplica` pulls from."""

    #: How often the fallback :meth:`wait_for` re-checks the head.  Sources
    #: with a real notification channel (the in-process
    #: :class:`~repro.replication.primary.ReplicationPrimary`) override
    #: :meth:`wait_for` entirely and never poll.
    wait_poll_interval = 0.005

    def bootstrap(self) -> BootstrapPayload:
        raise NotImplementedError

    def wait_for(self, seq: int, timeout: float = None) -> int:
        """Block until the journal head reaches ``seq``; returns the head.

        The long-poll half of push replication: a follower that is caught
        up parks here instead of hammering :meth:`read_batch` on a timer,
        so new records reach it within the source's notification latency
        rather than a poll interval.  Returns early (with the current,
        smaller head) when ``timeout`` elapses first.

        This base implementation polls :meth:`head_seq` at
        :attr:`wait_poll_interval` — the best a shared-filesystem source
        can do, and still an order of magnitude tighter than a typical
        follower poll loop.  In-process sources override it with a real
        condition-variable wait.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        head = self.head_seq()
        while head < seq:
            if deadline is not None and time.monotonic() >= deadline:
                break
            remaining = (None if deadline is None
                         else max(0.0, deadline - time.monotonic()))
            interval = self.wait_poll_interval
            if remaining is not None:
                interval = min(interval, remaining)
            time.sleep(interval)
            head = self.head_seq()
        return head

    def read_batch(self, after_seq: int, limit: int = None,
                   follower_id: str = None) -> StreamBatch:
        """Records with ``seq > after_seq`` (dense, oldest first).

        Raises :class:`~repro.errors.JournalTruncatedError` when the cursor
        predates the retained journal window — resumable by
        re-bootstrapping.  ``follower_id`` lets sources that track their
        followers attribute the cursor.
        """
        raise NotImplementedError

    def head_seq(self) -> int:
        raise NotImplementedError

    def describe(self) -> Dict[str, Any]:
        raise NotImplementedError


class JournalShippingSource(ReplicationSource):
    """Log shipping: stream a primary's persistence directory read-only.

    The follower observes the same directory tree the primary's
    :class:`~repro.persistence.PersistenceCoordinator` writes — typically a
    shared or replicated filesystem.  All reads are repair-free (torn tails
    are tolerated, never truncated: repair belongs to the writing process),
    so any number of followers can tail one primary safely.
    """

    def __init__(self, config):
        """``config`` is a :class:`~repro.persistence.PersistenceConfig` or
        the primary's persistence directory path."""
        if isinstance(config, str):
            config = PersistenceConfig(config)
        self._config = config

    @property
    def config(self) -> PersistenceConfig:
        return self._config

    def bootstrap(self) -> BootstrapPayload:
        manifest = self._config.open_snapshots().latest()
        documents: List[Dict[str, Any]] = []
        # The store can hold documents even when no manifest exists (a crash
        # between the store flush and the manifest publish); their embedded
        # journal_seq keeps replay idempotent either way.
        store = self._config.open_store()
        try:
            documents = store.all()
        finally:
            store.close()
        return BootstrapPayload(manifest=manifest, documents=documents)

    def read_batch(self, after_seq: int, limit: int = None,
                   follower_id: str = None) -> StreamBatch:
        limit = limit or DEFAULT_BATCH_LIMIT
        directory = self._config.journal_directory
        records: List[JournalRecord] = []
        overflow = None
        for record in scan_records(directory, after_seq=after_seq, strict=True):
            if len(records) >= limit:
                overflow = record
                break
            records.append(record)
        next_seq = records[-1].seq if records else after_seq
        if overflow is not None:
            # The batch is full and more records provably exist: report the
            # overflow record as a *lower bound* on the head instead of
            # paying a full tail-segment scan per batch — the caller keeps
            # draining, and the final (under-limit) batch scans exactly.
            head = overflow.seq
        else:
            head = max(next_seq, scan_last_seq(directory))
        return StreamBatch(records=records, next_seq=next_seq, head_seq=head)

    def head_seq(self) -> int:
        return scan_last_seq(self._config.journal_directory)

    def oldest_seq(self) -> int:
        return scan_oldest_seq(self._config.journal_directory)

    def describe(self) -> Dict[str, Any]:
        return {
            "type": "journal-shipping",
            "directory": os.path.abspath(self._config.directory),
            "backend": self._config.backend,
        }
