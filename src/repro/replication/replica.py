"""Warm standbys and read replicas: continuously apply the primary's stream.

:class:`ReadReplica` owns a complete, *read-only*
:class:`~repro.service.api.GeleeService` — sharded runtime, execution log,
timer service, monitoring cockpit, v2 routes — and keeps it in sync with a
primary by pulling the journal stream through the recovery layer's
side-effect-free :class:`~repro.persistence.recovery.JournalReplayer`:

* **bootstrap** once from the primary's newest snapshot (manifest + instance
  documents), exactly like crash recovery restores a local snapshot;
* **sync** repeatedly: each :meth:`sync` drains stream batches into the
  replayer, which reduces records into instances, the execution log and the
  timer set without publishing a single event — so the replica's own
  scheduler and any subscribers observe nothing until promotion;
* **serve reads** meanwhile: v2 GET/listing/monitoring routes answer from
  the replica's indexes; every mutation is rejected with the typed
  ``REPLICA_READ_ONLY`` 409 carrying a hint where the primary lives;
* **promote** on failover: :meth:`promote` drains the remaining stream
  (loss is bounded to whatever the dead primary never wrote), wakes the
  dormant scheduler (deadlines/retries re-arm from the replicated timer
  set via ``resync_after_recovery``), and flips the runtime writable.

The replica tracks ``(applied_seq, lag)`` continuously: every batch carries
the journal head at read time, and :meth:`status` — also served as
``GET /v2/runtime/replication`` — reports both, plus a wall-clock lag
estimate from the newest applied record's event timestamp.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Dict, Optional

from ..errors import JournalTruncatedError, ReplicationError, StorageError
from ..identifiers import new_id
from ..persistence.recovery import JournalReplayer, restore_snapshot
from ..telemetry import (DEFAULT_SIZE_BUCKETS, SpanContext, TraceContext,
                         get_registry, span_scope)
from .stream import ReplicationSource


class ReadReplica:
    """A warm standby serving reads, one :meth:`promote` away from primary."""

    def __init__(self, source: ReplicationSource, shard_count: int = None,
                 clock=None, environment=None, scheduler=None,
                 replica_id: str = None, primary_hint: str = None,
                 batch_limit: int = None):
        """Build the standby runtime and wire it to ``source``.

        ``shard_count`` must match the primary's so instance ids hash to
        the same shards.  ``primary_hint`` (a URL, host:port or deployment
        name) is echoed in every 409 a rejected write receives.  The
        replica is not bootstrapped yet — the first :meth:`sync` (or an
        explicit :meth:`bootstrap`) does that.
        """
        from ..service.api import GeleeService

        self._source = source
        self.replica_id = replica_id or new_id("replica")
        self.service = GeleeService(
            environment=environment, clock=clock, shard_count=shard_count,
            scheduler=scheduler, read_only=True, primary_hint=primary_hint)
        self.service.replication = self
        self._replayer = JournalReplayer(
            self.service.manager, self.service.execution_log,
            timers=self.service.scheduler.timers)
        self._batch_limit = batch_limit
        self._head_seq = 0
        self._batches_applied = 0
        self._syncs = 0
        self._last_applied_event_at: Optional[str] = None
        self._bootstrapped = False
        self._promoted = False
        self._promotion_report: Optional[Dict[str, Any]] = None
        registry = get_registry()
        self._metric_batch = registry.histogram(
            "gelee_replication_batch_records",
            "Records per applied replication batch.",
            buckets=DEFAULT_SIZE_BUCKETS)
        self._metric_applied = registry.counter(
            "gelee_replication_records_applied_total",
            "Stream records applied on this replica.")
        self._metric_lag_records = registry.gauge(
            "gelee_replication_lag_records",
            "Known primary head minus the newest applied sequence number.")
        self._metric_lag_seconds = registry.gauge(
            "gelee_replication_lag_seconds",
            "Wall-clock staleness estimate of the newest applied record.")

    # ---------------------------------------------------------------- plumbing
    @property
    def manager(self):
        return self.service.manager

    @property
    def applied_seq(self) -> int:
        """The newest journal sequence number applied so far."""
        return self._replayer.applied_seq

    @property
    def lag_records(self) -> int:
        """How many records the primary's known head is ahead of us."""
        return max(0, self._head_seq - self._replayer.applied_seq)

    @property
    def is_promoted(self) -> bool:
        return self._promoted

    def router(self):
        """A REST router over this replica (reads served, writes 409)."""
        from ..service.rest import RestRouter

        return RestRouter(service=self.service)

    # --------------------------------------------------------------- bootstrap
    def bootstrap(self) -> Dict[str, Any]:
        """Restore the primary's newest snapshot into the empty runtime."""
        if self._bootstrapped:
            raise ReplicationError(
                "replica {} is already bootstrapped".format(self.replica_id))
        payload = self._source.bootstrap()
        base_seq = restore_snapshot(
            self.service.manager, self.service.execution_log,
            payload.manifest, payload.documents,
            timers=self.service.scheduler.timers, replayer=self._replayer)
        self._head_seq = max(self._head_seq, base_seq)
        self._bootstrapped = True
        report = self._replayer.report
        return {
            "snapshot_seq": base_seq,
            "models_restored": report.models_restored,
            "instances_restored": report.instances_restored,
            "timers_restored": report.timers_restored,
            "log_entries_restored": report.log_entries_restored,
        }

    # -------------------------------------------------------------------- sync
    def sync(self, max_batches: int = None,
             wait_timeout: float = None) -> Dict[str, Any]:
        """Pull and apply stream batches until caught up (or ``max_batches``).

        Bootstraps on first use.  With ``wait_timeout``, a caught-up
        replica first parks on :meth:`ReplicationSource.wait_for` until the
        primary appends something new (or the timeout elapses) — the
        long-poll half of push replication, which keeps apply lag at
        notification latency instead of a poll interval.  Raises
        :class:`~repro.errors.JournalTruncatedError` when the cursor fell
        behind the primary's retention window — this replica can no longer
        catch up and must be rebuilt from a fresh bootstrap.
        """
        if self._promoted:
            raise ReplicationError(
                "replica {} was promoted; it no longer consumes the "
                "stream".format(self.replica_id))
        if not self._bootstrapped:
            self.bootstrap()
        if wait_timeout is not None:
            head = self._source.wait_for(
                self._replayer.applied_seq + 1, timeout=wait_timeout)
            self._head_seq = max(self._head_seq, head)
        applied = 0
        batches = 0
        while max_batches is None or batches < max_batches:
            batch = self._source.read_batch(
                self._replayer.applied_seq, limit=self._batch_limit,
                follower_id=self.replica_id)
            self._head_seq = max(self._head_seq, batch.head_seq)
            for record in batch.records:
                # Records stamped with the gateway's origin_request_id get
                # their apply recorded as a span *in that trace*, so the
                # request's timeline extends onto the follower (and stays
                # queryable there after promotion).
                origin = record.payload.get("origin_request_id")
                if origin is not None:
                    with span_scope("replication.apply",
                                    context=SpanContext(origin),
                                    seq=record.seq, kind=record.kind,
                                    replica_id=self.replica_id):
                        self._replayer.apply(record)
                else:
                    self._replayer.apply(record)
                self._last_applied_event_at = record.timestamp
            applied += batch.count
            if batch.count:
                batches += 1
                self._batches_applied += 1
                self._metric_batch.observe(batch.count)
                self._metric_applied.inc(batch.count)
            if batch.caught_up or not batch.count:
                break
        self._syncs += 1
        self._metric_lag_records.set(self.lag_records)
        lag_seconds = self._lag_seconds()
        if lag_seconds is not None:
            self._metric_lag_seconds.set(lag_seconds)
        return {
            "applied": applied,
            "batches": batches,
            "applied_seq": self._replayer.applied_seq,
            "head_seq": self._head_seq,
            "lag_records": self.lag_records,
        }

    # --------------------------------------------------------------- promotion
    def promote(self, final_sync: bool = True) -> Dict[str, Any]:
        """Seal replay and turn this standby into a writable primary.

        The promotion sequence: (1) a final drain of the stream picks up
        everything the (possibly dead) primary made durable — with a
        journal-shipping source that works even after the primary process
        is gone, so loss is bounded to the un-streamed tail that never
        reached the journal; (2) the dormant scheduler wakes and
        ``resync_after_recovery`` rebuilds retry/backoff state from the
        replicated timer set, so deadlines and retries fire from exactly
        where the primary left them; (3) the runtime flips writable and the
        read-only guard stands down.  Promotion is once: a second call
        raises :class:`~repro.errors.ReplicationError`.
        """
        if self._promoted:
            raise ReplicationError(
                "replica {} is already promoted".format(self.replica_id))
        with TraceContext.ensure("promote"), \
                span_scope("replication.promote", replica_id=self.replica_id):
            return self._promote(final_sync)

    def _promote(self, final_sync: bool) -> Dict[str, Any]:
        started = time.perf_counter()
        drained = 0
        final_sync_error = None
        if final_sync:
            if not self._bootstrapped:
                # A cold promote (replica built over a dead primary's
                # directory, never synced): bootstrap AND drain — with
                # nothing streamed yet there is no partial state worth
                # promoting on, so source errors propagate.
                drained = self.sync()["applied"]
            else:
                try:
                    drained = self.sync()["applied"]
                except JournalTruncatedError:
                    # A gap means records this replica never saw are gone
                    # for good; promoting would silently serve a hole in
                    # history.
                    raise
                except StorageError as exc:
                    # The source is unreachable (primary host gone with its
                    # disk): promote on what was already streamed — that is
                    # the failover contract — but say so.
                    final_sync_error = str(exc)
        # Invocations the dead primary submitted but never completed were
        # replicated as RUNNING; no completion callback will ever arrive on
        # this node, so resolve them to a deterministic FAILED before the
        # scheduler wakes — its retry policies then treat them like any
        # other failure and can re-invoke.
        from ..persistence.recovery import fail_interrupted_invocations

        interrupted = len(fail_interrupted_invocations(
            self.service.manager, report=self._replayer.report))
        scheduler = self.service.scheduler
        scheduler.dormant = False
        retry_states = scheduler.resync_after_recovery()
        self.service.manager.set_read_only(False)
        self.service.read_only = False
        self.service.primary_hint = None
        self._promoted = True
        report = {
            "promoted": True,
            "replica_id": self.replica_id,
            "journal_seq": self._replayer.applied_seq,
            "records_drained": drained,
            "invocations_interrupted": self._replayer.report.invocations_interrupted,
            "instances_with_interrupted_invocations": interrupted,
            "retry_states_rebuilt": retry_states,
            "pending_timers": scheduler.timers.pending_count,
            "instances": self.service.manager.instance_count(),
            "warnings": list(self._replayer.report.warnings),
            "duration_ms": round((time.perf_counter() - started) * 1000, 3),
        }
        if final_sync_error is not None:
            report["final_sync_error"] = final_sync_error
        self._promotion_report = report
        return dict(report)

    # ------------------------------------------------------------------ status
    @property
    def role(self) -> str:
        return "primary" if self._promoted else "replica"

    def status(self) -> Dict[str, Any]:
        """The ``GET /v2/runtime/replication`` body on this node."""
        report = self._replayer.report
        status: Dict[str, Any] = {
            "enabled": True,
            "role": self.role,
            "replica_id": self.replica_id,
            "bootstrapped": self._bootstrapped,
            "promoted": self._promoted,
            "read_only": self.service.read_only,
            "applied_seq": self._replayer.applied_seq,
            "head_seq": self._head_seq,
            "lag_records": self.lag_records,
            "lag_seconds": self._lag_seconds(),
            "last_applied_event_at": self._last_applied_event_at,
            "snapshot_seq": report.snapshot_seq,
            "records_applied": report.records_replayed,
            "records_skipped": report.records_skipped,
            "timer_records_applied": report.timer_records_replayed,
            "batches_applied": self._batches_applied,
            "syncs": self._syncs,
            "warnings": len(report.warnings),
            "instances": self.service.manager.instance_count(),
            "pending_timers": self.service.scheduler.timers.pending_count,
            "source": self._source.describe(),
        }
        if self._promotion_report is not None:
            status["promotion"] = dict(self._promotion_report)
        return status

    def _lag_seconds(self) -> Optional[float]:
        """Wall-clock staleness estimate from the newest applied record.

        Only meaningful when primary and replica share a clock domain (both
        wall-clock, or one simulated clock driving both); ``None`` when
        nothing was applied yet or the arithmetic is impossible.
        """
        if self._last_applied_event_at is None or self.lag_records == 0:
            return 0.0 if self._last_applied_event_at is not None else None
        try:
            from datetime import datetime

            applied_at = datetime.fromisoformat(self._last_applied_event_at)
            return max(0.0, (self.service.manager.clock.now() - applied_at)
                       .total_seconds())
        except (ValueError, TypeError):
            return None


class StreamFollower:
    """A background thread that keeps a :class:`ReadReplica` continuously
    synced through push/long-poll.

    The pre-push design ran :meth:`ReadReplica.sync` on a timer, so apply
    lag averaged half the poll interval.  The follower instead loops
    ``sync(wait_timeout=...)``: a caught-up replica parks inside the
    source's :meth:`~repro.replication.stream.ReplicationSource.wait_for`
    and is woken by the primary's journal append, so records land on the
    replica within notification latency.  ``wait_timeout`` is only the
    *re-arm* bound (how long one park lasts before the loop re-checks for
    shutdown), not the replication lag.
    """

    def __init__(self, replica: ReadReplica, wait_timeout: float = 1.0,
                 on_error=None):
        self._replica = replica
        self._wait_timeout = wait_timeout
        self._on_error = on_error
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self._syncs = 0
        self._records_applied = 0
        self._errors = 0
        self._last_error: Optional[str] = None

    def start(self) -> "StreamFollower":
        if self._thread is not None:
            raise ReplicationError("stream follower is already running")
        self._thread = threading.Thread(
            target=self._run, name="gelee-stream-follower", daemon=True)
        self._thread.start()
        return self

    def stop(self, timeout: float = 5.0) -> None:
        self._stop.set()
        thread = self._thread
        if thread is not None:
            thread.join(timeout)
        self._thread = None

    @property
    def running(self) -> bool:
        return self._thread is not None and self._thread.is_alive()

    def stats(self) -> Dict[str, Any]:
        return {
            "running": self.running,
            "syncs": self._syncs,
            "records_applied": self._records_applied,
            "errors": self._errors,
            "last_error": self._last_error,
            "wait_timeout": self._wait_timeout,
        }

    def _run(self) -> None:
        while not self._stop.is_set():
            try:
                result = self._replica.sync(wait_timeout=self._wait_timeout)
                self._syncs += 1
                self._records_applied += result["applied"]
            except ReplicationError:
                # Promotion raced the loop; the follower's job is done.
                break
            except Exception as exc:  # noqa: BLE001 - surfaced via stats()
                self._errors += 1
                self._last_error = str(exc)
                if self._on_error is not None:
                    self._on_error(exc)
                # Back off instead of spinning on a persistent failure.
                self._stop.wait(self._wait_timeout)
