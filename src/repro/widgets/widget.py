"""The integrated lifecycle execution widget (Fig. 4).

"Through widgets, users see the lifecycle and the resource they manage side
by side."  The widget view model combines:

* the lifecycle state (phases, current token position, suggested next moves),
* the resource rendering provided by the resource manager,
* the controls the viewing user is allowed to use, derived from the
  visibility rules ("different users could have different views of the same
  lifecycle").

The widget can also *act*: its ``advance``/``move_to``/``annotate`` methods
forward the owner's decisions to the lifecycle manager, which is exactly the
message flow of Fig. 2 (execution widgets send progression events to the
runtime module).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from ..accesscontrol.policy import AccessPolicy, VisibilityRules
from ..errors import PermissionDeniedError
from ..monitoring.timeline import instance_timeline
from ..runtime.manager import LifecycleManager


@dataclass
class WidgetViewModel:
    """Everything a widget rendering needs, already filtered per user."""

    instance_id: str
    lifecycle_name: str
    resource_title: str
    resource_uri: str
    resource_type: str
    status: str
    current_phase: Optional[str]
    current_phase_name: Optional[str]
    phases: List[Dict[str, Any]] = field(default_factory=list)
    suggested_next: List[Dict[str, str]] = field(default_factory=list)
    resource_state: Dict[str, Any] = field(default_factory=dict)
    history: List[Dict[str, Any]] = field(default_factory=list)
    annotations: List[Dict[str, Any]] = field(default_factory=list)
    controls_enabled: bool = False
    requires_authentication: bool = False
    viewer: Optional[str] = None

    def to_dict(self) -> Dict[str, Any]:
        return {
            "instance_id": self.instance_id,
            "lifecycle_name": self.lifecycle_name,
            "resource_title": self.resource_title,
            "resource_uri": self.resource_uri,
            "resource_type": self.resource_type,
            "status": self.status,
            "current_phase": self.current_phase,
            "current_phase_name": self.current_phase_name,
            "phases": list(self.phases),
            "suggested_next": list(self.suggested_next),
            "resource_state": dict(self.resource_state),
            "history": list(self.history),
            "annotations": list(self.annotations),
            "controls_enabled": self.controls_enabled,
            "requires_authentication": self.requires_authentication,
            "viewer": self.viewer,
        }


class LifecycleWidget:
    """Interactive widget bound to one lifecycle instance and one viewing user."""

    def __init__(self, manager: LifecycleManager, instance_id: str,
                 viewer: str = None, policy: AccessPolicy = None):
        self._manager = manager
        self._instance_id = instance_id
        self._viewer = viewer
        self._policy = policy

    @property
    def instance_id(self) -> str:
        return self._instance_id

    @property
    def viewer(self) -> Optional[str]:
        return self._viewer

    # ---------------------------------------------------------------- rendering
    def view_model(self) -> WidgetViewModel:
        """Build the per-user view model (the data behind Fig. 4)."""
        instance = self._manager.instance(self._instance_id)
        rules = VisibilityRules.for_user(self._policy, self._viewer, instance)

        if rules.requires_authentication:
            return WidgetViewModel(
                instance_id=instance.instance_id,
                lifecycle_name=instance.model.name,
                resource_title=instance.resource.display_name,
                resource_uri=instance.resource.uri,
                resource_type=instance.resource.resource_type,
                status=instance.status.value,
                current_phase=None,
                current_phase_name=None,
                requires_authentication=True,
                viewer=self._viewer,
            )

        resource_state: Dict[str, Any] = {}
        resource_title = instance.resource.display_name
        try:
            view = self._manager.environment.resource_manager.render(instance.resource)
            resource_state = view.state
            resource_title = view.title
        except Exception:  # noqa: BLE001 - the widget degrades gracefully
            resource_state = {"error": "resource not reachable"}

        phases = []
        for phase in instance.model.phases:
            phases.append({
                "phase_id": phase.phase_id,
                "name": phase.name,
                "terminal": phase.terminal,
                "current": phase.phase_id == instance.current_phase_id,
                "visited": instance.visit_count(phase.phase_id) > 0,
                "actions": [call.name or call.action_uri for call in phase.actions]
                if rules.show_actions else [],
            })

        suggested = [
            {"phase_id": phase.phase_id, "name": phase.name}
            for phase in instance.suggested_next_phases()
        ] if rules.show_controls else []

        history = [entry.to_dict() for entry in instance_timeline(instance)] \
            if rules.show_history else []
        annotations = [annotation.to_dict() for annotation in instance.annotations] \
            if rules.show_annotations else []

        current = instance.current_phase()
        return WidgetViewModel(
            instance_id=instance.instance_id,
            lifecycle_name=instance.model.name,
            resource_title=resource_title,
            resource_uri=instance.resource.uri,
            resource_type=instance.resource.resource_type,
            status=instance.status.value,
            current_phase=instance.current_phase_id,
            current_phase_name=current.name if current else None,
            phases=phases,
            suggested_next=suggested,
            resource_state=resource_state,
            history=history,
            annotations=annotations,
            controls_enabled=rules.show_controls,
            viewer=self._viewer,
        )

    # ------------------------------------------------------------------ actions
    def start(self, phase_id: str = None, **call_parameters):
        """Start the lifecycle (token onto the initial phase)."""
        self._require_controls()
        return self._manager.start(self._instance_id, actor=self._viewer, phase_id=phase_id,
                                   call_parameters=call_parameters or None)

    def advance(self, to_phase_id: str = None, annotation: str = None):
        """Move the token along the suggested flow."""
        self._require_controls()
        return self._manager.advance(self._instance_id, actor=self._viewer,
                                     to_phase_id=to_phase_id, annotation=annotation)

    def move_to(self, phase_id: str, annotation: str = None):
        """Move the token anywhere (deviations allowed, per the paper)."""
        self._require_controls()
        return self._manager.move_to(self._instance_id, actor=self._viewer,
                                     phase_id=phase_id, annotation=annotation)

    def annotate(self, text: str, kind: str = "note"):
        self._require_controls()
        return self._manager.annotate(self._instance_id, actor=self._viewer, text=text, kind=kind)

    # ------------------------------------------------------------------ internal
    def _require_controls(self) -> None:
        instance = self._manager.instance(self._instance_id)
        rules = VisibilityRules.for_user(self._policy, self._viewer, instance)
        if not rules.show_controls:
            raise PermissionDeniedError(
                "user {!r} may not drive instance {!r} from this widget".format(
                    self._viewer, self._instance_id
                )
            )
