"""Pipes-style composition of widgets from resource feeds.

"Because of the added value of composing the services from different source,
we prepared our widgets to put in pipes (e.g. Yahoo Pipes).  For example,
users could feed our widgets with Google Docs feeds listing documents, and use
that list to reflect the lifecycle of those documents." (§V.C)

:class:`ResourceFeed` produces a list of resource entries from a managing
application (a "feed"); :func:`widgets_from_feed` matches each entry to the
lifecycle instances attached to its URI and yields a widget per match — a
dashboard built by piping a document listing into Gelee.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional

from ..accesscontrol.policy import AccessPolicy
from ..runtime.manager import LifecycleManager
from ..substrates.base import SimulatedApplication
from .widget import LifecycleWidget


@dataclass
class FeedEntry:
    """One item of a resource feed."""

    uri: str
    title: str
    resource_type: str

    def to_dict(self) -> Dict[str, str]:
        return {"uri": self.uri, "title": self.title, "resource_type": self.resource_type}


class ResourceFeed:
    """Lists the artifacts of one managing application as feed entries."""

    def __init__(self, application: SimulatedApplication, resource_type: str):
        self._application = application
        self._resource_type = resource_type

    def entries(self, predicate: Callable[[FeedEntry], bool] = None) -> List[FeedEntry]:
        entries = [
            FeedEntry(uri=artifact.uri, title=artifact.title,
                      resource_type=self._resource_type)
            for artifact in self._application.artifacts()
        ]
        if predicate is not None:
            entries = [entry for entry in entries if predicate(entry)]
        return entries


def widgets_from_feed(feed: ResourceFeed, manager: LifecycleManager,
                      viewer: str = None, policy: AccessPolicy = None,
                      include_unmanaged: bool = False) -> List[Dict[str, object]]:
    """Pipe a resource feed into lifecycle widgets.

    Returns one entry per feed item: the feed metadata plus a
    :class:`LifecycleWidget` for every lifecycle instance attached to the
    item's URI.  Items without instances are dropped unless
    ``include_unmanaged`` is set (then they appear with an empty widget list),
    which lets a dashboard also show unmanaged documents.
    """
    piped = []
    for entry in feed.entries():
        instances = manager.instances_for_resource(entry.uri)
        if not instances and not include_unmanaged:
            continue
        piped.append({
            "entry": entry,
            "widgets": [
                LifecycleWidget(manager, instance.instance_id, viewer=viewer, policy=policy)
                for instance in instances
            ],
        })
    return piped
