"""Widgets and UI view models (paper §V.C, Figs. 3 and 4).

Gelee's UI layer consists of the lifecycle designer, the monitoring cockpit
and the lifecycle *execution widgets* shown next to the resource they manage.
This package provides the programmatic equivalents: view models that capture
exactly what each user gets to see (per the visibility rules), plus HTML,
JSON and plain-text renderers.
"""

from .widget import LifecycleWidget, WidgetViewModel
from .designer import DesignerSession
from .renderer import render_widget_html, render_widget_text, render_designer_html
from .pipes import ResourceFeed, widgets_from_feed

__all__ = [
    "LifecycleWidget",
    "WidgetViewModel",
    "DesignerSession",
    "render_widget_html",
    "render_widget_text",
    "render_designer_html",
    "ResourceFeed",
    "widgets_from_feed",
]
