"""HTML and text renderers for widgets and the designer.

The paper's widgets are AJAX components; here the renderers emit small,
dependency-free HTML fragments (and plain text for terminals) from the view
models, so tests can assert on what each role actually sees.
"""

from __future__ import annotations

from html import escape
from typing import List

from .designer import DesignerViewModel
from .widget import WidgetViewModel


def render_widget_html(view: WidgetViewModel) -> str:
    """Render the integrated lifecycle + resource widget as an HTML fragment."""
    if view.requires_authentication:
        return (
            '<div class="gelee-widget locked">'
            "<p>Authentication required to view the lifecycle of {}.</p>"
            "</div>".format(escape(view.resource_title))
        )

    phase_items: List[str] = []
    for phase in view.phases:
        classes = ["phase"]
        if phase["current"]:
            classes.append("current")
        if phase.get("visited"):
            classes.append("visited")
        if phase.get("terminal"):
            classes.append("terminal")
        actions = ""
        if phase.get("actions"):
            actions = "<ul>{}</ul>".format(
                "".join("<li>{}</li>".format(escape(action)) for action in phase["actions"])
            )
        phase_items.append(
            '<li class="{}"><span>{}</span>{}</li>'.format(
                " ".join(classes), escape(phase["name"]), actions
            )
        )

    controls = ""
    if view.controls_enabled and view.suggested_next:
        buttons = "".join(
            '<button data-phase="{}">Move to {}</button>'.format(
                escape(item["phase_id"]), escape(item["name"])
            )
            for item in view.suggested_next
        )
        controls = '<div class="controls">{}</div>'.format(buttons)

    resource_rows = "".join(
        "<tr><th>{}</th><td>{}</td></tr>".format(escape(str(key)), escape(str(value)))
        for key, value in sorted(view.resource_state.items())
    )

    return (
        '<div class="gelee-widget">'
        '<div class="lifecycle-pane">'
        "<h3>{name}</h3>"
        '<p class="status">Status: {status} — current phase: {phase}</p>'
        '<ol class="phases">{phases}</ol>'
        "{controls}"
        "</div>"
        '<div class="resource-pane">'
        "<h3>{resource}</h3>"
        '<p class="type">{rtype}</p>'
        "<table>{rows}</table>"
        "</div>"
        "</div>"
    ).format(
        name=escape(view.lifecycle_name),
        status=escape(view.status),
        phase=escape(view.current_phase_name or "not started"),
        phases="".join(phase_items),
        controls=controls,
        resource=escape(view.resource_title),
        rtype=escape(view.resource_type),
        rows=resource_rows,
    )


def render_widget_text(view: WidgetViewModel) -> str:
    """Plain-text rendering of the widget (console examples, tests)."""
    if view.requires_authentication:
        return "[locked] authentication required for {}".format(view.resource_title)
    lines = [
        "{} — {} ({})".format(view.lifecycle_name, view.resource_title, view.resource_type),
        "status: {} | current phase: {}".format(view.status, view.current_phase_name or "-"),
        "phases:",
    ]
    for phase in view.phases:
        marker = "*" if phase["current"] else ("x" if phase.get("visited") else " ")
        lines.append("  [{}] {}".format(marker, phase["name"]))
    if view.controls_enabled and view.suggested_next:
        lines.append("next: " + ", ".join(item["name"] for item in view.suggested_next))
    return "\n".join(lines)


def render_designer_html(view: DesignerViewModel) -> str:
    """Render the designer screen (Fig. 3) as an HTML fragment."""
    phases = "".join(
        "<li>{}{}</li>".format(
            escape(phase["name"]),
            " <em>(end)</em>" if phase.get("terminal") else "",
        )
        for phase in view.phases
    )
    actions = "".join(
        "<li><strong>{}</strong> <span>{}</span></li>".format(
            escape(action["name"]), escape(action["category"])
        )
        for action in view.available_actions
    )
    problems = "".join("<li class='error'>{}</li>".format(escape(p)) for p in view.problems)
    warnings = "".join("<li class='warning'>{}</li>".format(escape(w)) for w in view.warnings)
    return (
        '<div class="gelee-designer">'
        "<h2>{name}</h2>"
        '<div class="canvas"><ol>{phases}</ol></div>'
        '<div class="action-browser"><h3>Actions</h3><ul>{actions}</ul></div>'
        '<ul class="problems">{problems}{warnings}</ul>'
        "</div>"
    ).format(name=escape(view.lifecycle_name), phases=phases, actions=actions,
             problems=problems, warnings=warnings)
