"""Programmatic lifecycle designer (Fig. 3).

The designer UI lets a composer create phases, browse the action library,
attach actions, connect phases and publish the result as a template.  The
:class:`DesignerSession` is the headless counterpart: it offers the same
operations, keeps the same "only show applicable actions" behaviour, and
produces a view model that a web front end could render directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from ..actions.registry import ActionRegistry
from ..errors import TemplateError
from ..model import LifecycleBuilder, LifecycleModel
from ..model.validation import lifecycle_problems
from ..runtime.manager import LifecycleManager
from ..storage.templates import TemplateStore


@dataclass
class DesignerViewModel:
    """What the designer screen shows at a given moment."""

    lifecycle_name: str
    phases: List[Dict[str, Any]]
    transitions: List[Dict[str, str]]
    available_actions: List[Dict[str, str]]
    problems: List[str]
    warnings: List[str]
    suggested_resource_types: List[str]

    def to_dict(self) -> Dict[str, Any]:
        return {
            "lifecycle_name": self.lifecycle_name,
            "phases": list(self.phases),
            "transitions": list(self.transitions),
            "available_actions": list(self.available_actions),
            "problems": list(self.problems),
            "warnings": list(self.warnings),
            "suggested_resource_types": list(self.suggested_resource_types),
        }


class DesignerSession:
    """One composer editing one lifecycle model."""

    def __init__(self, name: str, registry: ActionRegistry, composer: str = "",
                 restrict_to_resource_types: List[str] = None):
        self._builder = LifecycleBuilder(name, created_by=composer)
        self._registry = registry
        self._composer = composer
        self._restrict_types = list(restrict_to_resource_types or [])
        if self._restrict_types:
            self._builder.for_resource_types(*self._restrict_types)

    # ----------------------------------------------------------------- editing
    def add_phase(self, name: str, description: str = "", deadline_days: float = None,
                  terminal: bool = False) -> "DesignerSession":
        self._builder.phase(name, description=description, deadline_days=deadline_days,
                            terminal=terminal)
        return self

    def add_action(self, phase_name: str, action_uri: str, **parameters: Any) -> "DesignerSession":
        action_type = self._registry.type(action_uri)
        self._builder.action(phase_name, action_uri, name=action_type.name, **parameters)
        return self

    def connect(self, source: str, target: str, label: str = "") -> "DesignerSession":
        self._builder.transition(source, target, label=label)
        return self

    def start_at(self, phase_name: str) -> "DesignerSession":
        self._builder.start_at(phase_name)
        return self

    def flow(self, *phase_names: str) -> "DesignerSession":
        self._builder.flow(*phase_names)
        return self

    # ---------------------------------------------------------- action browsing
    def browse_actions(self, resource_type: str = None) -> List[Dict[str, str]]:
        """List the actions the composer may pick.

        "When defining lifecycles, users can browse through all actions as
        there is not yet, in general, a binding to a resource type (unless the
        user restricts a lifecycle to a type or a set of types)." (§V.B)
        """
        if resource_type is not None:
            action_types = self._registry.actions_for_resource_type(resource_type)
        elif self._restrict_types:
            action_types = []
            seen = set()
            for restricted_type in self._restrict_types:
                for action_type in self._registry.actions_for_resource_type(restricted_type):
                    if action_type.uri not in seen:
                        seen.add(action_type.uri)
                        action_types.append(action_type)
        else:
            action_types = self._registry.types()
        return [
            {
                "uri": action_type.uri,
                "name": action_type.name,
                "category": action_type.category or "general",
                "description": action_type.description,
            }
            for action_type in sorted(action_types, key=lambda a: (a.category, a.name))
        ]

    def applicable_resource_types(self) -> List[str]:
        """Resource types on which the lifecycle under construction can run."""
        model = self._builder.peek()
        calls = [call for _, call in model.action_calls()]
        return self._registry.applicable_resource_types(call.action_uri for call in calls)

    # ---------------------------------------------------------------- inspection
    def view_model(self) -> DesignerViewModel:
        model = self._builder.peek()
        report = lifecycle_problems(model) if len(model) else None
        return DesignerViewModel(
            lifecycle_name=model.name,
            phases=[
                {
                    "phase_id": phase.phase_id,
                    "name": phase.name,
                    "terminal": phase.terminal,
                    "actions": [call.name or call.action_uri for call in phase.actions],
                }
                for phase in model.phases
            ],
            transitions=[
                {"from": transition.source, "to": transition.target, "label": transition.label}
                for transition in model.transitions
            ],
            available_actions=self.browse_actions(),
            problems=list(report.errors) if report else [],
            warnings=list(report.warnings) if report else [],
            suggested_resource_types=list(model.suggested_resource_types),
        )

    # ------------------------------------------------------------------ output
    def build(self) -> LifecycleModel:
        """Validate and return the finished model."""
        return self._builder.build()

    def publish(self, manager: LifecycleManager) -> LifecycleModel:
        """Publish the model to a lifecycle manager (design-time module)."""
        model = self.build()
        return manager.publish_model(model, actor=self._composer)

    def save_as_template(self, store: TemplateStore, template_id: str = None) -> str:
        """Save the model into the template repository of the data tier."""
        model = self.build()
        if len(model) == 0:
            raise TemplateError("cannot save an empty lifecycle as a template")
        return store.save(model, template_id=template_id)
