"""The data tier (Fig. 2).

"At the bottom of the figure we have the data tier, which includes the
repositories for users and roles, resources and actions definitions,
templates, as well as execution logs (including model evolution)."

Everything is available both in memory (fast, used by tests and benchmarks)
and file-backed (JSON documents on disk, used by the hosted service), behind
the same repository interface.
"""

from .repository import InMemoryRepository, FileRepository, StoredRecord
from .logstore import ExecutionLog, LogEntry
from .definitions import DefinitionStore
from .templates import TemplateStore

__all__ = [
    "InMemoryRepository",
    "FileRepository",
    "StoredRecord",
    "ExecutionLog",
    "LogEntry",
    "DefinitionStore",
    "TemplateStore",
]
