"""The execution log.

Fig. 2's data tier includes an "Execution log" covering instance progression,
action results and model evolution.  :class:`ExecutionLog` subscribes to the
kernel event bus and records every event; the monitoring cockpit and the
history widgets query it.
"""

from __future__ import annotations

import threading
from bisect import bisect_right
from dataclasses import dataclass, field
from datetime import datetime
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..events import Event, EventBus


@dataclass
class LogEntry:
    """One recorded kernel event."""

    sequence: int
    kind: str
    timestamp: datetime
    subject_id: str
    actor: Optional[str]
    payload: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "sequence": self.sequence,
            "kind": self.kind,
            "timestamp": self.timestamp.isoformat(),
            "subject_id": self.subject_id,
            "actor": self.actor,
            "payload": dict(self.payload),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "LogEntry":
        return cls(
            sequence=int(data["sequence"]),
            kind=data["kind"],
            timestamp=datetime.fromisoformat(data["timestamp"]),
            subject_id=data["subject_id"],
            actor=data.get("actor"),
            payload=dict(data.get("payload") or {}),
        )


class ExecutionLog:
    """Append-only log of kernel events with simple query support."""

    def __init__(self, bus: EventBus = None, capacity: Optional[int] = None,
                 max_entries: Optional[int] = None):
        """Create the log, optionally bounding how many entries it retains.

        ``max_entries`` is the retention policy: the log never holds more
        than that many entries, and when the bound is hit the oldest ~10%
        are compacted away in one batch (so the hot ``record`` path stays
        O(1) amortised instead of shifting the whole list on every append).
        Keyset cursors from :meth:`entries_page` survive compaction: cursors
        are sequence numbers, and a page simply resumes at the oldest
        retained entry newer than the cursor.  ``capacity`` is the older
        name for the same knob, kept for callers of the original API.
        """
        self._entries: List[LogEntry] = []
        self._sequence = 0
        self._max_entries = max_entries if max_entries is not None else capacity
        self._dropped = 0
        #: subject id -> entries about it, oldest first (an indexed lookup
        #: path: instance history queries don't scan the whole log).
        self._by_subject: Dict[str, List[LogEntry]] = {}
        # The log may subscribe to a bus shared by concurrent shards.
        self._lock = threading.Lock()
        if bus is not None:
            bus.subscribe("*", self.record_event)

    @property
    def max_entries(self) -> Optional[int]:
        """The retention bound, or ``None`` for an unbounded log."""
        return self._max_entries

    @property
    def dropped_count(self) -> int:
        """How many old entries retention compaction has evicted so far."""
        with self._lock:
            return self._dropped

    # ------------------------------------------------------------------- record
    def record_event(self, event: Event) -> LogEntry:
        return self.record(event.kind, event.timestamp, event.subject_id, event.actor,
                           dict(event.payload))

    def record(self, kind: str, timestamp: datetime, subject_id: str,
               actor: Optional[str] = None, payload: Dict[str, Any] = None) -> LogEntry:
        with self._lock:
            return self._record_locked(kind, timestamp, subject_id, actor, payload)

    def _record_locked(self, kind, timestamp, subject_id, actor, payload) -> LogEntry:
        self._sequence += 1
        entry = LogEntry(sequence=self._sequence, kind=kind, timestamp=timestamp,
                         subject_id=subject_id, actor=actor, payload=dict(payload or {}))
        self._entries.append(entry)
        self._by_subject.setdefault(subject_id, []).append(entry)
        if self._max_entries is not None and len(self._entries) > self._max_entries:
            self._compact_locked()
        return entry

    def _compact_locked(self) -> None:
        """Drop the oldest entries so at most ``max_entries`` remain.

        Drops overshoot the bound by ~10% slack so the next appends are
        free: amortised, each append pays O(1) compaction work.  Entries are
        globally ordered by sequence and every per-subject list is too, so
        a subject's dropped entries are exactly a *prefix* of its list —
        removal never scans or searches.
        """
        slack = self._max_entries // 10
        overflow = min(len(self._entries),
                       len(self._entries) - self._max_entries + slack)
        dropped_per_subject: Dict[str, int] = {}
        for dropped in self._entries[:overflow]:
            dropped_per_subject[dropped.subject_id] = (
                dropped_per_subject.get(dropped.subject_id, 0) + 1)
        for subject_id, count in dropped_per_subject.items():
            subject_entries = self._by_subject[subject_id]
            if count >= len(subject_entries):
                del self._by_subject[subject_id]
            else:
                del subject_entries[:count]
        del self._entries[:overflow]
        self._dropped += overflow

    def compact(self, max_entries: Optional[int] = None) -> int:
        """Compact the log down to ``max_entries`` now; returns entries dropped.

        Without an argument the configured retention bound is used (a no-op
        on unbounded logs).  This is the entry point of the scheduler's
        periodic log-compaction maintenance job, which lets a deployment
        trim on a schedule instead of (or on top of) the per-append
        amortised policy.
        """
        with self._lock:
            bound = max_entries if max_entries is not None else self._max_entries
            if bound is None or bound < 1 or len(self._entries) <= bound:
                return 0
            before = len(self._entries)
            configured = self._max_entries
            self._max_entries = bound
            try:
                self._compact_locked()
            finally:
                self._max_entries = configured
            return before - len(self._entries)

    # -------------------------------------------------------------------- query
    def entries(self, subject_id: str = None, kind: str = None, actor: str = None,
                since: datetime = None, until: datetime = None,
                limit: int = None) -> List[LogEntry]:
        """Filter entries; ``kind`` accepts a prefix ending with a dot.

        A ``subject_id`` filter is answered from the per-subject index, so
        pulling one instance's history out of a million-entry log only
        touches that instance's entries.
        """
        with self._lock:
            if subject_id is not None:
                source = list(self._by_subject.get(subject_id, ()))
            else:
                source = list(self._entries)
        selected = []
        for entry in source:
            if kind is not None and not self._kind_matches(kind, entry.kind):
                continue
            if actor is not None and entry.actor != actor:
                continue
            if since is not None and entry.timestamp < since:
                continue
            if until is not None and entry.timestamp > until:
                continue
            selected.append(entry)
        if limit is not None:
            selected = selected[-limit:]
        return selected

    def history_of(self, subject_id: str) -> List[LogEntry]:
        """Every event about one subject, oldest first."""
        return self.entries(subject_id=subject_id)

    def entries_page(self, subject_id: str = None, after_sequence: int = 0,
                     limit: int = 100) -> Tuple[List[LogEntry], Optional[int], int]:
        """One keyset page of entries: ``(entries, next_cursor, total)``.

        ``after_sequence`` is the cursor (the sequence number of the last
        entry of the previous page; 0 starts from the beginning) and
        ``next_cursor`` is ``None`` on the final page.  The page is carved
        out of the per-subject index — entry lists are sequence-ascending, so
        the cursor position is found by binary search, never by scanning the
        log.  A past-the-end cursor yields an empty final page.
        """
        with self._lock:
            if subject_id is not None:
                source = self._by_subject.get(subject_id, [])
            else:
                source = self._entries
            total = len(source)
            start = bisect_right(source, after_sequence,
                                 key=lambda entry: entry.sequence)
            page = list(source[start:start + max(0, limit)])
            has_more = start + len(page) < total
        next_cursor = page[-1].sequence if page and has_more else None
        return page, next_cursor, total

    def last(self, subject_id: str = None, kind: str = None) -> Optional[LogEntry]:
        selected = self.entries(subject_id=subject_id, kind=kind)
        return selected[-1] if selected else None

    def count(self, kind: str = None, subject_id: str = None) -> int:
        return len(self.entries(subject_id=subject_id, kind=kind))

    def counts_by_kind(self) -> Dict[str, int]:
        with self._lock:
            entries = list(self._entries)
        counts: Dict[str, int] = {}
        for entry in entries:
            counts[entry.kind] = counts.get(entry.kind, 0) + 1
        return counts

    def subjects(self) -> List[str]:
        with self._lock:
            return sorted(self._by_subject)

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    # ----------------------------------------------------------- durable state
    def dump_state(self) -> Dict[str, Any]:
        """The log's complete durable state (see :mod:`repro.persistence`)."""
        with self._lock:
            return {
                "sequence": self._sequence,
                "dropped": self._dropped,
                "entries": [entry.to_dict() for entry in self._entries],
            }

    def restore_state(self, state: Dict[str, Any]) -> None:
        """Replace the log's contents with a :meth:`dump_state` snapshot.

        The sequence counter is restored too, so entries recorded after
        recovery continue the pre-crash numbering and existing keyset
        cursors stay valid.
        """
        entries = [LogEntry.from_dict(item) for item in state.get("entries", [])]
        with self._lock:
            self._entries = entries
            self._sequence = int(state.get("sequence", len(entries)))
            self._dropped = int(state.get("dropped", 0))
            self._by_subject = {}
            for entry in entries:
                self._by_subject.setdefault(entry.subject_id, []).append(entry)

    # ------------------------------------------------------------------ internal
    @staticmethod
    def _kind_matches(pattern: str, kind: str) -> bool:
        if pattern.endswith("."):
            return kind.startswith(pattern)
        return pattern == kind
