"""The execution log.

Fig. 2's data tier includes an "Execution log" covering instance progression,
action results and model evolution.  :class:`ExecutionLog` subscribes to the
kernel event bus and records every event; the monitoring cockpit and the
history widgets query it.
"""

from __future__ import annotations

import threading
from bisect import bisect_right
from dataclasses import dataclass, field
from datetime import datetime
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..events import Event, EventBus


@dataclass
class LogEntry:
    """One recorded kernel event."""

    sequence: int
    kind: str
    timestamp: datetime
    subject_id: str
    actor: Optional[str]
    payload: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "sequence": self.sequence,
            "kind": self.kind,
            "timestamp": self.timestamp.isoformat(),
            "subject_id": self.subject_id,
            "actor": self.actor,
            "payload": dict(self.payload),
        }


class ExecutionLog:
    """Append-only log of kernel events with simple query support."""

    def __init__(self, bus: EventBus = None, capacity: Optional[int] = None):
        """``capacity`` bounds memory for very long runs (oldest entries dropped)."""
        self._entries: List[LogEntry] = []
        self._sequence = 0
        self._capacity = capacity
        #: subject id -> entries about it, oldest first (an indexed lookup
        #: path: instance history queries don't scan the whole log).
        self._by_subject: Dict[str, List[LogEntry]] = {}
        # The log may subscribe to a bus shared by concurrent shards.
        self._lock = threading.Lock()
        if bus is not None:
            bus.subscribe("*", self.record_event)

    # ------------------------------------------------------------------- record
    def record_event(self, event: Event) -> LogEntry:
        return self.record(event.kind, event.timestamp, event.subject_id, event.actor,
                           dict(event.payload))

    def record(self, kind: str, timestamp: datetime, subject_id: str,
               actor: Optional[str] = None, payload: Dict[str, Any] = None) -> LogEntry:
        with self._lock:
            return self._record_locked(kind, timestamp, subject_id, actor, payload)

    def _record_locked(self, kind, timestamp, subject_id, actor, payload) -> LogEntry:
        self._sequence += 1
        entry = LogEntry(sequence=self._sequence, kind=kind, timestamp=timestamp,
                         subject_id=subject_id, actor=actor, payload=dict(payload or {}))
        self._entries.append(entry)
        self._by_subject.setdefault(subject_id, []).append(entry)
        if self._capacity is not None and len(self._entries) > self._capacity:
            overflow = len(self._entries) - self._capacity
            for dropped in self._entries[:overflow]:
                subject_entries = self._by_subject.get(dropped.subject_id)
                if subject_entries:
                    subject_entries.remove(dropped)
                    if not subject_entries:
                        del self._by_subject[dropped.subject_id]
            del self._entries[:overflow]
        return entry

    # -------------------------------------------------------------------- query
    def entries(self, subject_id: str = None, kind: str = None, actor: str = None,
                since: datetime = None, until: datetime = None,
                limit: int = None) -> List[LogEntry]:
        """Filter entries; ``kind`` accepts a prefix ending with a dot.

        A ``subject_id`` filter is answered from the per-subject index, so
        pulling one instance's history out of a million-entry log only
        touches that instance's entries.
        """
        with self._lock:
            if subject_id is not None:
                source = list(self._by_subject.get(subject_id, ()))
            else:
                source = list(self._entries)
        selected = []
        for entry in source:
            if kind is not None and not self._kind_matches(kind, entry.kind):
                continue
            if actor is not None and entry.actor != actor:
                continue
            if since is not None and entry.timestamp < since:
                continue
            if until is not None and entry.timestamp > until:
                continue
            selected.append(entry)
        if limit is not None:
            selected = selected[-limit:]
        return selected

    def history_of(self, subject_id: str) -> List[LogEntry]:
        """Every event about one subject, oldest first."""
        return self.entries(subject_id=subject_id)

    def entries_page(self, subject_id: str = None, after_sequence: int = 0,
                     limit: int = 100) -> Tuple[List[LogEntry], Optional[int], int]:
        """One keyset page of entries: ``(entries, next_cursor, total)``.

        ``after_sequence`` is the cursor (the sequence number of the last
        entry of the previous page; 0 starts from the beginning) and
        ``next_cursor`` is ``None`` on the final page.  The page is carved
        out of the per-subject index — entry lists are sequence-ascending, so
        the cursor position is found by binary search, never by scanning the
        log.  A past-the-end cursor yields an empty final page.
        """
        with self._lock:
            if subject_id is not None:
                source = self._by_subject.get(subject_id, [])
            else:
                source = self._entries
            total = len(source)
            start = bisect_right(source, after_sequence,
                                 key=lambda entry: entry.sequence)
            page = list(source[start:start + max(0, limit)])
            has_more = start + len(page) < total
        next_cursor = page[-1].sequence if page and has_more else None
        return page, next_cursor, total

    def last(self, subject_id: str = None, kind: str = None) -> Optional[LogEntry]:
        selected = self.entries(subject_id=subject_id, kind=kind)
        return selected[-1] if selected else None

    def count(self, kind: str = None, subject_id: str = None) -> int:
        return len(self.entries(subject_id=subject_id, kind=kind))

    def counts_by_kind(self) -> Dict[str, int]:
        with self._lock:
            entries = list(self._entries)
        counts: Dict[str, int] = {}
        for entry in entries:
            counts[entry.kind] = counts.get(entry.kind, 0) + 1
        return counts

    def subjects(self) -> List[str]:
        with self._lock:
            return sorted(self._by_subject)

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    # ------------------------------------------------------------------ internal
    @staticmethod
    def _kind_matches(pattern: str, kind: str) -> bool:
        if pattern.endswith("."):
            return kind.startswith(pattern)
        return pattern == kind
