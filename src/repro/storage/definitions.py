"""Resource and action definition store.

Fig. 2's data tier keeps "Resource and action definition" documents.  The
store persists resource descriptors (without secrets unless asked) and
action-type definitions (in the Table II XML dialect), on top of any
repository implementation.
"""

from __future__ import annotations

from typing import List, Optional

from ..actions.definitions import ActionType
from ..resources.descriptor import ResourceDescriptor
from ..serialization.action_xml import action_type_from_xml, action_type_to_xml
from .repository import InMemoryRepository


class DefinitionStore:
    """Persists resource descriptors and action-type definitions."""

    def __init__(self, resources: InMemoryRepository = None,
                 actions: InMemoryRepository = None):
        # "is None" matters: an empty repository is falsy (len() == 0).
        self._resources = resources if resources is not None else InMemoryRepository("resources")
        self._actions = actions if actions is not None else InMemoryRepository("action-types")
        if not self._resources.has_index("resource_type"):
            self._resources.create_index(
                "resource_type", lambda document: document.get("resource_type"))
        if not self._resources.has_index("owner"):
            self._resources.create_index(
                "owner", lambda document: document.get("owner"))

    # ---------------------------------------------------------------- resources
    def save_resource(self, descriptor: ResourceDescriptor,
                      include_credentials: bool = False) -> None:
        self._resources.put(descriptor.uri,
                            descriptor.to_dict(include_credentials=include_credentials))

    def resource(self, uri: str) -> Optional[ResourceDescriptor]:
        record = self._resources.get(uri)
        if record is None:
            return None
        return ResourceDescriptor.from_dict(record.document)

    def resources(self, resource_type: str = None,
                  owner: str = None) -> List[ResourceDescriptor]:
        if resource_type is not None:
            records = self._resources.find_by("resource_type", resource_type)
        elif owner is not None:
            records = self._resources.find_by("owner", owner)
        else:
            records = self._resources.all()
        descriptors = [ResourceDescriptor.from_dict(r.document) for r in records]
        if owner is not None:
            descriptors = [d for d in descriptors if d.owner == owner]
        return descriptors

    def forget_resource(self, uri: str) -> bool:
        return self._resources.delete(uri)

    # ------------------------------------------------------------------ actions
    def save_action_type(self, action_type: ActionType) -> None:
        self._actions.put(action_type.uri, {"xml": action_type_to_xml(action_type)})

    def action_type(self, uri: str) -> Optional[ActionType]:
        record = self._actions.get(uri)
        if record is None:
            return None
        return action_type_from_xml(record.document["xml"])

    def action_types(self) -> List[ActionType]:
        return [action_type_from_xml(record.document["xml"]) for record in self._actions.all()]

    def counts(self) -> dict:
        return {"resources": self._resources.count(), "action_types": self._actions.count()}
