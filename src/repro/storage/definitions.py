"""Resource and action definition store.

Fig. 2's data tier keeps "Resource and action definition" documents.  The
store persists resource descriptors (without secrets unless asked) and
action-type definitions (in the Table II XML dialect), on top of any
repository implementation.
"""

from __future__ import annotations

from typing import List, Optional

from ..actions.definitions import ActionType
from ..resources.descriptor import ResourceDescriptor
from ..serialization.action_xml import action_type_from_xml, action_type_to_xml
from .repository import InMemoryRepository


class DefinitionStore:
    """Persists resource descriptors and action-type definitions."""

    def __init__(self, resources: InMemoryRepository = None,
                 actions: InMemoryRepository = None):
        # "is None" matters: an empty repository is falsy (len() == 0).
        self._resources = resources if resources is not None else InMemoryRepository("resources")
        self._actions = actions if actions is not None else InMemoryRepository("action-types")

    # ---------------------------------------------------------------- resources
    def save_resource(self, descriptor: ResourceDescriptor,
                      include_credentials: bool = False) -> None:
        self._resources.put(descriptor.uri,
                            descriptor.to_dict(include_credentials=include_credentials))

    def resource(self, uri: str) -> Optional[ResourceDescriptor]:
        record = self._resources.get(uri)
        if record is None:
            return None
        return ResourceDescriptor.from_dict(record.document)

    def resources(self, resource_type: str = None) -> List[ResourceDescriptor]:
        descriptors = [ResourceDescriptor.from_dict(r.document) for r in self._resources.all()]
        if resource_type is None:
            return descriptors
        return [d for d in descriptors if d.resource_type == resource_type]

    def forget_resource(self, uri: str) -> bool:
        return self._resources.delete(uri)

    # ------------------------------------------------------------------ actions
    def save_action_type(self, action_type: ActionType) -> None:
        self._actions.put(action_type.uri, {"xml": action_type_to_xml(action_type)})

    def action_type(self, uri: str) -> Optional[ActionType]:
        record = self._actions.get(uri)
        if record is None:
            return None
        return action_type_from_xml(record.document["xml"])

    def action_types(self) -> List[ActionType]:
        return [action_type_from_xml(record.document["xml"]) for record in self._actions.all()]

    def counts(self) -> dict:
        return {"resources": self._resources.count(), "action_types": self._actions.count()}
