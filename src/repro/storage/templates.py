"""Lifecycle template store.

Fig. 2's data tier includes "Lifecycle templates": reusable lifecycle models
(quality plans) that project managers instantiate and customise per resource.
Templates are persisted in the paper's self-contained XML form (Table I) so a
template exported from one deployment can be imported into another.
"""

from __future__ import annotations

from typing import List, Optional

from ..errors import TemplateError
from ..model.lifecycle import LifecycleModel
from ..serialization.lifecycle_xml import lifecycle_from_xml, lifecycle_to_xml
from .repository import InMemoryRepository


class TemplateStore:
    """Stores lifecycle templates as self-contained XML documents."""

    def __init__(self, repository: InMemoryRepository = None):
        # "is None" matters: an empty repository is falsy (len() == 0).
        self._repository = repository if repository is not None else InMemoryRepository("templates")

    def save(self, model: LifecycleModel, template_id: str = None) -> str:
        """Store ``model`` as a template and return the template id."""
        template_id = template_id or model.uri
        self._repository.put(template_id, {
            "name": model.name,
            "xml": lifecycle_to_xml(model),
            "resource_types": list(model.suggested_resource_types),
        })
        return template_id

    def load(self, template_id: str) -> LifecycleModel:
        record = self._repository.get(template_id)
        if record is None:
            raise TemplateError("no lifecycle template {!r}".format(template_id))
        return lifecycle_from_xml(record.document["xml"])

    def instantiate(self, template_id: str, name: str = None) -> LifecycleModel:
        """Load a template as a fresh model (new URI) ready for customisation."""
        model = self.load(template_id).copy(new_uri=True)
        if name:
            model.name = name
        return model

    def exists(self, template_id: str) -> bool:
        return self._repository.exists(template_id)

    def delete(self, template_id: str) -> bool:
        return self._repository.delete(template_id)

    def template_ids(self) -> List[str]:
        return self._repository.ids()

    def catalog(self) -> List[dict]:
        """Template listing for the designer UI (id, name, suggested types)."""
        entries = []
        for record in self._repository.all():
            entries.append({
                "template_id": record.record_id,
                "name": record.document.get("name", record.record_id),
                "resource_types": list(record.document.get("resource_types", [])),
            })
        return entries
