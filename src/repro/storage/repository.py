"""Generic document repositories.

The data tier stores JSON-like documents keyed by id.  Two implementations
share one interface:

* :class:`InMemoryRepository` — dictionaries, no I/O; default everywhere.
* :class:`FileRepository` — one JSON file per record under a directory, so a
  hosted deployment survives restarts.

Both provide optimistic concurrency: every stored record carries a version
number, and writers that pass a stale ``expected_version`` get a
:class:`~repro.errors.ConcurrencyError` instead of silently overwriting a
newer write.

Repositories also support *secondary indexes*: :meth:`InMemoryRepository.create_index`
registers a key extractor over the stored documents (e.g. the owner, the
resource type, the current phase), the index is maintained on every write and
delete, and :meth:`InMemoryRepository.find_by` answers equality queries from
the index instead of scanning every record.
"""

from __future__ import annotations

import json
import os
import re
import tempfile
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Optional

from ..errors import ConcurrencyError, StorageError

_SAFE_FILENAME = re.compile(r"[^A-Za-z0-9_.-]+")


def atomic_write_text(path: str, text: str, fsync: bool = False) -> None:
    """Atomically (re)place ``path`` with ``text``: temp file + rename.

    A reader never observes a partial file — it sees the old content or the
    new, nothing in between.  With ``fsync`` the data is forced to stable
    storage before the rename commits it (power-loss safety; callers should
    follow up with :func:`fsync_directory` so the rename itself survives).
    Shared by the file repository, the snapshot store and anything else
    whose crash-safety depends on this exact sequence existing only once.
    """
    directory = os.path.dirname(os.path.abspath(path))
    descriptor, temp_path = tempfile.mkstemp(dir=directory, suffix=".tmp")
    try:
        with os.fdopen(descriptor, "w", encoding="utf-8") as handle:
            handle.write(text)
            if fsync:
                handle.flush()
                os.fsync(handle.fileno())
        os.replace(temp_path, path)
    except OSError as exc:
        raise StorageError("could not write {!r}: {}".format(path, exc))
    finally:
        if os.path.exists(temp_path):
            os.unlink(temp_path)


def fsync_directory(directory: str) -> None:
    """fsync a directory so completed file creations/renames survive power loss.

    File-data fsync alone does not make a *new* file durable: the directory
    entry lives in the directory, which has its own write-back.  Every
    durability-critical writer (file repository, WAL journal, snapshot
    store) shares this helper.
    """
    try:
        descriptor = os.open(directory, os.O_RDONLY)
        try:
            os.fsync(descriptor)
        finally:
            os.close(descriptor)
    except OSError as exc:
        raise StorageError("could not sync {!r}: {}".format(directory, exc))


@dataclass
class StoredRecord:
    """A document plus its repository bookkeeping."""

    record_id: str
    document: Dict[str, Any]
    version: int = 1

    def to_dict(self) -> Dict[str, Any]:
        return {"record_id": self.record_id, "version": self.version, "document": self.document}

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "StoredRecord":
        return cls(record_id=data["record_id"], document=data.get("document", {}),
                   version=int(data.get("version", 1)))


#: An index extractor maps a document to one key, a list of keys, or ``None``.
IndexExtractor = Callable[[Dict[str, Any]], Any]


class InMemoryRepository:
    """Dictionary-backed repository with optimistic concurrency and indexes."""

    def __init__(self, name: str = "repository"):
        self.name = name
        self._records: Dict[str, StoredRecord] = {}
        self._index_extractors: Dict[str, IndexExtractor] = {}
        #: index name -> key -> set of record ids.
        self._indexes: Dict[str, Dict[Any, set]] = {}
        #: record id -> index name -> keys it is filed under (reverse map,
        #: so unindexing a record never scans whole buckets).
        self._record_keys: Dict[str, Dict[str, List[Any]]] = {}

    # ------------------------------------------------------------------ indexes
    def create_index(self, index_name: str, extractor: IndexExtractor) -> None:
        """Register (and backfill) a secondary index over the documents.

        ``extractor`` receives a document and returns the key to file it
        under — or a list of keys, or ``None`` to leave the record out of
        the index.  Existing records are indexed immediately.
        """
        if index_name in self._index_extractors:
            raise StorageError("index {!r} already exists on {}".format(index_name, self.name))
        self._index_extractors[index_name] = extractor
        self._indexes[index_name] = {}
        for record in self._records.values():
            self._index_record(index_name, record)

    def has_index(self, index_name: str) -> bool:
        return index_name in self._index_extractors

    def find_by(self, index_name: str, key: Any) -> List[StoredRecord]:
        """Equality lookup answered from a secondary index (no scan)."""
        if index_name not in self._indexes:
            raise StorageError("{} has no index {!r}".format(self.name, index_name))
        matched = self._indexes[index_name].get(key, ())
        return [self._records[record_id] for record_id in sorted(matched)]

    def index_keys(self, index_name: str) -> List[Any]:
        """The distinct keys currently present in an index."""
        if index_name not in self._indexes:
            raise StorageError("{} has no index {!r}".format(self.name, index_name))
        return sorted(key for key, members in self._indexes[index_name].items() if members)

    # ------------------------------------------------------------------- writes
    def put(self, record_id: str, document: Dict[str, Any],
            expected_version: Optional[int] = None) -> StoredRecord:
        """Insert or update a document.

        ``expected_version`` enables compare-and-swap semantics: pass the
        version you read, and the write fails if someone else wrote meanwhile.
        ``None`` skips the check (last-writer-wins).
        """
        if not record_id:
            raise StorageError("a record id must be a non-empty string")
        existing = self._records.get(record_id)
        if expected_version is not None:
            current_version = existing.version if existing else 0
            if current_version != expected_version:
                raise ConcurrencyError(
                    "record {!r} is at version {}, expected {}".format(
                        record_id, current_version, expected_version
                    )
                )
        version = (existing.version + 1) if existing else 1
        record = StoredRecord(record_id=record_id, document=dict(document), version=version)
        self._write(record)
        return record

    def delete(self, record_id: str) -> bool:
        """Remove a record; returns False when it did not exist.

        The external copy is removed *first* (the ``_remove`` hook): if that
        fails, the in-memory state is left untouched, so memory and disk
        never silently diverge.
        """
        existed = record_id in self._records
        if existed:
            self._remove(record_id)
            self._unindex_record(record_id)
            self._records.pop(record_id, None)
        return existed

    # -------------------------------------------------------------------- reads
    def get(self, record_id: str) -> Optional[StoredRecord]:
        return self._records.get(record_id)

    def require(self, record_id: str) -> StoredRecord:
        record = self.get(record_id)
        if record is None:
            raise StorageError("{} has no record {!r}".format(self.name, record_id))
        return record

    def exists(self, record_id: str) -> bool:
        return record_id in self._records

    def ids(self) -> List[str]:
        return sorted(self._records)

    def all(self) -> List[StoredRecord]:
        return [self._records[record_id] for record_id in self.ids()]

    def find(self, predicate: Callable[[Dict[str, Any]], bool]) -> List[StoredRecord]:
        """Return the records whose document satisfies ``predicate``."""
        return [record for record in self.all() if predicate(record.document)]

    def count(self) -> int:
        return len(self._records)

    def __len__(self) -> int:
        return self.count()

    def __iter__(self) -> Iterator[StoredRecord]:
        return iter(self.all())

    # ----------------------------------------------------------------- extension
    def _write(self, record: StoredRecord) -> None:
        self._unindex_record(record.record_id)
        self._records[record.record_id] = record
        for index_name in self._index_extractors:
            self._index_record(index_name, record)

    def _remove(self, record_id: str) -> None:
        """Hook for subclasses that persist records externally."""

    # ------------------------------------------------------------------ internal
    def _index_record(self, index_name: str, record: StoredRecord) -> None:
        keys = self._index_extractors[index_name](record.document)
        if keys is None:
            return
        if not isinstance(keys, (list, tuple, set, frozenset)):
            keys = [keys]
        buckets = self._indexes[index_name]
        for key in keys:
            buckets.setdefault(key, set()).add(record.record_id)
        if keys:
            self._record_keys.setdefault(record.record_id, {})[index_name] = list(keys)

    def _unindex_record(self, record_id: str) -> None:
        filed = self._record_keys.pop(record_id, None)
        if not filed:
            return
        for index_name, keys in filed.items():
            buckets = self._indexes[index_name]
            for key in keys:
                members = buckets.get(key)
                if members is not None:
                    members.discard(record_id)


class FileRepository(InMemoryRepository):
    """Repository persisting each record as a JSON file in a directory.

    Writes are atomic (temp file + rename); the in-memory index mirrors the
    directory and is loaded eagerly at construction time.
    """

    def __init__(self, directory: str, name: str = None, fsync: bool = False):
        """``fsync=True`` makes every write power-safe: the record file is
        fsynced before the rename commits it (callers that batch many writes
        should also call :meth:`sync_directory` once afterwards so the
        renames themselves survive power loss)."""
        super().__init__(name=name or os.path.basename(directory) or "repository")
        self._directory = directory
        self._fsync = fsync
        os.makedirs(directory, exist_ok=True)
        self._load_existing()

    @property
    def directory(self) -> str:
        return self._directory

    def sync_directory(self) -> None:
        """fsync the directory so completed renames survive power loss."""
        fsync_directory(self._directory)

    # ----------------------------------------------------------------- extension
    def _write(self, record: StoredRecord) -> None:
        # Persist to disk first, commit to memory second: if the disk write
        # fails the repository still reflects the last durable state instead
        # of silently diverging from it (write-then-commit).
        payload = json.dumps(record.to_dict(), indent=2, sort_keys=True, default=str)
        try:
            atomic_write_text(self._path(record.record_id), payload,
                              fsync=self._fsync)
        except StorageError as exc:
            raise StorageError("could not persist record {!r}: {}".format(
                record.record_id, exc))
        super()._write(record)

    def _remove(self, record_id: str) -> None:
        # Called by ``delete`` *before* the in-memory record goes away; a
        # failed unlink raises StorageError and leaves the repository intact.
        path = self._path(record_id)
        try:
            if os.path.exists(path):
                os.unlink(path)
        except OSError as exc:
            raise StorageError("could not remove record {!r}: {}".format(record_id, exc))

    # ------------------------------------------------------------------ internal
    def _path(self, record_id: str) -> str:
        safe = _SAFE_FILENAME.sub("_", record_id)
        return os.path.join(self._directory, "{}.json".format(safe))

    def _load_existing(self) -> None:
        for filename in sorted(os.listdir(self._directory)):
            if not filename.endswith(".json"):
                continue
            path = os.path.join(self._directory, filename)
            try:
                with open(path, encoding="utf-8") as handle:
                    data = json.load(handle)
                record = StoredRecord.from_dict(data)
            except (OSError, ValueError, KeyError) as exc:
                raise StorageError("could not load record from {!r}: {}".format(path, exc))
            self._records[record.record_id] = record
