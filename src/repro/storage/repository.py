"""Generic document repositories.

The data tier stores JSON-like documents keyed by id.  Two implementations
share one interface:

* :class:`InMemoryRepository` — dictionaries, no I/O; default everywhere.
* :class:`FileRepository` — one JSON file per record under a directory, so a
  hosted deployment survives restarts.

Both provide optimistic concurrency: every stored record carries a version
number, and writers that pass a stale ``expected_version`` get a
:class:`~repro.errors.ConcurrencyError` instead of silently overwriting a
newer write.

Repositories also support *secondary indexes*: :meth:`InMemoryRepository.create_index`
registers a key extractor over the stored documents (e.g. the owner, the
resource type, the current phase), the index is maintained on every write and
delete, and :meth:`InMemoryRepository.find_by` answers equality queries from
the index instead of scanning every record.
"""

from __future__ import annotations

import json
import os
import re
import tempfile
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Optional

from ..errors import ConcurrencyError, StorageError

_SAFE_FILENAME = re.compile(r"[^A-Za-z0-9_.-]+")


@dataclass
class StoredRecord:
    """A document plus its repository bookkeeping."""

    record_id: str
    document: Dict[str, Any]
    version: int = 1

    def to_dict(self) -> Dict[str, Any]:
        return {"record_id": self.record_id, "version": self.version, "document": self.document}

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "StoredRecord":
        return cls(record_id=data["record_id"], document=data.get("document", {}),
                   version=int(data.get("version", 1)))


#: An index extractor maps a document to one key, a list of keys, or ``None``.
IndexExtractor = Callable[[Dict[str, Any]], Any]


class InMemoryRepository:
    """Dictionary-backed repository with optimistic concurrency and indexes."""

    def __init__(self, name: str = "repository"):
        self.name = name
        self._records: Dict[str, StoredRecord] = {}
        self._index_extractors: Dict[str, IndexExtractor] = {}
        #: index name -> key -> set of record ids.
        self._indexes: Dict[str, Dict[Any, set]] = {}
        #: record id -> index name -> keys it is filed under (reverse map,
        #: so unindexing a record never scans whole buckets).
        self._record_keys: Dict[str, Dict[str, List[Any]]] = {}

    # ------------------------------------------------------------------ indexes
    def create_index(self, index_name: str, extractor: IndexExtractor) -> None:
        """Register (and backfill) a secondary index over the documents.

        ``extractor`` receives a document and returns the key to file it
        under — or a list of keys, or ``None`` to leave the record out of
        the index.  Existing records are indexed immediately.
        """
        if index_name in self._index_extractors:
            raise StorageError("index {!r} already exists on {}".format(index_name, self.name))
        self._index_extractors[index_name] = extractor
        self._indexes[index_name] = {}
        for record in self._records.values():
            self._index_record(index_name, record)

    def has_index(self, index_name: str) -> bool:
        return index_name in self._index_extractors

    def find_by(self, index_name: str, key: Any) -> List[StoredRecord]:
        """Equality lookup answered from a secondary index (no scan)."""
        if index_name not in self._indexes:
            raise StorageError("{} has no index {!r}".format(self.name, index_name))
        matched = self._indexes[index_name].get(key, ())
        return [self._records[record_id] for record_id in sorted(matched)]

    def index_keys(self, index_name: str) -> List[Any]:
        """The distinct keys currently present in an index."""
        if index_name not in self._indexes:
            raise StorageError("{} has no index {!r}".format(self.name, index_name))
        return sorted(key for key, members in self._indexes[index_name].items() if members)

    # ------------------------------------------------------------------- writes
    def put(self, record_id: str, document: Dict[str, Any],
            expected_version: Optional[int] = None) -> StoredRecord:
        """Insert or update a document.

        ``expected_version`` enables compare-and-swap semantics: pass the
        version you read, and the write fails if someone else wrote meanwhile.
        ``None`` skips the check (last-writer-wins).
        """
        if not record_id:
            raise StorageError("a record id must be a non-empty string")
        existing = self._records.get(record_id)
        if expected_version is not None:
            current_version = existing.version if existing else 0
            if current_version != expected_version:
                raise ConcurrencyError(
                    "record {!r} is at version {}, expected {}".format(
                        record_id, current_version, expected_version
                    )
                )
        version = (existing.version + 1) if existing else 1
        record = StoredRecord(record_id=record_id, document=dict(document), version=version)
        self._write(record)
        return record

    def delete(self, record_id: str) -> bool:
        """Remove a record; returns False when it did not exist."""
        existed = record_id in self._records
        if existed:
            self._unindex_record(record_id)
            self._records.pop(record_id, None)
            self._remove(record_id)
        return existed

    # -------------------------------------------------------------------- reads
    def get(self, record_id: str) -> Optional[StoredRecord]:
        return self._records.get(record_id)

    def require(self, record_id: str) -> StoredRecord:
        record = self.get(record_id)
        if record is None:
            raise StorageError("{} has no record {!r}".format(self.name, record_id))
        return record

    def exists(self, record_id: str) -> bool:
        return record_id in self._records

    def ids(self) -> List[str]:
        return sorted(self._records)

    def all(self) -> List[StoredRecord]:
        return [self._records[record_id] for record_id in self.ids()]

    def find(self, predicate: Callable[[Dict[str, Any]], bool]) -> List[StoredRecord]:
        """Return the records whose document satisfies ``predicate``."""
        return [record for record in self.all() if predicate(record.document)]

    def count(self) -> int:
        return len(self._records)

    def __len__(self) -> int:
        return self.count()

    def __iter__(self) -> Iterator[StoredRecord]:
        return iter(self.all())

    # ----------------------------------------------------------------- extension
    def _write(self, record: StoredRecord) -> None:
        self._unindex_record(record.record_id)
        self._records[record.record_id] = record
        for index_name in self._index_extractors:
            self._index_record(index_name, record)

    def _remove(self, record_id: str) -> None:
        """Hook for subclasses that persist records externally."""

    # ------------------------------------------------------------------ internal
    def _index_record(self, index_name: str, record: StoredRecord) -> None:
        keys = self._index_extractors[index_name](record.document)
        if keys is None:
            return
        if not isinstance(keys, (list, tuple, set, frozenset)):
            keys = [keys]
        buckets = self._indexes[index_name]
        for key in keys:
            buckets.setdefault(key, set()).add(record.record_id)
        if keys:
            self._record_keys.setdefault(record.record_id, {})[index_name] = list(keys)

    def _unindex_record(self, record_id: str) -> None:
        filed = self._record_keys.pop(record_id, None)
        if not filed:
            return
        for index_name, keys in filed.items():
            buckets = self._indexes[index_name]
            for key in keys:
                members = buckets.get(key)
                if members is not None:
                    members.discard(record_id)


class FileRepository(InMemoryRepository):
    """Repository persisting each record as a JSON file in a directory.

    Writes are atomic (temp file + rename); the in-memory index mirrors the
    directory and is loaded eagerly at construction time.
    """

    def __init__(self, directory: str, name: str = None):
        super().__init__(name=name or os.path.basename(directory) or "repository")
        self._directory = directory
        os.makedirs(directory, exist_ok=True)
        self._load_existing()

    @property
    def directory(self) -> str:
        return self._directory

    # ----------------------------------------------------------------- extension
    def _write(self, record: StoredRecord) -> None:
        super()._write(record)
        path = self._path(record.record_id)
        payload = json.dumps(record.to_dict(), indent=2, sort_keys=True, default=str)
        descriptor, temp_path = tempfile.mkstemp(dir=self._directory, suffix=".tmp")
        try:
            with os.fdopen(descriptor, "w", encoding="utf-8") as handle:
                handle.write(payload)
            os.replace(temp_path, path)
        except OSError as exc:
            raise StorageError("could not persist record {!r}: {}".format(record.record_id, exc))
        finally:
            if os.path.exists(temp_path):
                os.unlink(temp_path)

    def _remove(self, record_id: str) -> None:
        path = self._path(record_id)
        if os.path.exists(path):
            os.unlink(path)

    # ------------------------------------------------------------------ internal
    def _path(self, record_id: str) -> str:
        safe = _SAFE_FILENAME.sub("_", record_id)
        return os.path.join(self._directory, "{}.json".format(safe))

    def _load_existing(self) -> None:
        for filename in sorted(os.listdir(self._directory)):
            if not filename.endswith(".json"):
                continue
            path = os.path.join(self._directory, filename)
            try:
                with open(path, encoding="utf-8") as handle:
                    data = json.load(handle)
                record = StoredRecord.from_dict(data)
            except (OSError, ValueError, KeyError) as exc:
                raise StorageError("could not load record from {!r}: {}".format(path, exc))
            self._records[record.record_id] = record
