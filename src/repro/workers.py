"""A persistent worker pool for the runtime's background work.

Three subsystems used to spawn a fresh daemon ``threading.Thread`` per unit
of work: the sharded runtime's bulk fan-out (one thread per shard *per
call*), the v2 operation store (one thread per 202 operation) and — with the
completion-based dispatcher — every in-flight action would have needed one.
Thread creation is cheap but not free (~50-100 µs plus scheduler churn), and
a bulk benchmark run creates tens of thousands of them.

:class:`WorkerPool` replaces those spawns with a fixed set of long-lived
daemon workers draining a shared queue.  Tasks are submitted as plain
callables and tracked through a :class:`TaskHandle`; a task that raises
never kills its worker — the exception is stored on the handle.

The pool is deliberately tiny and dependency-free (no
``concurrent.futures``) so it can sit below every other module: the sharded
runtime shares one pool between its per-shard fan-out workers and the
pooled completion executor, and sizes it so both sides always make
progress (see :mod:`repro.runtime.sharding`).
"""

from __future__ import annotations

import queue
import threading
from typing import Any, Callable, Dict, List, Optional


class TaskHandle:
    """Completion handle for one submitted task."""

    __slots__ = ("_done", "result", "exception")

    def __init__(self):
        self._done = threading.Event()
        self.result: Any = None
        self.exception: Optional[BaseException] = None

    @property
    def done(self) -> bool:
        return self._done.is_set()

    def wait(self, timeout: float = None) -> bool:
        """Block until the task finished; True unless the wait timed out."""
        return self._done.wait(timeout)

    def get(self, timeout: float = None) -> Any:
        """Wait for the task and return its result, re-raising its error."""
        if not self._done.wait(timeout):
            raise TimeoutError("task did not finish within {}s".format(timeout))
        if self.exception is not None:
            raise self.exception
        return self.result


class WorkerPool:
    """A fixed-size pool of daemon threads draining one task queue.

    Workers are started eagerly so the first bulk call pays no warm-up, and
    they are daemons so an un-closed pool never blocks interpreter exit.
    ``close()`` exists for deterministic teardown (tests, service shutdown).
    """

    def __init__(self, size: int, name: str = "gelee-worker"):
        if size < 1:
            raise ValueError("a worker pool needs at least one worker")
        self._queue: "queue.Queue" = queue.Queue()
        self._name = name
        self._closed = False
        self._lock = threading.Lock()
        self._submitted = 0
        self._completed = 0
        self._active = 0
        # Queue depth observed at every submit: the distribution (not just
        # the scrape-time gauge) shows whether the pool is sized right —
        # imported here (not at module top) because this module sits below
        # telemetry in the layering.
        from .telemetry.profiling import queue_depth_histogram

        self._depth_observe = queue_depth_histogram().bind(pool=name).observe
        self._threads: List[threading.Thread] = []
        for index in range(size):
            thread = threading.Thread(target=self._work, daemon=True,
                                      name="{}-{}".format(name, index))
            thread.start()
            self._threads.append(thread)

    # ------------------------------------------------------------------- submit
    def submit(self, fn: Callable[..., Any], *args: Any, **kwargs: Any) -> TaskHandle:
        """Queue ``fn(*args, **kwargs)``; returns immediately with a handle."""
        if self._closed:
            raise RuntimeError("worker pool {!r} is closed".format(self._name))
        handle = TaskHandle()
        with self._lock:
            self._submitted += 1
            depth = self._submitted - self._completed - self._active
        self._depth_observe(max(0, depth - 1))  # depth ahead of this task
        self._queue.put((handle, fn, args, kwargs))
        return handle

    # -------------------------------------------------------------------- admin
    @property
    def size(self) -> int:
        return len(self._threads)

    @property
    def closed(self) -> bool:
        return self._closed

    def stats(self) -> Dict[str, int]:
        """Queue/progress counters for the runtime-stats endpoint."""
        with self._lock:
            submitted, completed, active = self._submitted, self._completed, self._active
        return {
            "workers": len(self._threads),
            "submitted": submitted,
            "completed": completed,
            "active": active,
            "queued": max(0, submitted - completed - active),
        }

    def close(self, wait: bool = True, timeout: float = 5.0) -> None:
        """Stop the workers once the queue drains (idempotent)."""
        if self._closed:
            return
        self._closed = True
        for _ in self._threads:
            self._queue.put(None)
        if wait:
            for thread in self._threads:
                thread.join(timeout)

    # ------------------------------------------------------------------ internal
    def _work(self) -> None:
        while True:
            item = self._queue.get()
            if item is None:
                return
            handle, fn, args, kwargs = item
            with self._lock:
                self._active += 1
            try:
                handle.result = fn(*args, **kwargs)
            except BaseException as exc:  # noqa: BLE001 - kept on the handle
                handle.exception = exc
            finally:
                with self._lock:
                    self._active -= 1
                    self._completed += 1
                handle._done.set()
