"""Simulated project web site.

The Publication phase of Fig. 1 executes "Post on web site".  The site
simulator is the publication target: it keeps sections of published entries
(deliverables, news, ...) each pointing back at the source resource URI and
its exported rendition.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from datetime import datetime
from typing import Any, Dict, List, Optional

from ..clock import Clock, SystemClock


@dataclass
class PublishedEntry:
    """One entry published on the project site."""

    title: str
    source_uri: str
    section: str
    published_at: datetime
    visibility: str = "public"
    rendition: Dict[str, Any] = field(default_factory=dict)


class ProjectWebsiteSimulator:
    """In-process stand-in for the project's public web site."""

    application_name = "Project Web Site"

    def __init__(self, clock: Clock = None, site_name: str = "LiquidPub project site"):
        self._clock = clock or SystemClock()
        self.site_name = site_name
        self._sections: Dict[str, List[PublishedEntry]] = {}
        self.operation_count = 0

    def publish(self, title: str, source_uri: str, section: str = "deliverables",
                visibility: str = "public", rendition: Dict[str, Any] = None) -> PublishedEntry:
        """Publish (or re-publish) an entry in a section of the site."""
        self.operation_count += 1
        entry = PublishedEntry(
            title=title,
            source_uri=source_uri,
            section=section,
            published_at=self._clock.now(),
            visibility=visibility,
            rendition=dict(rendition or {}),
        )
        self._sections.setdefault(section, []).append(entry)
        return entry

    def unpublish(self, source_uri: str) -> int:
        """Remove every entry that points at ``source_uri``; returns how many."""
        removed = 0
        for section, entries in self._sections.items():
            kept = [entry for entry in entries if entry.source_uri != source_uri]
            removed += len(entries) - len(kept)
            self._sections[section] = kept
        return removed

    def section(self, name: str) -> List[PublishedEntry]:
        return list(self._sections.get(name, []))

    def sections(self) -> List[str]:
        return sorted(self._sections)

    def entries(self) -> List[PublishedEntry]:
        all_entries = []
        for entries in self._sections.values():
            all_entries.extend(entries)
        return all_entries

    def is_published(self, source_uri: str) -> bool:
        return any(entry.source_uri == source_uri for entry in self.entries())
