"""Simulated managing applications (substitution for live web services).

The paper's prototype talks to real hosted applications — Google Docs, Zoho,
MediaWiki, Subversion, Flickr — through their REST/SOAP APIs.  This package
provides in-process simulators exposing the operation surface the lifecycle
actions need (CRUD, access rights, sharing/notification, export, revisions,
publication, change subscriptions), so the whole code path exercised by the
paper runs offline and deterministically.  See DESIGN.md §5 for the
substitution rationale.
"""

from .base import (
    AccessRule,
    Notification,
    Revision,
    SimulatedApplication,
    SimulatedArtifact,
)
from .googledocs import GoogleDocsSimulator
from .mediawiki import MediaWikiSimulator
from .zoho import ZohoWriterSimulator
from .subversion import SubversionSimulator
from .photoalbum import PhotoAlbumSimulator
from .website import ProjectWebsiteSimulator

__all__ = [
    "AccessRule",
    "Notification",
    "Revision",
    "SimulatedApplication",
    "SimulatedArtifact",
    "GoogleDocsSimulator",
    "MediaWikiSimulator",
    "ZohoWriterSimulator",
    "SubversionSimulator",
    "PhotoAlbumSimulator",
    "ProjectWebsiteSimulator",
]
