"""Simulated Zoho Writer.

Zoho is the paper's second example of an online document editor (§I, §IV.C:
"Google Docs and Zoho for documents").  Functionally it mirrors the Google
Docs simulator; it exists as a distinct application so the universality
experiments can apply one lifecycle to several genuinely different resource
types, each with its own adapter.
"""

from __future__ import annotations

from typing import Any, Dict, List

from .base import SimulatedApplication


class ZohoWriterSimulator(SimulatedApplication):
    """In-process stand-in for Zoho Writer."""

    application_name = "Zoho Writer"
    uri_scheme = "https://writer.zoho.example/doc"

    def __init__(self, clock=None):
        super().__init__(clock=clock)
        self._workspaces: Dict[str, List[str]] = {}

    def add_to_workspace(self, uri: str, workspace: str) -> List[str]:
        """Zoho groups documents into shared workspaces."""
        artifact = self.artifact(uri)
        workspaces = self._workspaces.setdefault(artifact.uri, [])
        if workspace not in workspaces:
            workspaces.append(workspace)
        self.operation_count += 1
        return list(workspaces)

    def workspaces(self, uri: str) -> List[str]:
        return list(self._workspaces.get(self.artifact(uri).uri, []))

    def share_to_workspace(self, uri: str, workspace: str, members) -> Dict[str, Any]:
        """Share a document by putting it in a workspace and granting its members access."""
        self.add_to_workspace(uri, workspace)
        self.set_access(uri, visibility="team", readers=list(members))
        return {"workspace": workspace, "members": list(members)}

    def describe(self, uri: str) -> Dict[str, Any]:
        description = super().describe(uri)
        description["workspaces"] = self.workspaces(uri)
        return description
