"""Simulated MediaWiki.

The paper's Table I suggests "MediaWiki page" as a resource type, and the
prototype's resource plug-ins "currently include Google Docs and MediaWiki"
(§VI).  The simulator adds wiki-specific notions on top of the common base:
talk (discussion) pages, page protection, and categories — the operations a
"change access rights"/"send for review" action maps to on a wiki.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from datetime import datetime
from typing import Any, Dict, List

from .base import SimulatedApplication


@dataclass
class TalkEntry:
    """One entry on a page's talk (discussion) page."""

    author: str
    text: str
    created_at: datetime


class MediaWikiSimulator(SimulatedApplication):
    """In-process stand-in for a MediaWiki installation."""

    application_name = "MediaWiki"
    uri_scheme = "https://wiki.example.org/wiki"

    def __init__(self, clock=None):
        super().__init__(clock=clock)
        self._talk: Dict[str, List[TalkEntry]] = {}
        self._protection: Dict[str, str] = {}
        self._categories: Dict[str, List[str]] = {}

    # -------------------------------------------------------------- discussions
    def add_talk_entry(self, uri: str, author: str, text: str) -> TalkEntry:
        artifact = self.artifact(uri)
        entry = TalkEntry(author=author, text=text, created_at=self._clock.now())
        self._talk.setdefault(artifact.uri, []).append(entry)
        self.operation_count += 1
        return entry

    def talk_page(self, uri: str) -> List[TalkEntry]:
        return list(self._talk.get(self.artifact(uri).uri, []))

    # ---------------------------------------------------------------- protection
    def protect(self, uri: str, level: str = "sysop") -> str:
        """Protect a page (the wiki equivalent of restricting edit rights)."""
        artifact = self.artifact(uri)
        self._protection[artifact.uri] = level
        self.operation_count += 1
        return level

    def unprotect(self, uri: str) -> None:
        self._protection.pop(self.artifact(uri).uri, None)
        self.operation_count += 1

    def protection_level(self, uri: str) -> str:
        return self._protection.get(self.artifact(uri).uri, "")

    # ---------------------------------------------------------------- categories
    def categorize(self, uri: str, category: str) -> List[str]:
        artifact = self.artifact(uri)
        categories = self._categories.setdefault(artifact.uri, [])
        if category not in categories:
            categories.append(category)
        self.operation_count += 1
        return list(categories)

    def categories(self, uri: str) -> List[str]:
        return list(self._categories.get(self.artifact(uri).uri, []))

    # ------------------------------------------------------------------ describe
    def describe(self, uri: str) -> Dict[str, Any]:
        description = super().describe(uri)
        description["talk_entries"] = len(self.talk_page(uri))
        description["protection"] = self.protection_level(uri)
        description["categories"] = self.categories(uri)
        return description
