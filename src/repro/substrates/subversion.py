"""Simulated Subversion repository.

§II.B-3 of the paper: "We don't want to define different models based on
whether the deliverable is done with Google Docs, or latex over Subversion."
The SVN simulator manages *paths inside a repository* rather than standalone
documents: artifacts are files, updates are commits with revision numbers
shared across the whole repository, and "access rights" map to repository
authorization rules.
"""

from __future__ import annotations

from dataclasses import dataclass
from datetime import datetime
from typing import Any, Dict, List

from ..errors import ResourceAccessError
from ..identifiers import normalize_uri
from .base import SimulatedApplication, SimulatedArtifact


@dataclass
class Commit:
    """A repository-wide commit touching one or more paths."""

    revision: int
    author: str
    message: str
    paths: List[str]
    created_at: datetime


class SubversionSimulator(SimulatedApplication):
    """In-process stand-in for an SVN server."""

    application_name = "Subversion"
    uri_scheme = "https://svn.example.org/repos/project"

    def __init__(self, clock=None):
        super().__init__(clock=clock)
        self._commits: List[Commit] = []
        self._tags: Dict[str, int] = {}

    # ------------------------------------------------------------------ commits
    @property
    def head_revision(self) -> int:
        return len(self._commits)

    def commit(self, uri: str, content: str, user: str, message: str = "") -> Commit:
        """Commit new content to a path; also the implementation of update()."""
        artifact = self.artifact(uri)
        if artifact.archived:
            raise ResourceAccessError("path {!r} is frozen (tagged release)".format(uri))
        if not artifact.access.can_edit(user):
            raise ResourceAccessError("{!r} has no commit rights on {!r}".format(user, uri))
        artifact.content = content
        commit = Commit(
            revision=self.head_revision + 1,
            author=user,
            message=message or "update {}".format(artifact.title),
            paths=[artifact.uri],
            created_at=self._clock.now(),
        )
        self._commits.append(commit)
        self._record_revision(artifact, user, label="r{}".format(commit.revision))
        self._notify_subscribers(artifact, "commit r{} by {}".format(commit.revision, user))
        self.operation_count += 1
        return commit

    def update(self, uri: str, content: str, user: str) -> SimulatedArtifact:
        """Route the generic update operation through a commit."""
        self.commit(uri, content, user)
        return self.artifact(uri)

    def log(self, uri: str = None) -> List[Commit]:
        if uri is None:
            return list(self._commits)
        normalized = normalize_uri(uri)
        return [commit for commit in self._commits if normalized in commit.paths]

    # --------------------------------------------------------------------- tags
    def tag(self, uri: str, label: str) -> int:
        """Create a tag (named snapshot) pointing at the current head revision."""
        self.artifact(uri)
        self._tags[label] = self.head_revision
        self.operation_count += 1
        return self.head_revision

    def tags(self) -> Dict[str, int]:
        return dict(self._tags)

    # ----------------------------------------------------------------- describe
    def describe(self, uri: str) -> Dict[str, Any]:
        description = super().describe(uri)
        description["commits"] = len(self.log(uri))
        description["head_revision"] = self.head_revision
        return description
