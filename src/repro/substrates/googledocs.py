"""Simulated Google Docs.

The paper repeatedly uses Google Docs as the example managed application: the
Elaboration phase of Fig. 1 edits a Google Doc, and §IV.C notes that "Google
Docs service provides a REST API that allows us to perform operations over
instances … i) perform CRUD operations, ii) define access rights, and
iii) subscribe to changes".  The simulator mirrors that surface and adds
document comments (used by review rounds) and sharing messages.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from datetime import datetime
from typing import Any, Dict, List

from .base import SimulatedApplication


@dataclass
class DocumentComment:
    """A review comment left on a document."""

    author: str
    text: str
    created_at: datetime
    resolved: bool = False


class GoogleDocsSimulator(SimulatedApplication):
    """In-process stand-in for the Google Docs service."""

    application_name = "Google Docs"
    uri_scheme = "https://docs.google.example/document"

    def __init__(self, clock=None):
        super().__init__(clock=clock)
        self._comments: Dict[str, List[DocumentComment]] = {}

    # ------------------------------------------------------------------ sharing
    def share(self, uri: str, users, role: str = "reader", message: str = "") -> Dict[str, Any]:
        """Share the document with users, optionally sending a message."""
        artifact = self.artifact(uri)
        users = list(users)
        if role == "writer":
            self.set_access(uri, editors=users)
        else:
            self.set_access(uri, readers=users)
        if message:
            self.notify(uri, users, subject="Shared: {}".format(artifact.title), body=message)
        return {"shared_with": users, "role": role}

    # ----------------------------------------------------------------- comments
    def add_comment(self, uri: str, author: str, text: str) -> DocumentComment:
        artifact = self.artifact(uri)
        comment = DocumentComment(author=author, text=text, created_at=self._clock.now())
        self._comments.setdefault(artifact.uri, []).append(comment)
        self.operation_count += 1
        return comment

    def comments(self, uri: str) -> List[DocumentComment]:
        return list(self._comments.get(self.artifact(uri).uri, []))

    def unresolved_comments(self, uri: str) -> List[DocumentComment]:
        return [c for c in self.comments(uri) if not c.resolved]

    def resolve_comments(self, uri: str) -> int:
        resolved = 0
        for comment in self._comments.get(self.artifact(uri).uri, []):
            if not comment.resolved:
                comment.resolved = True
                resolved += 1
        return resolved

    # ----------------------------------------------------------------- describe
    def describe(self, uri: str) -> Dict[str, Any]:
        description = super().describe(uri)
        description["comments"] = len(self.comments(uri))
        description["unresolved_comments"] = len(self.unresolved_comments(uri))
        return description
