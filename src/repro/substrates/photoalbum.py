"""Simulated photo-album service (Flickr/Picasa-like).

§IV.C: "it is also possible to define the same lifecycle and the same actions
on resources at different types (e.g. Google Docs and Zoho for documents,
Picasa and Flickr for photo albums …)".  An album artifact holds a list of
photos; publishing an album maps "post on web site" to making it public, and
"generate PDF" maps to producing a contact sheet.
"""

from __future__ import annotations

from dataclasses import dataclass
from datetime import datetime
from typing import Any, Dict, List

from .base import SimulatedApplication


@dataclass
class Photo:
    """A single photo inside an album."""

    title: str
    uploaded_by: str
    uploaded_at: datetime
    tags: List[str]


class PhotoAlbumSimulator(SimulatedApplication):
    """In-process stand-in for a Flickr/Picasa-style album service."""

    application_name = "Photo Album Service"
    uri_scheme = "https://photos.example.org/album"

    def __init__(self, clock=None):
        super().__init__(clock=clock)
        self._photos: Dict[str, List[Photo]] = {}

    def add_photo(self, uri: str, title: str, user: str, tags=()) -> Photo:
        artifact = self.artifact(uri)
        photo = Photo(title=title, uploaded_by=user, uploaded_at=self._clock.now(),
                      tags=list(tags))
        self._photos.setdefault(artifact.uri, []).append(photo)
        self.operation_count += 1
        return photo

    def photos(self, uri: str) -> List[Photo]:
        return list(self._photos.get(self.artifact(uri).uri, []))

    def publish_album(self, uri: str) -> Dict[str, Any]:
        """Make the album public — the photo-service mapping of 'post on web site'."""
        self.set_access(uri, visibility="public")
        return {"published": True, "photos": len(self.photos(uri))}

    def contact_sheet(self, uri: str) -> Dict[str, Any]:
        """Produce a printable contact sheet — the mapping of 'generate PDF'."""
        photos = self.photos(uri)
        export = {
            "format": "pdf",
            "kind": "contact-sheet",
            "photos": len(photos),
            "pages": max(1, (len(photos) + 11) // 12),
            "generated_at": self._clock.now().isoformat(),
        }
        self.artifact(uri).exports.append(export)
        self.operation_count += 1
        return export

    def describe(self, uri: str) -> Dict[str, Any]:
        description = super().describe(uri)
        description["photos"] = len(self.photos(uri))
        return description
