"""Common machinery shared by every simulated managing application.

Each simulator manages a set of artifacts addressed by URI and offers the
operations that the paper's actions rely on:

* CRUD on the artifact content,
* access rights (visibility plus per-user read/edit grants),
* notifications (standing in for e-mail/share messages),
* revisions/snapshots,
* change subscriptions,
* export (PDF-like rendering) and archiving.

Concrete simulators specialise naming, URI schemes and a few
application-specific operations (wiki talk pages, SVN commits, photo sets...).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from datetime import datetime
from typing import Any, Dict, Iterable, List, Optional

from ..clock import Clock, SystemClock
from ..errors import ResourceAccessError, ResourceNotFoundError
from ..identifiers import new_id, normalize_uri


@dataclass
class AccessRule:
    """Access configuration of one artifact."""

    visibility: str = "private"  # private | team | consortium | public
    editors: List[str] = field(default_factory=list)
    readers: List[str] = field(default_factory=list)

    def grant_edit(self, user: str) -> None:
        if user not in self.editors:
            self.editors.append(user)

    def grant_read(self, user: str) -> None:
        if user not in self.readers:
            self.readers.append(user)

    def can_edit(self, user: str) -> bool:
        return self.visibility == "public" or user in self.editors

    def can_read(self, user: str) -> bool:
        if self.visibility in ("public", "consortium", "team"):
            return True
        return user in self.readers or user in self.editors

    def to_dict(self) -> Dict[str, Any]:
        return {
            "visibility": self.visibility,
            "editors": list(self.editors),
            "readers": list(self.readers),
        }


@dataclass
class Revision:
    """One immutable snapshot of an artifact's content."""

    number: int
    content: str
    author: str
    created_at: datetime
    label: str = ""


@dataclass
class Notification:
    """A message sent by the application on behalf of an action."""

    recipients: List[str]
    subject: str
    body: str
    sent_at: datetime
    about_uri: str = ""


@dataclass
class SimulatedArtifact:
    """An artifact managed by a simulated application."""

    uri: str
    title: str
    owner: str
    created_at: datetime
    content: str = ""
    access: AccessRule = field(default_factory=AccessRule)
    revisions: List[Revision] = field(default_factory=list)
    subscribers: List[str] = field(default_factory=list)
    archived: bool = False
    exports: List[Dict[str, Any]] = field(default_factory=list)
    metadata: Dict[str, Any] = field(default_factory=dict)

    def summary(self, max_length: int = 120) -> str:
        text = " ".join(self.content.split())
        return text[:max_length]


class SimulatedApplication:
    """Base class for the in-process managing applications.

    Subclasses set :attr:`application_name` and :attr:`uri_scheme`, and may
    add application-specific operations.  All state is in memory; the clock is
    injectable so scenario runs are deterministic.
    """

    application_name = "Generic application"
    uri_scheme = "https://app.example.org"

    def __init__(self, clock: Clock = None):
        self._clock = clock or SystemClock()
        self._artifacts: Dict[str, SimulatedArtifact] = {}
        self._notifications: List[Notification] = []
        self.operation_count = 0

    # ------------------------------------------------------------------- lookup
    def artifact(self, uri: str) -> SimulatedArtifact:
        normalized = normalize_uri(uri)
        try:
            return self._artifacts[normalized]
        except KeyError:
            raise ResourceNotFoundError(
                "{} has no artifact at {!r}".format(self.application_name, uri)
            ) from None

    def exists(self, uri: str) -> bool:
        try:
            return normalize_uri(uri) in self._artifacts
        except Exception:
            return False

    def artifacts(self) -> List[SimulatedArtifact]:
        return list(self._artifacts.values())

    def notifications(self, about_uri: str = None) -> List[Notification]:
        """Messages sent so far, optionally filtered by the artifact they concern."""
        if about_uri is None:
            return list(self._notifications)
        normalized = normalize_uri(about_uri)
        return [n for n in self._notifications if n.about_uri == normalized]

    # --------------------------------------------------------------------- CRUD
    def create(self, title: str, owner: str, content: str = "",
               uri: str = None, **metadata: Any) -> SimulatedArtifact:
        """Create a new artifact and return it."""
        self.operation_count += 1
        if uri is None:
            uri = "{}/{}".format(self.uri_scheme.rstrip("/"), new_id("doc"))
        normalized = normalize_uri(uri)
        artifact = SimulatedArtifact(
            uri=normalized,
            title=title,
            owner=owner,
            created_at=self._clock.now(),
            content=content,
            metadata=dict(metadata),
        )
        artifact.access.grant_edit(owner)
        self._artifacts[normalized] = artifact
        self._record_revision(artifact, owner, label="created")
        return artifact

    def read(self, uri: str, user: str = None) -> str:
        self.operation_count += 1
        artifact = self.artifact(uri)
        if user is not None and not artifact.access.can_read(user):
            raise ResourceAccessError(
                "{!r} may not read {!r} in {}".format(user, uri, self.application_name)
            )
        return artifact.content

    def update(self, uri: str, content: str, user: str) -> SimulatedArtifact:
        self.operation_count += 1
        artifact = self.artifact(uri)
        if artifact.archived:
            raise ResourceAccessError("artifact {!r} is archived and read-only".format(uri))
        if not artifact.access.can_edit(user):
            raise ResourceAccessError(
                "{!r} may not edit {!r} in {}".format(user, uri, self.application_name)
            )
        artifact.content = content
        self._record_revision(artifact, user)
        self._notify_subscribers(artifact, "updated by {}".format(user))
        return artifact

    def delete(self, uri: str, user: str) -> None:
        self.operation_count += 1
        artifact = self.artifact(uri)
        if artifact.owner != user:
            raise ResourceAccessError("only the owner may delete {!r}".format(uri))
        del self._artifacts[artifact.uri]

    # ------------------------------------------------------------ access rights
    def set_access(self, uri: str, visibility: str = None,
                   editors: Iterable[str] = (), readers: Iterable[str] = ()) -> AccessRule:
        """Change visibility and grants; the operation every lifecycle uses."""
        self.operation_count += 1
        artifact = self.artifact(uri)
        if visibility is not None:
            allowed = {"private", "team", "consortium", "public"}
            if visibility not in allowed:
                raise ResourceAccessError(
                    "visibility must be one of {}, got {!r}".format(sorted(allowed), visibility)
                )
            artifact.access.visibility = visibility
        for editor in editors or ():
            artifact.access.grant_edit(editor)
        for reader in readers or ():
            artifact.access.grant_read(reader)
        return artifact.access

    def access(self, uri: str) -> AccessRule:
        return self.artifact(uri).access

    # ------------------------------------------------------------ notifications
    def notify(self, uri: str, recipients: Iterable[str], subject: str,
               body: str = "") -> Notification:
        self.operation_count += 1
        artifact = self.artifact(uri)
        notification = Notification(
            recipients=list(recipients),
            subject=subject,
            body=body,
            sent_at=self._clock.now(),
            about_uri=artifact.uri,
        )
        self._notifications.append(notification)
        return notification

    def subscribe(self, uri: str, subscriber: str) -> None:
        self.operation_count += 1
        artifact = self.artifact(uri)
        if subscriber not in artifact.subscribers:
            artifact.subscribers.append(subscriber)

    # ---------------------------------------------------------------- revisions
    def snapshot(self, uri: str, user: str, label: str = "snapshot") -> Revision:
        self.operation_count += 1
        artifact = self.artifact(uri)
        return self._record_revision(artifact, user, label=label)

    def revisions(self, uri: str) -> List[Revision]:
        return list(self.artifact(uri).revisions)

    # ----------------------------------------------------------- export/archive
    def export_pdf(self, uri: str, paper_size: str = "A4",
                   include_history: bool = False) -> Dict[str, Any]:
        """Produce a PDF-like export record (the bytes are irrelevant to the model)."""
        self.operation_count += 1
        artifact = self.artifact(uri)
        export = {
            "format": "pdf",
            "paper_size": paper_size,
            "pages": max(1, len(artifact.content) // 1800 + 1),
            "title": artifact.title,
            "includes_history": include_history,
            "generated_at": self._clock.now().isoformat(),
        }
        artifact.exports.append(export)
        return export

    def archive(self, uri: str, reason: str = "") -> SimulatedArtifact:
        self.operation_count += 1
        artifact = self.artifact(uri)
        artifact.archived = True
        if reason:
            artifact.metadata["archive_reason"] = reason
        return artifact

    # ----------------------------------------------------------------- describe
    def describe(self, uri: str) -> Dict[str, Any]:
        """Uniform description used by the resource manager / widgets."""
        artifact = self.artifact(uri)
        return {
            "application": self.application_name,
            "title": artifact.title,
            "owner": artifact.owner,
            "summary": artifact.summary(),
            "visibility": artifact.access.visibility,
            "editors": list(artifact.access.editors),
            "readers": list(artifact.access.readers),
            "revisions": len(artifact.revisions),
            "subscribers": list(artifact.subscribers),
            "archived": artifact.archived,
            "exports": len(artifact.exports),
        }

    def handle(self, uri: str) -> SimulatedArtifact:
        """The raw handle passed to action implementations."""
        return self.artifact(uri)

    # ----------------------------------------------------------------- internal
    def _record_revision(self, artifact: SimulatedArtifact, author: str,
                         label: str = "") -> Revision:
        revision = Revision(
            number=len(artifact.revisions) + 1,
            content=artifact.content,
            author=author,
            created_at=self._clock.now(),
            label=label,
        )
        artifact.revisions.append(revision)
        return revision

    def _notify_subscribers(self, artifact: SimulatedArtifact, event: str) -> None:
        if not artifact.subscribers:
            return
        self._notifications.append(
            Notification(
                recipients=list(artifact.subscribers),
                subject="{}: {}".format(artifact.title, event),
                body="",
                sent_at=self._clock.now(),
                about_uri=artifact.uri,
            )
        )
