"""The write-ahead event journal.

Durability layer number one: every kernel event is appended — *before* the
caller sees the operation complete — to an append-only JSONL journal.  One
line is one :class:`JournalRecord`: the event (kind, timestamp, subject,
actor, payload) plus a monotonically increasing sequence number and an
optional ``state`` enrichment block written by the
:class:`~repro.persistence.coordinator.PersistenceCoordinator` (e.g. the
full model document on ``model.published``, so replay never depends on
state that evaporated with the process).

Design points, in the spirit of classic WAL implementations:

* **Segments.**  The journal is a directory of segment files named
  ``journal-<first-seq>.jsonl``.  A segment is rotated once it holds
  ``segment_max_records`` records; a fresh segment is also started on every
  open, so a recovering process never appends to a file another process may
  have torn.  Fully-snapshotted segments are deleted by
  :meth:`Journal.truncate_through`.
* **fsync policy.**  ``"always"`` fsyncs every append (maximum durability,
  slowest), ``"interval"`` fsyncs every ``fsync_interval`` appends and on
  rotation/close (bounded loss window), ``"never"`` leaves flushing to the
  OS (fastest; a host crash may lose the tail, a mere process crash does
  not).  Every append is *flushed* to the OS regardless, so readers in the
  same host always see complete data.
* **Torn tails.**  A crash can leave a half-written final line.  The reader
  tolerates exactly that — an undecodable *final* line of the *final*
  segment is ignored; corruption anywhere else raises
  :class:`~repro.errors.StorageError` because it means real damage, not an
  interrupted append.
"""

from __future__ import annotations

import json
import os
import threading
import time
from dataclasses import dataclass, field
from datetime import datetime
from typing import Any, Dict, Iterator, List, Optional

from ..errors import JournalTruncatedError, StorageError
from ..events import Event
from ..storage.repository import fsync_directory
from ..telemetry import DEFAULT_FAST_BUCKETS, get_registry, span_scope
from ..telemetry.profiling import TimedLock

#: Valid values of the ``fsync`` policy knob.
FSYNC_POLICIES = ("always", "interval", "never")

_SEGMENT_PREFIX = "journal-"
_SEGMENT_SUFFIX = ".jsonl"


def _segment_first_seq(name: str) -> Optional[int]:
    """The sequence number of a segment's first record, from its file name."""
    stem = name[len(_SEGMENT_PREFIX):-len(_SEGMENT_SUFFIX)]
    try:
        return int(stem)
    except ValueError:
        return None


def list_segments(directory: str) -> List[str]:
    """The journal segment file names in ``directory``, oldest first."""
    try:
        names = os.listdir(directory)
    except OSError:
        return []
    return sorted(
        name for name in names
        if name.startswith(_SEGMENT_PREFIX) and name.endswith(_SEGMENT_SUFFIX)
    )


def scan_oldest_seq(directory: str) -> int:
    """The sequence number of the oldest record still on disk (0 when empty).

    Read-only and best-effort: used for error reporting when a streaming
    cursor turns out to predate the retained window.
    """
    for name in list_segments(directory):
        path = os.path.join(directory, name)
        try:
            with open(path, encoding="utf-8") as handle:
                for line in handle:
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        return int(json.loads(line)["seq"])
                    except (ValueError, KeyError):
                        continue
        except OSError:
            continue
    return 0


def scan_last_seq(directory: str) -> int:
    """The newest sequence number on disk — read-only, no torn-tail repair.

    The read-only sibling of :meth:`Journal._recover_last_seq` for
    followers that observe another process's journal directory: it must
    never truncate (repair is the *writer's* job on reopen) and it
    tolerates a torn final line by simply not counting it.
    """
    segments = list_segments(directory)
    for name in reversed(segments):
        path = os.path.join(directory, name)
        last_seq = None
        try:
            with open(path, encoding="utf-8") as handle:
                for line in handle:
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        last_seq = int(json.loads(line)["seq"])
                    except (ValueError, KeyError):
                        continue  # torn tail (or mid-write line): skip
        except OSError:
            continue
        if last_seq is not None:
            return last_seq
        # An empty segment (crash between open and first append) still
        # proves its name's sequence number was reached before it opened.
        first = _segment_first_seq(name)
        if first:
            return first
    return 0


def scan_records(directory: str, after_seq: int = 0,
                 segments: List[str] = None,
                 strict: bool = False) -> Iterator[JournalRecord]:
    """Yield records with ``seq > after_seq`` from a journal directory.

    The shared read path of :meth:`Journal.read` (live journal, segments
    snapshotted under its lock) and the replication stream (read-only
    follower over another process's directory).  Two concurrent-reader
    guarantees make it rotation-safe:

    * a segment that vanishes between listing and opening was truncated by
      a concurrent checkpoint — that raises the *resumable*
      :class:`~repro.errors.JournalTruncatedError`, never the corruption
      :class:`~repro.errors.StorageError`;
    * with ``strict=True`` the yielded sequence numbers must be dense
      starting at ``after_seq + 1`` (journal seqs are consecutive by
      construction), so a cursor pointing into a truncated-away range
      raises :class:`JournalTruncatedError` instead of silently skipping
      the gap — a streaming follower must re-bootstrap, not lose records.
    """
    if segments is None:
        segments = list_segments(directory)
    expected = after_seq + 1
    for position, name in enumerate(segments):
        last_segment = position == len(segments) - 1
        # Skip whole segments that the next segment's first seq proves
        # are entirely covered by ``after_seq``.
        if not last_segment:
            next_first = _segment_first_seq(segments[position + 1])
            if next_first is not None and next_first <= after_seq + 1:
                continue
        path = os.path.join(directory, name)
        try:
            with open(path, encoding="utf-8") as handle:
                lines = handle.readlines()
        except FileNotFoundError:
            raise JournalTruncatedError(
                "journal segment {!r} was truncated away while reading; "
                "re-bootstrap from the newest snapshot".format(name),
                oldest_available=scan_oldest_seq(directory))
        except OSError as exc:
            raise StorageError("could not read journal segment {!r}: {}".format(
                path, exc))
        for index, line in enumerate(lines):
            line = line.strip()
            if not line:
                continue
            try:
                record = JournalRecord.from_dict(json.loads(line))
            except (ValueError, KeyError) as exc:
                if last_segment and index == len(lines) - 1:
                    # Torn tail from a crashed (or mid-append) writer: the
                    # record never fully made it, so it never happened.
                    return
                raise StorageError(
                    "corrupt journal record in {!r} line {}: {}".format(
                        path, index + 1, exc))
            if record.seq > after_seq:
                if strict and record.seq != expected:
                    raise JournalTruncatedError(
                        "journal records {}..{} were rotated out and "
                        "truncated; the stream cursor is stale — "
                        "re-bootstrap from the newest snapshot".format(
                            expected, record.seq - 1),
                        oldest_available=record.seq)
                expected = record.seq + 1
                yield record


@dataclass
class JournalRecord:
    """One journaled kernel event, plus replay enrichment."""

    seq: int
    kind: str
    timestamp: str  # ISO-8601; kept as text so append never re-parses.
    subject_id: str
    actor: Optional[str] = None
    payload: Dict[str, Any] = field(default_factory=dict)
    #: Extra durable state attached by the coordinator (model documents,
    #: creation-time instance state); ``None`` for plain events.
    state: Optional[Dict[str, Any]] = None

    def to_dict(self) -> Dict[str, Any]:
        record: Dict[str, Any] = {
            "seq": self.seq,
            "kind": self.kind,
            "timestamp": self.timestamp,
            "subject_id": self.subject_id,
            "actor": self.actor,
            "payload": self.payload,
        }
        if self.state is not None:
            record["state"] = self.state
        return record

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "JournalRecord":
        return cls(
            seq=int(data["seq"]),
            kind=data["kind"],
            timestamp=data["timestamp"],
            subject_id=data.get("subject_id", ""),
            actor=data.get("actor"),
            payload=dict(data.get("payload") or {}),
            state=data.get("state"),
        )

    @property
    def event_timestamp(self) -> datetime:
        return datetime.fromisoformat(self.timestamp)


class Journal:
    """Append-only, segmented JSONL journal with configurable fsync."""

    def __init__(self, directory: str, fsync: str = "interval",
                 fsync_interval: int = 64, segment_max_records: int = 10_000):
        if fsync not in FSYNC_POLICIES:
            raise StorageError(
                "unknown fsync policy {!r}; expected one of {}".format(
                    fsync, ", ".join(FSYNC_POLICIES)))
        if fsync_interval < 1:
            raise StorageError("fsync_interval must be at least 1")
        if segment_max_records < 1:
            raise StorageError("segment_max_records must be at least 1")
        self._directory = directory
        os.makedirs(directory, exist_ok=True)
        self._fsync = fsync
        self._fsync_interval = fsync_interval
        self._segment_max = segment_max_records
        # The append lock is wrapped in TimedLock: waits feed the
        # gelee_lock_wait_seconds{site="journal"} histogram (sampled).
        # The condition below is built over the *wrapped* RLock — a
        # Condition needs the raw lock's owner bookkeeping, and its waits
        # are deliberate long-poll sleeps, not contention.
        self._lock = TimedLock(threading.RLock(), site="journal")
        self._handle = None
        self._segment_count = 0      # records in the open segment
        self._unsynced = 0           # appends since the last fsync
        self._appended = 0           # appends in this process lifetime
        self._dir_synced = True      # open segment's dir entry made durable?
        #: Notified (under ``self._lock``) on every append; long-polling
        #: readers — the replication primary's ``wait_for`` — sleep on it
        #: instead of re-scanning the directory.
        self._append_cv = threading.Condition(self._lock.wrapped)
        #: Optional fencing guard (:mod:`repro.coordination.fencing`):
        #: when installed, every append first proves this node's leadership
        #: epoch is still current, so a deposed primary's late writes never
        #: reach the log (and therefore never replicate).
        self._fence = None
        self._seq = self._recover_last_seq()
        registry = get_registry()
        self._metric_append = registry.histogram(
            "gelee_journal_append_seconds",
            "Wall-clock time of one journal append (write+flush+policy fsync).",
            buckets=DEFAULT_FAST_BUCKETS)
        self._metric_fsync = registry.histogram(
            "gelee_journal_fsync_seconds",
            "Wall-clock time of one forced journal fsync.",
            buckets=DEFAULT_FAST_BUCKETS)
        self._metric_seq = registry.gauge(
            "gelee_journal_last_seq",
            "Sequence number of the newest journal record.")
        self._metric_truncated = registry.counter(
            "gelee_journal_truncated_segments_total",
            "Journal segments removed by truncation.")

    # ------------------------------------------------------------------- state
    @property
    def directory(self) -> str:
        return self._directory

    @property
    def last_seq(self) -> int:
        """Sequence number of the newest record (0 for an empty journal)."""
        with self._lock:
            return self._seq

    @property
    def appended_count(self) -> int:
        """Records appended since this journal object was opened."""
        with self._lock:
            return self._appended

    def segment_files(self) -> List[str]:
        """The segment file names, oldest first."""
        return list_segments(self._directory)

    def first_available_seq(self) -> int:
        """The oldest sequence number still on disk (0 for an empty journal).

        Streaming followers compare their cursor against this to report how
        a :class:`~repro.errors.JournalTruncatedError` came about.
        """
        return scan_oldest_seq(self._directory)

    def status(self) -> Dict[str, Any]:
        with self._lock:
            return {
                "directory": self._directory,
                "last_seq": self._seq,
                "appended": self._appended,
                "segments": len(self.segment_files()),
                "fsync": self._fsync,
                "fsync_interval": self._fsync_interval,
                "segment_max_records": self._segment_max,
            }

    # ------------------------------------------------------------------ writes
    def append(self, kind: str, timestamp: datetime, subject_id: str,
               actor: Optional[str] = None, payload: Dict[str, Any] = None,
               state: Dict[str, Any] = None) -> JournalRecord:
        """Append one record; returns it with its sequence number filled in.

        With a fence installed (:meth:`set_fence`) the append raises
        :class:`~repro.errors.StaleFencingTokenError` — *before* any state
        changes — when this node's leadership epoch has been superseded.
        """
        with self._lock:
            if self._fence is not None:
                self._fence.check()
            started = time.perf_counter()
            self._seq += 1
            # The span runs under the journal lock; span_scope is a couple
            # of dict operations, cheap enough for this path (the telemetry
            # benchmark holds the line).  It makes the write+flush+fsync
            # tail of a request visible in its span tree.
            with span_scope("journal.append", kind=kind, seq=self._seq):
                record = JournalRecord(
                    seq=self._seq, kind=kind, timestamp=timestamp.isoformat(),
                    subject_id=subject_id, actor=actor,
                    payload=dict(payload or {}), state=state,
                )
                line = json.dumps(record.to_dict(), default=str,
                                  separators=(",", ":"))
                handle = self._current_handle()
                try:
                    handle.write(line + "\n")
                    handle.flush()
                except OSError as exc:
                    raise StorageError("journal append failed: {}".format(exc))
                self._appended += 1
                self._segment_count += 1
                self._unsynced += 1
                if self._fsync == "always" or (
                        self._fsync == "interval"
                        and self._unsynced >= self._fsync_interval):
                    self._fsync_handle(handle)
                if self._segment_count >= self._segment_max:
                    self._close_handle()
            self._metric_append.observe(time.perf_counter() - started)
            self._metric_seq.set(self._seq)
            self._append_cv.notify_all()
            return record

    def append_event(self, event: Event, state: Dict[str, Any] = None) -> JournalRecord:
        """Append a kernel :class:`~repro.events.Event`."""
        return self.append(event.kind, event.timestamp, event.subject_id,
                           actor=event.actor, payload=dict(event.payload),
                           state=state)

    def set_fence(self, guard) -> None:
        """Install a fencing guard; every append checks it first.

        ``guard`` is anything with a ``check()`` that raises
        :class:`~repro.errors.StaleFencingTokenError` for a superseded
        epoch — in practice a
        :class:`~repro.coordination.fencing.FencingGuard`.
        """
        with self._lock:
            self._fence = guard

    def clear_fence(self) -> None:
        with self._lock:
            self._fence = None

    def wait_for_seq(self, seq: int, timeout: float = None) -> int:
        """Block until the journal head reaches ``seq``; returns the head.

        The push half of long-poll streaming: every append notifies, so a
        waiting reader wakes within a lock handoff of the write instead of
        a poll interval later.  Returns the current head either way — the
        caller compares it against ``seq`` to distinguish data from timeout.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._append_cv:
            while self._seq < seq:
                remaining = None if deadline is None \
                    else deadline - time.monotonic()
                if remaining is not None and remaining <= 0:
                    break
                self._append_cv.wait(remaining)
            return self._seq

    def sync(self) -> None:
        """Force the journal tail to stable storage regardless of policy.

        An *explicit* sync overrides even ``fsync="never"`` — that policy
        governs the automatic per-append behaviour, not a caller's direct
        request (checkpoints and ``close`` rely on this).
        """
        with self._lock:
            if self._handle is not None:
                self._force_fsync(self._handle)

    def rotate(self) -> bool:
        """Seal the open segment so the next append starts a fresh one.

        Rotation normally happens when a segment fills
        (``segment_max_records``); an explicit rotate lets the scheduler's
        maintenance job seal segments on a *time* schedule too, so a
        low-traffic deployment still produces bounded, truncatable segments.
        Returns ``True`` when an open segment was sealed.
        """
        with self._lock:
            if self._handle is None:
                return False
            self._close_handle()
            return True

    def close(self) -> None:
        with self._lock:
            self._close_handle()

    # ------------------------------------------------------------------- reads
    def read(self, after_seq: int = 0, strict: bool = False) -> Iterator[JournalRecord]:
        """Yield records with ``seq > after_seq``, oldest first.

        Reads the segment files directly (snapshotted under the lock), so a
        recovering process can read a directory written by a crashed one.
        With ``strict=True`` a gap in the sequence — the cursor points into
        a truncated-away range — raises the resumable
        :class:`~repro.errors.JournalTruncatedError` (see
        :func:`scan_records`); streaming readers use this so rotation and
        truncation can never silently swallow records.
        """
        with self._lock:
            # Make sure everything appended so far is visible to the reader.
            if self._handle is not None:
                self._handle.flush()
            segments = self.segment_files()
        return scan_records(self._directory, after_seq=after_seq,
                            segments=segments, strict=strict)

    # -------------------------------------------------------------- truncation
    def truncate_through(self, seq: int) -> List[str]:
        """Delete segments whose records are all ``<= seq``; returns them.

        Only whole segments are removed (a segment is provably covered when
        the *next* segment starts at or below ``seq + 1``), and the segment
        currently open for appends is never touched.
        """
        removed = []
        with self._lock:
            segments = self.segment_files()
            open_name = None
            if self._handle is not None:
                open_name = os.path.basename(self._handle.name)
            for position in range(len(segments) - 1):
                name = segments[position]
                if name == open_name:
                    break
                next_first = _segment_first_seq(segments[position + 1])
                if next_first is None or next_first > seq + 1:
                    break
                try:
                    os.unlink(os.path.join(self._directory, name))
                except OSError as exc:
                    raise StorageError(
                        "could not truncate journal segment {!r}: {}".format(name, exc))
                removed.append(name)
        if removed:
            self._metric_truncated.inc(len(removed))
        return removed

    # ------------------------------------------------------------------ internal
    def _current_handle(self):
        if self._handle is None:
            name = "{}{:016d}{}".format(_SEGMENT_PREFIX, self._seq, _SEGMENT_SUFFIX)
            path = os.path.join(self._directory, name)
            try:
                self._handle = open(path, "a", encoding="utf-8")
            except OSError as exc:
                raise StorageError("could not open journal segment {!r}: {}".format(
                    path, exc))
            self._segment_count = 0
            self._dir_synced = False
        return self._handle

    def _close_handle(self) -> None:
        """Seal the open segment: fsync (per contract, even under ``never``
        when rotation was policy-driven the fsync matters — a sealed segment
        is never written again) and close.

        fsync failures PROPAGATE as :class:`StorageError` — rotation happens
        inside ``append``, and swallowing the error there would let the
        coordinator report ``journal_failures=0`` while the sealed segment's
        tail never reached stable storage.
        """
        handle, self._handle = self._handle, None
        self._segment_count = 0
        if handle is None:
            return
        try:
            self._force_fsync(handle)
        finally:
            try:
                handle.close()
            except OSError:
                pass

    def _fsync_handle(self, handle) -> None:
        """Policy-respecting sync, called on the append path."""
        if self._fsync == "never":
            self._unsynced = 0
            return
        self._force_fsync(handle)

    def _force_fsync(self, handle) -> None:
        started = time.perf_counter()
        try:
            handle.flush()
            os.fsync(handle.fileno())
        except OSError as exc:
            raise StorageError("journal fsync failed: {}".format(exc))
        self._metric_fsync.observe(time.perf_counter() - started)
        # File data alone is not enough the first time: the segment's
        # directory entry must also survive power loss, or the whole
        # fsynced segment vanishes with the dirent.
        if not self._dir_synced:
            fsync_directory(self._directory)
            self._dir_synced = True
        self._unsynced = 0

    def _recover_last_seq(self) -> int:
        """Find the highest sequence number on disk, repairing a torn tail.

        A crashed writer can leave a half-written final line in the last
        segment.  That fragment is *truncated away* here (the record never
        committed, so it never happened) — otherwise a later append to the
        same segment would concatenate onto the fragment and corrupt both
        records.  Only the last segment can be torn: older segments are
        sealed at rotation and never written again.
        """
        segments = self.segment_files()
        if not segments:
            return 0
        path = os.path.join(self._directory, segments[-1])
        # A segment that never received its first record (crash between open
        # and write) proves only that seq ``first - 1`` was reached before it.
        first = _segment_first_seq(segments[-1])
        last_seq = (first - 1) if first else 0
        try:
            with open(path, "rb") as handle:
                data = handle.read()
        except OSError as exc:
            raise StorageError("could not open journal segment {!r}: {}".format(
                path, exc))
        offset = 0
        valid_end = 0
        saw_bad_line = False
        while offset < len(data):
            newline = data.find(b"\n", offset)
            if newline == -1:
                break  # unterminated fragment: provably a torn append
            line = data[offset:newline].strip()
            offset = newline + 1
            if not line:
                continue
            try:
                seq = int(json.loads(line.decode("utf-8"))["seq"])
            except (ValueError, KeyError, UnicodeDecodeError):
                # Only tolerable as the *trailing* damage of a crash.  If
                # valid records follow, truncating here would destroy
                # committed data — that is corruption, and it must raise
                # exactly like read() does, never silently repair.
                saw_bad_line = True
                continue
            if saw_bad_line:
                raise StorageError(
                    "corrupt journal record followed by valid data in {!r}; "
                    "refusing to repair".format(path))
            last_seq = seq
            valid_end = offset
        if valid_end < len(data):
            try:
                os.truncate(path, valid_end)
            except OSError as exc:
                raise StorageError("could not repair journal segment {!r}: {}".format(
                    path, exc))
        return last_seq
