"""The persistence coordinator: wiring the kernel to its durability layers.

The coordinator subscribes to the kernel :class:`~repro.events.EventBus`
(``"*"``) and appends every event to the write-ahead
:class:`~repro.persistence.journal.Journal` as it is delivered — with a
:class:`~repro.events.BatchingEventBus` in front, journal appends ride the
batched flushes, so the hot progression path pays one buffered append per
event instead of a synchronous disk round-trip.

A few event kinds are *enriched* with durable state the raw event does not
carry, so journal replay is self-contained:

========================  ====================================================
``model.published/.updated``  the full model document (replay re-installs it)
``instance.created``          the creation-time instance state (resource,
                              owner, token owners, parameters, metadata)
``instance.model_changed``    the instance's new model copy (which may be an
                              *unpublished* model — light coupling)
``propagation.accepted``      the accepted model version's document
========================  ====================================================

:meth:`PersistenceCoordinator.checkpoint` turns the journal tail into a
snapshot: it quiesces the runtime, flushes every instance touched since the
last checkpoint into the configured
:class:`~repro.persistence.store.InstanceStore`, publishes the manifest
atomically, and truncates fully-covered journal segments.  The order —
instance store first, manifest second, truncation last — means a crash at
any point leaves a recoverable combination on disk.
"""

from __future__ import annotations

import os
import threading
import time
from dataclasses import dataclass
from typing import Any, Dict, Optional, Set

from ..errors import GeleeError, ServiceError, StaleFencingTokenError, StorageError
from ..events import Event
from ..telemetry import get_registry
from .journal import Journal
from .snapshot import SnapshotStore, capture_manifest
from .store import FileStore, InstanceStore, MemoryStore, SQLiteStore, document_for

#: Backends selectable from :class:`PersistenceConfig`.
BACKENDS = ("memory", "file", "sqlite")


@dataclass
class PersistenceConfig:
    """Everything needed to wire (or re-wire, after a crash) persistence.

    Attributes:
        directory: root directory; the journal lives in ``journal/``, the
            snapshots in ``snapshots/`` and the instance store in
            ``instances/`` (or ``instances.sqlite3``) beneath it.
        backend: instance-store backend — ``"memory"``, ``"file"`` or
            ``"sqlite"``.
        fsync: journal fsync policy — ``"always"``, ``"interval"`` or
            ``"never"`` (see :mod:`repro.persistence.journal`).
        fsync_interval: appends between fsyncs under the interval policy.
        segment_max_records: journal segment rotation threshold.
        snapshot_retain: how many snapshot manifests to keep.
        recover_on_start: when the service tier wires persistence, whether
            to rebuild existing durable state before serving.
        log_max_entries: retention bound the service tier puts on the
            :class:`~repro.storage.logstore.ExecutionLog`.  Every snapshot
            manifest embeds the log's full state, so an unbounded log makes
            checkpoint time and manifest size grow with total history;
            bounding it keeps checkpoints O(bound).  ``None`` keeps the log
            unbounded (the historical default).
    """

    directory: str
    backend: str = "file"
    fsync: str = "interval"
    fsync_interval: int = 64
    segment_max_records: int = 10_000
    snapshot_retain: int = 2
    recover_on_start: bool = True
    log_max_entries: Optional[int] = None

    def __post_init__(self):
        if self.backend not in BACKENDS:
            raise StorageError("unknown persistence backend {!r}; expected one of {}".format(
                self.backend, ", ".join(BACKENDS)))

    # ------------------------------------------------------------------ layout
    @property
    def journal_directory(self) -> str:
        return os.path.join(self.directory, "journal")

    @property
    def snapshot_directory(self) -> str:
        return os.path.join(self.directory, "snapshots")

    @property
    def store_location(self) -> str:
        if self.backend == "sqlite":
            return os.path.join(self.directory, "instances.sqlite3")
        return os.path.join(self.directory, "instances")

    # ------------------------------------------------------------------ wiring
    def open_journal(self) -> Journal:
        return Journal(self.journal_directory, fsync=self.fsync,
                       fsync_interval=self.fsync_interval,
                       segment_max_records=self.segment_max_records)

    def open_snapshots(self) -> SnapshotStore:
        return SnapshotStore(self.snapshot_directory, retain=self.snapshot_retain)

    def open_store(self) -> InstanceStore:
        if self.backend == "memory":
            return MemoryStore()
        if self.backend == "sqlite":
            return SQLiteStore(self.store_location)
        return FileStore(self.store_location)


class PersistenceCoordinator:
    """Feeds the journal from the bus and materialises checkpoints."""

    def __init__(self, manager, log, journal: Journal,
                 snapshots: SnapshotStore, store: InstanceStore, bus=None,
                 timers=None):
        self._manager = manager
        self._log = log
        self._journal = journal
        self._snapshots = snapshots
        self._store = store
        #: Optional :class:`~repro.scheduler.timers.TimerService` whose
        #: pending set is embedded in every manifest (timer *events* reach
        #: the journal through the bus subscription like everything else).
        self._timers = timers
        self._bus = bus if bus is not None else manager.bus
        #: instance ids whose durable document is stale (touched since the
        #: last checkpoint).  Guarded by the journal's lock via _on_event's
        #: serialised delivery; checkpoints swap the set under quiesce.
        self._dirty: Set[str] = set()
        self._last_checkpoint_seq = snapshots.snapshot_seqs()[-1] \
            if snapshots.snapshot_seqs() else 0
        self._checkpoints = 0
        # Appends that failed since the last successful checkpoint.  The
        # kernel bus is non-strict (operations must not fail because the
        # disk does), so _on_event counts failures instead of raising and
        # status() surfaces them; a checkpoint repairs the durability gap.
        self._journal_failures = 0
        self._last_journal_error = ""
        # Appends rejected by the journal's fencing guard — a different
        # animal from journal failures: the disk is fine, this *node* lost
        # its leadership epoch and must stop writing.  ``on_fenced`` (set by
        # the coordination subsystem) is notified so the node demotes; the
        # callback runs on the publishing thread and must stay cheap.
        self._fenced_appends = 0
        self.on_fenced = None
        self._checkpoint_lock = threading.Lock()
        registry = get_registry()
        self._metric_checkpoint = registry.histogram(
            "gelee_checkpoint_seconds",
            "Wall-clock time of one full checkpoint (quiesce through truncate).",
            buckets=(0.01, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0))
        self._metric_checkpoints = registry.counter(
            "gelee_checkpoints_total", "Completed checkpoints.")
        self._metric_fenced = registry.counter(
            "gelee_fencing_rejections_total",
            "Journal appends rejected by a stale leadership epoch.")
        self._unsubscribe = self._bus.subscribe("*", self._on_event)
        self._closed = False

    # ---------------------------------------------------------------- plumbing
    @property
    def journal(self) -> Journal:
        return self._journal

    @property
    def snapshots(self) -> SnapshotStore:
        return self._snapshots

    @property
    def store(self) -> InstanceStore:
        return self._store

    @property
    def dirty_count(self) -> int:
        return len(self._dirty)

    @property
    def fenced_appends(self) -> int:
        """Appends rejected because this node's leadership epoch is stale."""
        return self._fenced_appends

    def mark_dirty(self, instance_id: str) -> None:
        """Force an instance into the next checkpoint flush (recovery uses
        this for instances rebuilt from the journal tail)."""
        self._dirty.add(instance_id)

    # ------------------------------------------------------------------ events
    def _on_event(self, event: Event) -> None:
        # Dirty-mark *before* appending: if the append fails, the subject's
        # full state still reaches the store at the next checkpoint (and the
        # event itself survives inside the manifest's log dump), so a
        # degraded journal loses availability of replay, not the state.
        if event.kind.startswith(("instance.", "action.", "propagation.")):
            self._dirty.add(event.subject_id)
        try:
            self._journal.append_event(event, state=self._enrich(event))
        except StaleFencingTokenError as exc:
            self._fenced_appends += 1
            self._metric_fenced.inc()
            self._last_journal_error = str(exc)
            if self.on_fenced is not None:
                self.on_fenced(exc)
        except StorageError as exc:
            self._journal_failures += 1
            self._last_journal_error = str(exc)

    def _enrich(self, event: Event) -> Optional[Dict[str, Any]]:
        """Attach replay state the raw event does not carry.

        Best effort — enrichment failures must never fail the publishing
        operation.  Instance lookups go through the *lock-free*
        ``peek_instance``: this handler can run on a shard worker that holds
        its own shard lock while flushing a batch containing other shards'
        events, so taking shard locks here would deadlock.
        """
        try:
            if event.kind in ("model.published", "model.updated"):
                model = self._manager.model(
                    event.subject_id, version=event.payload.get("version"))
                return {"model": model.to_dict()}
            if event.kind == "instance.created":
                creation = self._creation_state(event)
                return {"instance": creation} if creation else None
            if event.kind == "instance.model_changed":
                instance = self._manager.peek_instance(event.subject_id)
                return {"model": instance.model.to_dict()} if instance else None
            if event.kind == "propagation.accepted":
                model = self._manager.model(
                    event.payload["model_uri"],
                    version=event.payload.get("to_version"))
                return {"model": model.to_dict()}
        except Exception:  # noqa: BLE001 - any failure degrades to no enrichment;
            # the lock-free peek can observe concurrent mutation mid-copy, and
            # a lost enrichment beats a lost journal record.
            return None
        return None

    def _creation_state(self, event: Event) -> Optional[Dict[str, Any]]:
        """Creation-time facts only — progression is replayed from its own
        events, so the rebuilt instance starts unstarted even if delivery
        was batched and the live instance has already moved on."""
        instance = self._manager.peek_instance(event.subject_id)
        if instance is None:
            return None
        return {
            "model_uri": instance.model.uri,
            "model_version": instance.model.version.version_number,
            "resource": instance.resource.to_dict(include_credentials=True),
            "owner": instance.owner,
            "token_owners": list(instance.token_owners),
            "metadata": dict(instance.metadata),
            "instantiation_parameters": {
                call_id: dict(values)
                for call_id, values in instance.instantiation_parameters.items()
            },
        }

    # -------------------------------------------------------------- checkpoint
    def checkpoint(self) -> Dict[str, Any]:
        """Flush dirty instances to the store and publish a snapshot.

        Returns a report dict (journal seq, instances flushed, timings).

        Over a non-durable store (``MemoryStore``) the manifest is *not*
        published and the journal is *not* truncated: the flushed documents
        only exist in RAM, so the full journal must stay the authoritative
        recovery source — otherwise a restart would silently lose every
        checkpointed instance.  The report carries ``"durable": False``.
        """
        if self._closed:
            raise ServiceError("the persistence coordinator is closed")
        started = time.perf_counter()
        with self._checkpoint_lock:
            # Drain batched events early to shorten the stop-the-world window...
            if hasattr(self._bus, "flush"):
                self._bus.flush()
            with self._manager.quiesce():
                # ...and again *inside* the quiesce: a writer may have slipped
                # a mutation in (buffering its events) between the flush above
                # and the lock acquisition.  With every shard lock held no new
                # event can be published, so after this flush the captured seq
                # provably covers every mutation the captured documents
                # contain — otherwise replay would re-apply those events on
                # top of the newer state.
                if hasattr(self._bus, "flush"):
                    self._bus.flush()
                seq = self._journal.last_seq
                dirty, self._dirty = self._dirty, set()
                failures, self._journal_failures = self._journal_failures, 0
                # Only the in-memory *capture* runs under the shard locks;
                # documents and manifest are immutable once built, so the
                # expensive store/manifest I/O happens after release and
                # mutations on every shard resume meanwhile.
                documents = []
                for instance_id in dirty:
                    try:
                        instance = self._manager.instance(instance_id)
                    except GeleeError:
                        continue  # not an instance id (model/proposal subjects)
                    documents.append(document_for(instance, seq))
                instance_total = self._manager.instance_count()
                manifest = None
                if self._store.durable:
                    manifest = capture_manifest(self._manager, self._log, seq,
                                                backend=self._store.backend_name,
                                                timers=self._timers)
            # I/O phase — order is load-bearing: instance documents must be
            # durable *before* the manifest that claims to cover them, and
            # the journal may only be truncated after the manifest landed.
            # A failure here re-merges the captured dirty set: those
            # instances are still unflushed, and forgetting them would let a
            # *later* checkpoint truncate the journal past mutations whose
            # only durable copy was the records being truncated.
            try:
                flushed = self._store.upsert_many(documents)
                if manifest is not None:
                    self._snapshots.publish(manifest)
            except BaseException:
                self._dirty |= dirty
                self._journal_failures += failures
                raise
            self._journal.sync()
            truncated = self._journal.truncate_through(seq) if manifest else []
            self._last_checkpoint_seq = seq
            self._checkpoints += 1
        self._metric_checkpoint.observe(time.perf_counter() - started)
        self._metric_checkpoints.inc()
        return {
            "journal_seq": seq,
            "durable": self._store.durable,
            "snapshot_id": manifest.snapshot_id if manifest else None,
            "instances_flushed": flushed,
            "instances_total": instance_total,
            "journal_failures_repaired": failures,
            "segments_truncated": len(truncated),
            "duration_ms": round((time.perf_counter() - started) * 1000, 3),
        }

    # ------------------------------------------------------------------ status
    def status(self) -> Dict[str, Any]:
        journal_status = self._journal.status()
        snapshot_seqs = self._snapshots.snapshot_seqs()
        return {
            "enabled": True,
            "backend": self._store.backend_name,
            "journal": journal_status,
            "journal_records_since_snapshot": max(
                0, journal_status["last_seq"] - self._last_checkpoint_seq),
            "snapshots": len(snapshot_seqs),
            "last_snapshot_seq": snapshot_seqs[-1] if snapshot_seqs else None,
            "dirty_instances": self.dirty_count,
            "checkpoints": self._checkpoints,
            "stored_instances": self._store.count(),
            "journal_failures": self._journal_failures,
            "fenced_appends": self._fenced_appends,
            "last_journal_error": self._last_journal_error,
        }

    def close(self) -> None:
        """Detach from the bus and release the journal/store handles."""
        if self._closed:
            return
        # Drain the batching bus BEFORE detaching: buffered events must
        # reach the journal, or a clean shutdown would lose operations the
        # callers already saw succeed.
        if hasattr(self._bus, "flush"):
            self._bus.flush()
        self._closed = True
        self._unsubscribe()
        try:
            self._journal.close()  # may raise if the final fsync fails
        finally:
            self._store.close()
