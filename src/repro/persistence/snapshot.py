"""Point-in-time snapshots of the runtime's durable state.

A snapshot bounds how much journal must be replayed after a crash.  It has
two halves:

* the **manifest** (this module): the design-time models (every published
  version, in publication order), the execution-log state, and the journal
  sequence number the snapshot covers — one JSON file, published
  atomically (temp file + rename) so a reader either sees a complete
  manifest or the previous one, never a half-written file;
* the **instance payloads**: one full state document per instance, kept in
  the configured :class:`~repro.persistence.store.InstanceStore` backend
  (memory / JSON files / SQLite) and flushed by the coordinator *before*
  the manifest is published — a manifest therefore never refers to
  instance state that is not already durable.

Recovery (:mod:`repro.persistence.recovery`) loads the newest manifest,
restores models, log and instances, and replays the journal tail with
``seq > manifest.journal_seq``.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from ..errors import StorageError
from ..identifiers import new_id
from ..storage.repository import atomic_write_text, fsync_directory

_SNAPSHOT_PREFIX = "snapshot-"
_SNAPSHOT_SUFFIX = ".json"


@dataclass
class SnapshotManifest:
    """Everything a snapshot records outside the instance store."""

    journal_seq: int
    taken_at: str  # ISO-8601
    #: Every published model version, oldest first: ``[{"uri", "versions":
    #: [model documents]}]`` — order matters so re-publication after
    #: recovery keeps version history intact.
    models: List[Dict[str, Any]] = field(default_factory=list)
    #: The :meth:`~repro.storage.logstore.ExecutionLog.dump_state` document.
    log: Dict[str, Any] = field(default_factory=dict)
    #: The :meth:`~repro.scheduler.timers.TimerService.dump_state` document
    #: (pending timers); empty for deployments without a scheduler.  Older
    #: manifests lack the key — recovery treats that as "no pending timers".
    scheduler: Dict[str, Any] = field(default_factory=dict)
    instance_count: int = 0
    backend: str = "memory"
    snapshot_id: str = field(default_factory=lambda: new_id("snap"))

    def to_dict(self) -> Dict[str, Any]:
        return {
            "snapshot_id": self.snapshot_id,
            "journal_seq": self.journal_seq,
            "taken_at": self.taken_at,
            "models": self.models,
            "log": self.log,
            "scheduler": self.scheduler,
            "instance_count": self.instance_count,
            "backend": self.backend,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "SnapshotManifest":
        return cls(
            journal_seq=int(data["journal_seq"]),
            taken_at=data.get("taken_at", ""),
            models=list(data.get("models") or []),
            log=dict(data.get("log") or {}),
            scheduler=dict(data.get("scheduler") or {}),
            instance_count=int(data.get("instance_count", 0)),
            backend=data.get("backend", "memory"),
            snapshot_id=data.get("snapshot_id") or new_id("snap"),
        )


def capture_manifest(manager, log, journal_seq: int,
                     backend: str = "memory", timers=None) -> SnapshotManifest:
    """Build a manifest from a (quiesced) manager and execution log.

    The caller is responsible for holding the runtime still (see
    :meth:`~repro.runtime.sharding.ShardedLifecycleManager.quiesce`) so the
    captured models, log and ``journal_seq`` describe one consistent point
    in time.
    """
    models = []
    for latest in manager.models():
        versions = [
            manager.model(latest.uri, version=version).to_dict()
            for version in manager.model_versions(latest.uri)
        ]
        models.append({"uri": latest.uri, "versions": versions})
    return SnapshotManifest(
        journal_seq=journal_seq,
        taken_at=manager.clock.now().isoformat(),
        models=models,
        log=log.dump_state(),
        scheduler=timers.dump_state() if timers is not None else {},
        instance_count=manager.instance_count(),
        backend=backend,
    )


class SnapshotStore:
    """Directory of manifests with atomic publish and bounded retention."""

    def __init__(self, directory: str, retain: int = 2):
        if retain < 1:
            raise StorageError("snapshot retention must keep at least 1 snapshot")
        self._directory = directory
        self._retain = retain
        os.makedirs(directory, exist_ok=True)

    @property
    def directory(self) -> str:
        return self._directory

    def publish(self, manifest: SnapshotManifest) -> str:
        """Atomically write the manifest; prune snapshots beyond retention.

        The file appears under its final name only after it is completely
        written (temp file + ``os.replace``), so a crash mid-publish leaves
        the previous snapshot as the latest — never a truncated one.  The
        directory is fsynced afterwards so the rename itself survives power
        loss: the coordinator truncates the journal on the strength of this
        manifest, so its publication must be durable, not merely atomic.
        """
        name = "{}{:016d}{}".format(_SNAPSHOT_PREFIX, manifest.journal_seq,
                                    _SNAPSHOT_SUFFIX)
        path = os.path.join(self._directory, name)
        payload = json.dumps(manifest.to_dict(), default=str,
                             separators=(",", ":"))
        atomic_write_text(path, payload, fsync=True)
        fsync_directory(self._directory)
        self._prune()
        return path

    def snapshot_seqs(self) -> List[int]:
        """Journal sequence numbers of the stored snapshots, oldest first."""
        seqs = []
        try:
            names = os.listdir(self._directory)
        except OSError:
            return []
        for name in names:
            if not (name.startswith(_SNAPSHOT_PREFIX)
                    and name.endswith(_SNAPSHOT_SUFFIX)):
                continue
            stem = name[len(_SNAPSHOT_PREFIX):-len(_SNAPSHOT_SUFFIX)]
            try:
                seqs.append(int(stem))
            except ValueError:
                continue
        return sorted(seqs)

    def latest(self) -> Optional[SnapshotManifest]:
        """Load the newest manifest, or ``None`` when none was published yet.

        Skips unreadable manifests (a crash can only leave stray ``.tmp``
        files, but defense in depth costs one ``try``) and falls back to the
        next-newest.
        """
        for seq in reversed(self.snapshot_seqs()):
            path = self._path(seq)
            try:
                with open(path, encoding="utf-8") as handle:
                    return SnapshotManifest.from_dict(json.load(handle))
            except (OSError, ValueError, KeyError):
                continue
        return None

    def _path(self, seq: int) -> str:
        return os.path.join(self._directory,
                            "{}{:016d}{}".format(_SNAPSHOT_PREFIX, seq,
                                                 _SNAPSHOT_SUFFIX))

    def _prune(self) -> None:
        seqs = self.snapshot_seqs()
        for seq in seqs[:-self._retain]:
            try:
                os.unlink(self._path(seq))
            except OSError:
                pass  # pruning is best-effort; a leftover snapshot is harmless
