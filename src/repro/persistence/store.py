"""Pluggable instance stores: where snapshotted instance state lives.

One interface, three backends:

* :class:`MemoryStore` — dictionaries plus per-dimension indexes; no I/O.
  Useful in tests and for rebuilding a manager inside one process.
* :class:`FileStore` — one JSON document per instance, built on the data
  tier's :class:`~repro.storage.repository.FileRepository` (atomic writes,
  secondary indexes), so the persistence layer and the generic document
  tier share one on-disk idiom.
* :class:`SQLiteStore` — a ``sqlite3`` (stdlib) database in WAL mode with
  one indexed column per PR 1 secondary index (model / owner / resource /
  phase / status), so ``query()`` is a real indexed SQL query and a cold
  process can filter millions of instances without loading them all.

Documents are flat dicts shaped by :func:`document_for`: the indexable
columns, the journal sequence number the document reflects (``journal_seq``
— replay skips records a stored document already includes), and the full
:meth:`~repro.runtime.instance.LifecycleInstance.to_state_dict` under
``state``.
"""

from __future__ import annotations

import json
import os
import sqlite3
import threading
from typing import Any, Dict, Iterable, List, Optional

from ..errors import StorageError
from ..storage.repository import FileRepository

#: The queryable columns, mirroring the runtime's secondary indexes.
INDEXED_COLUMNS = ("model_uri", "owner", "resource_uri", "phase_id", "status")


def document_for(instance, journal_seq: int) -> Dict[str, Any]:
    """Build the store document for one instance at one journal position."""
    return {
        "instance_id": instance.instance_id,
        "model_uri": instance.model.uri,
        "owner": instance.owner,
        "resource_uri": instance.resource.uri,
        "phase_id": instance.current_phase_id,
        "status": instance.status.value,
        "journal_seq": journal_seq,
        "state": instance.to_state_dict(),
    }


class InstanceStore:
    """Interface of the instance-state backends.

    ``upsert`` is last-writer-wins by ``instance_id``; ``query`` answers
    equality filters on the :data:`INDEXED_COLUMNS` without scanning
    documents that cannot match (each backend keeps real indexes).

    ``durable`` declares whether documents survive the process.  The
    coordinator only publishes snapshot manifests — and only truncates the
    journal — over durable backends: a manifest is a promise that
    everything at or below its ``journal_seq`` is recoverable *outside*
    the journal, which a RAM-only store cannot keep across a restart.
    """

    backend_name = "abstract"
    durable = True

    def upsert(self, document: Dict[str, Any]) -> None:
        raise NotImplementedError

    def upsert_many(self, documents: Iterable[Dict[str, Any]]) -> int:
        count = 0
        for document in documents:
            self.upsert(document)
            count += 1
        return count

    def get(self, instance_id: str) -> Optional[Dict[str, Any]]:
        raise NotImplementedError

    def all(self) -> List[Dict[str, Any]]:
        raise NotImplementedError

    def ids(self) -> List[str]:
        raise NotImplementedError

    def count(self) -> int:
        raise NotImplementedError

    def query(self, **filters: Any) -> List[Dict[str, Any]]:
        raise NotImplementedError

    def clear(self) -> None:
        raise NotImplementedError

    def close(self) -> None:
        """Release any underlying handles; the store may not be used after."""

    # ------------------------------------------------------------------ shared
    @staticmethod
    def _check_filters(filters: Dict[str, Any]) -> Dict[str, Any]:
        unknown = sorted(set(filters) - set(INDEXED_COLUMNS))
        if unknown:
            raise StorageError(
                "cannot query on {}; indexed columns are {}".format(
                    ", ".join(unknown), ", ".join(INDEXED_COLUMNS)))
        return {key: value for key, value in filters.items() if value is not None}


class MemoryStore(InstanceStore):
    """In-process store: a dict of documents plus per-column index dicts.

    Not durable: useful for tests and same-process rebuilds; a deployment
    using it stays recoverable through the full journal instead of
    snapshots (the coordinator never truncates over this backend).
    """

    backend_name = "memory"
    durable = False

    def __init__(self):
        self._documents: Dict[str, Dict[str, Any]] = {}
        #: column -> key -> set of instance ids.
        self._indexes: Dict[str, Dict[Any, set]] = {
            column: {} for column in INDEXED_COLUMNS}
        self._lock = threading.Lock()

    def upsert(self, document: Dict[str, Any]) -> None:
        instance_id = document["instance_id"]
        with self._lock:
            previous = self._documents.get(instance_id)
            if previous is not None:
                self._unindex(instance_id, previous)
            self._documents[instance_id] = document
            for column in INDEXED_COLUMNS:
                self._indexes[column].setdefault(
                    document.get(column), set()).add(instance_id)

    def get(self, instance_id: str) -> Optional[Dict[str, Any]]:
        with self._lock:
            return self._documents.get(instance_id)

    def all(self) -> List[Dict[str, Any]]:
        with self._lock:
            return [self._documents[key] for key in sorted(self._documents)]

    def ids(self) -> List[str]:
        with self._lock:
            return sorted(self._documents)

    def count(self) -> int:
        with self._lock:
            return len(self._documents)

    def query(self, **filters: Any) -> List[Dict[str, Any]]:
        filters = self._check_filters(filters)
        with self._lock:
            if not filters:
                return [self._documents[key] for key in sorted(self._documents)]
            # Intersect starting from the most selective index bucket.
            buckets = [self._indexes[column].get(value, set())
                       for column, value in filters.items()]
            matched = set.intersection(*sorted(buckets, key=len))
            return [self._documents[key] for key in sorted(matched)]

    def clear(self) -> None:
        with self._lock:
            self._documents.clear()
            for column in INDEXED_COLUMNS:
                self._indexes[column].clear()

    def _unindex(self, instance_id: str, document: Dict[str, Any]) -> None:
        for column in INDEXED_COLUMNS:
            members = self._indexes[column].get(document.get(column))
            if members is not None:
                members.discard(instance_id)


class FileStore(InstanceStore):
    """One JSON file per instance via the data tier's FileRepository.

    Writes are power-safe (``fsync=True`` on the repository, plus one
    directory sync per batch): the coordinator truncates journal segments
    on the strength of these documents, so they must actually be on disk —
    not merely in the page cache — before the manifest claims them.
    """

    backend_name = "file"

    def __init__(self, directory: str):
        self._repository = FileRepository(directory, name="instances", fsync=True)
        for column in INDEXED_COLUMNS:
            self._repository.create_index(
                column, lambda document, column=column: document.get(column))

    @property
    def directory(self) -> str:
        return self._repository.directory

    def upsert(self, document: Dict[str, Any]) -> None:
        self._repository.put(document["instance_id"], document)
        self._repository.sync_directory()

    def upsert_many(self, documents: Iterable[Dict[str, Any]]) -> int:
        count = 0
        for document in documents:
            self._repository.put(document["instance_id"], document)
            count += 1
        if count:
            self._repository.sync_directory()
        return count

    def get(self, instance_id: str) -> Optional[Dict[str, Any]]:
        record = self._repository.get(instance_id)
        return record.document if record is not None else None

    def all(self) -> List[Dict[str, Any]]:
        return [record.document for record in self._repository.all()]

    def ids(self) -> List[str]:
        return self._repository.ids()

    def count(self) -> int:
        return self._repository.count()

    def query(self, **filters: Any) -> List[Dict[str, Any]]:
        filters = self._check_filters(filters)
        if not filters:
            return self.all()
        column, value = next(iter(filters.items()))
        candidates = self._repository.find_by(column, value)
        rest = {c: v for c, v in filters.items() if c != column}
        return [
            record.document for record in candidates
            if all(record.document.get(c) == v for c, v in rest.items())
        ]

    def clear(self) -> None:
        for instance_id in self._repository.ids():
            self._repository.delete(instance_id)


class SQLiteStore(InstanceStore):
    """SQLite-backed store: WAL mode, one indexed column per runtime index."""

    backend_name = "sqlite"

    _SCHEMA = """
        CREATE TABLE IF NOT EXISTS instances (
            instance_id  TEXT PRIMARY KEY,
            model_uri    TEXT NOT NULL,
            owner        TEXT NOT NULL,
            resource_uri TEXT NOT NULL,
            phase_id     TEXT,
            status       TEXT NOT NULL,
            journal_seq  INTEGER NOT NULL,
            state        TEXT NOT NULL
        )
    """

    def __init__(self, path: str):
        self._path = path
        parent = os.path.dirname(os.path.abspath(path))
        os.makedirs(parent, exist_ok=True)
        # One connection, guarded by a lock: the coordinator writes from
        # whatever thread flushes the checkpoint, readers recover at boot.
        self._lock = threading.Lock()
        try:
            self._connection = sqlite3.connect(path, check_same_thread=False)
            self._connection.execute("PRAGMA journal_mode=WAL")
            # FULL, not NORMAL: under NORMAL a WAL commit can roll back on
            # power loss, but the coordinator truncates journal segments on
            # the strength of committed checkpoints — those commits must
            # hold.  Writes are batched (one commit per upsert_many), so the
            # extra fsync is paid per checkpoint, not per instance.
            self._connection.execute("PRAGMA synchronous=FULL")
            self._connection.execute(self._SCHEMA)
            for column in INDEXED_COLUMNS:
                self._connection.execute(
                    "CREATE INDEX IF NOT EXISTS idx_instances_{0} "
                    "ON instances ({0})".format(column))
            self._connection.commit()
        except sqlite3.Error as exc:
            raise StorageError("could not open SQLite store {!r}: {}".format(
                path, exc))

    @property
    def path(self) -> str:
        return self._path

    def upsert(self, document: Dict[str, Any]) -> None:
        self.upsert_many([document])

    def upsert_many(self, documents: Iterable[Dict[str, Any]]) -> int:
        rows = [
            (
                document["instance_id"], document["model_uri"],
                document["owner"], document["resource_uri"],
                document.get("phase_id"), document["status"],
                int(document.get("journal_seq", 0)),
                json.dumps(document["state"], default=str,
                           separators=(",", ":")),
            )
            for document in documents
        ]
        if not rows:
            return 0
        with self._lock:
            try:
                self._connection.executemany(
                    "INSERT OR REPLACE INTO instances "
                    "(instance_id, model_uri, owner, resource_uri, phase_id, "
                    " status, journal_seq, state) VALUES (?,?,?,?,?,?,?,?)",
                    rows)
                self._connection.commit()
            except sqlite3.Error as exc:
                raise StorageError("SQLite upsert failed: {}".format(exc))
        return len(rows)

    def get(self, instance_id: str) -> Optional[Dict[str, Any]]:
        rows = self._select("WHERE instance_id = ?", [instance_id])
        return rows[0] if rows else None

    def all(self) -> List[Dict[str, Any]]:
        return self._select("ORDER BY instance_id", [])

    def ids(self) -> List[str]:
        with self._lock:
            cursor = self._connection.execute(
                "SELECT instance_id FROM instances ORDER BY instance_id")
            return [row[0] for row in cursor.fetchall()]

    def count(self) -> int:
        with self._lock:
            cursor = self._connection.execute("SELECT COUNT(*) FROM instances")
            return int(cursor.fetchone()[0])

    def query(self, **filters: Any) -> List[Dict[str, Any]]:
        filters = self._check_filters(filters)
        if not filters:
            return self.all()
        clauses = " AND ".join("{} = ?".format(column) for column in filters)
        return self._select("WHERE {} ORDER BY instance_id".format(clauses),
                            list(filters.values()))

    def clear(self) -> None:
        with self._lock:
            self._connection.execute("DELETE FROM instances")
            self._connection.commit()

    def close(self) -> None:
        with self._lock:
            try:
                self._connection.close()
            except sqlite3.Error:
                pass

    def _select(self, suffix: str, parameters: List[Any]) -> List[Dict[str, Any]]:
        with self._lock:
            try:
                cursor = self._connection.execute(
                    "SELECT instance_id, model_uri, owner, resource_uri, "
                    "phase_id, status, journal_seq, state FROM instances "
                    + suffix, parameters)
                rows = cursor.fetchall()
            except sqlite3.Error as exc:
                raise StorageError("SQLite query failed: {}".format(exc))
        return [
            {
                "instance_id": row[0], "model_uri": row[1], "owner": row[2],
                "resource_uri": row[3], "phase_id": row[4], "status": row[5],
                "journal_seq": int(row[6]), "state": json.loads(row[7]),
            }
            for row in rows
        ]
