"""Crash recovery: rebuild a lifecycle runtime from snapshot + journal.

:func:`recover_into` takes a *freshly built, empty* manager (single or
sharded — recovery only uses the shared facade) and an empty execution log,
and rebuilds the pre-crash state in three steps:

1. **Snapshot restore.**  The newest manifest provides the design-time
   models (re-installed version by version, in publication order) and the
   execution-log state; the instance store provides one full state document
   per instance.  Everything is installed through the silent recovery hooks
   (:meth:`~repro.runtime.manager.LifecycleManager.install_model` /
   ``install_instance``) — recovered state is *not* re-published on the
   bus, so an attached coordinator would not journal it again.
2. **Journal replay.**  Records with ``seq > manifest.journal_seq`` are
   applied in order.  Replay is a *state reducer*, not a re-execution: a
   ``instance.phase_entered`` record moves the token via
   ``record_entry`` — it does **not** re-dispatch phase actions, so
   recovery has no side effects and is deterministic for a given journal.
   Each restored instance document remembers the journal position it was
   flushed at (``journal_seq``); records at or below that position are
   skipped for that instance, which makes replay idempotent even when a
   crash interleaved a store flush with the manifest publish.
3. **Log append.**  Every replayed record is appended to the execution
   log, whose restored sequence counter continues the pre-crash numbering —
   after recovery the log's contents are identical to the pre-crash log.

Pending change proposals are the one piece of state that does not survive:
they are conversational (designer asked, owner has not decided) and are
simply re-opened after a restart.  Decided proposals already mutated their
instances, which *is* recovered.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from datetime import datetime
from typing import Any, Dict, List

from ..errors import GeleeError
from ..model.lifecycle import LifecycleModel
from ..model.annotation import Annotation
from ..resources.descriptor import ResourceDescriptor
from ..runtime.instance import LifecycleInstance
from .journal import Journal, JournalRecord
from .snapshot import SnapshotStore
from .store import InstanceStore

#: Event kinds replay applies to instance state; everything else is either
#: design-time (handled separately), derived (``instance.completed``,
#: ``instance.phase_left``) or informational (``action.*`` statuses).
MUTATING_KINDS = frozenset((
    "instance.created",
    "instance.phase_entered",
    "instance.annotated",
    "instance.model_changed",
    "propagation.accepted",
))

#: Timer events replayed into a :class:`~repro.scheduler.timers.TimerService`
#: when one is passed to :func:`recover_into`.  ``timer.fired`` removes the
#: timer (a recurring timer's next occurrence arrives as its own
#: ``timer.scheduled`` record), so replay is a plain state reducer.
TIMER_KINDS = frozenset((
    "timer.scheduled",
    "timer.cancelled",
    "timer.fired",
))


@dataclass
class RecoveryReport:
    """What :func:`recover_into` rebuilt, for logs and the status endpoint."""

    snapshot_seq: int = 0
    models_restored: int = 0
    instances_restored: int = 0
    log_entries_restored: int = 0
    records_replayed: int = 0
    records_skipped: int = 0
    instances_created_from_journal: int = 0
    invocations_interrupted: int = 0
    timers_restored: int = 0
    timer_records_replayed: int = 0
    duration_ms: float = 0.0
    warnings: List[str] = field(default_factory=list)
    #: Instances the journal tail mutated beyond their stored documents.
    #: Whoever attaches a coordinator next MUST mark these dirty (the
    #: service tier does), or the next checkpoint would advance the
    #: manifest past their records while the store still holds stale state.
    touched_instance_ids: List[str] = field(default_factory=list)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "snapshot_seq": self.snapshot_seq,
            "models_restored": self.models_restored,
            "instances_restored": self.instances_restored,
            "log_entries_restored": self.log_entries_restored,
            "records_replayed": self.records_replayed,
            "records_skipped": self.records_skipped,
            "instances_created_from_journal": self.instances_created_from_journal,
            "invocations_interrupted": self.invocations_interrupted,
            "timers_restored": self.timers_restored,
            "timer_records_replayed": self.timer_records_replayed,
            "instances_touched_by_replay": len(self.touched_instance_ids),
            "duration_ms": self.duration_ms,
            "warnings": list(self.warnings),
        }


class JournalReplayer:
    """Incremental, side-effect-free application of journal records.

    The reducer half of recovery, factored out so it can run in two modes:

    * **one-shot** — :func:`recover_into` drains the whole journal tail at
      boot;
    * **incremental** — a :class:`~repro.replication.ReadReplica` holds one
      replayer for its lifetime and feeds it stream batches as they arrive,
      keeping a warm standby continuously in sync.

    The replayer owns the ``covered`` map (instance id → journal seq its
    restored document already contains, making replay idempotent) and the
    ``touched`` set (instances mutated beyond their stored documents, which
    the next checkpoint must re-flush).  It never publishes on any bus:
    every mutation goes through the silent install/record hooks, so an
    attached coordinator — or a replica's own dormant scheduler — observes
    nothing.
    """

    def __init__(self, manager, log, timers=None, report: RecoveryReport = None):
        self._manager = manager
        self._log = log
        self._timers = timers
        self.report = report if report is not None else RecoveryReport()
        #: instance id -> journal seq its restored document already covers.
        self._covered: Dict[str, int] = {}
        self._touched: Dict[str, bool] = {}
        #: Highest journal seq applied so far (replication lag tracking).
        self.applied_seq = 0

    def cover(self, instance_id: str, seq: int) -> None:
        """Mark an instance's restored document as covering ``seq``."""
        self._covered[instance_id] = seq

    def touched_instance_ids(self) -> List[str]:
        return list(self._touched)

    def apply(self, record: JournalRecord) -> bool:
        """Reduce one journal record into the runtime; ``True`` if it
        mutated instance/timer state (vs. being informational)."""
        self._log.record(record.kind, record.event_timestamp, record.subject_id,
                         record.actor, dict(record.payload))
        self.report.records_replayed += 1
        self.applied_seq = max(self.applied_seq, record.seq)
        if record.kind in TIMER_KINDS:
            if self._timers is not None:
                _apply_timer(self._timers, record)
                self.report.timer_records_replayed += 1
                return True
            return False
        if record.kind not in MUTATING_KINDS and not record.kind.startswith("model."):
            return False
        if self._covered.get(record.subject_id, 0) >= record.seq:
            self.report.records_skipped += 1
            return False
        try:
            _apply(self._manager, record, self.report)
        except GeleeError as exc:
            self.report.warnings.append("record #{} ({}): {}".format(
                record.seq, record.kind, exc))
            return False
        if record.kind in MUTATING_KINDS:
            self._touched[record.subject_id] = True
        return True


def recover_into(manager, log, journal: Journal, snapshots: SnapshotStore,
                 store: InstanceStore, timers=None) -> RecoveryReport:
    """Rebuild ``manager`` and ``log`` from the durable state on disk.

    ``manager`` must be empty (fresh environment, no models or instances);
    pass the same shard count as the crashed deployment so instance ids
    hash to the same shards — routing is a pure function of the id, so the
    rebuilt layout matches the original.

    ``timers`` is an optional, empty
    :class:`~repro.scheduler.timers.TimerService`: the manifest's pending
    set is restored into it and ``timer.*`` journal records are replayed
    through its silent hooks, so deadline, retry and maintenance schedules
    survive the restart alongside the instances they drive.
    """
    started = time.perf_counter()
    report = RecoveryReport()
    replayer = JournalReplayer(manager, log, timers=timers, report=report)
    base_seq = restore_snapshot(manager, log, snapshots.latest(), store.all(),
                                timers=timers, replayer=replayer)

    for record in journal.read(after_seq=base_seq):
        replayer.apply(record)

    interrupted = fail_interrupted_invocations(manager, report=report)
    report.touched_instance_ids = replayer.touched_instance_ids()
    for instance_id in interrupted:
        if instance_id not in report.touched_instance_ids:
            report.touched_instance_ids.append(instance_id)
    report.duration_ms = round((time.perf_counter() - started) * 1000, 3)
    return report


#: Error string stamped onto invocations that were in flight when the node
#: died.  Deterministic so a recovered runtime (or a promoted replica) is
#: bit-identical regardless of *when* the crash interrupted the round-trip.
INTERRUPTED_ERROR = "interrupted: node restarted while the action was in flight"


def fail_interrupted_invocations(manager, report: RecoveryReport = None,
                                 error: str = INTERRUPTED_ERROR) -> List[str]:
    """Deterministically fail every non-terminal action invocation.

    Completion-based dispatch persists an invocation as ``RUNNING`` the
    moment it is submitted; if the node dies before the completion callback
    runs, the recovered state document still says ``RUNNING`` even though no
    web service round-trip is in flight any more.  Recovery (and replica
    promotion — see :meth:`~repro.replication.ReadReplica.promote`) resolves
    these orphans by failing them with a fixed :data:`INTERRUPTED_ERROR`, so
    the scheduler's retry policies see an ordinary failure and can re-invoke.

    Returns the ids of instances that owned at least one interrupted
    invocation — their state documents changed and must be re-flushed.
    """
    from ..actions.invocation import ActionStatus, StatusMessage

    touched: List[str] = []
    count = 0
    for instance in manager.instances():
        dirty = False
        for invocation in instance.all_invocations():
            if invocation.status.is_terminal:
                continue
            now = manager.clock.now()
            invocation.record(StatusMessage(
                status=ActionStatus.FAILED.value, detail=error, timestamp=now))
            invocation.error = error
            if invocation.finished_at is None:
                invocation.finished_at = now
            count += 1
            dirty = True
        if dirty:
            touched.append(instance.instance_id)
    if report is not None:
        report.invocations_interrupted += count
    return touched


def restore_snapshot(manager, log, manifest, documents, timers=None,
                     replayer: JournalReplayer = None) -> int:
    """Restore a snapshot (manifest + instance documents) into ``manager``.

    Returns the journal sequence number the snapshot covers (0 without a
    manifest).  Shared by boot recovery and replication bootstrap: the
    ``manifest`` may come from the local snapshot store or shipped from a
    primary, and ``documents`` are the instance store documents either way.
    The coverage of each restored document is recorded on ``replayer`` so
    subsequent journal replay skips what the documents already contain.
    """
    report = replayer.report if replayer is not None else RecoveryReport()
    base_seq = 0
    if manifest is not None:
        base_seq = manifest.journal_seq
        report.snapshot_seq = base_seq
        for group in manifest.models:
            for document in group.get("versions", []):
                if manager.install_model(LifecycleModel.from_dict(document)):
                    report.models_restored += 1
        log.restore_state(manifest.log)
        report.log_entries_restored = len(manifest.log.get("entries", []))
        if timers is not None and manifest.scheduler:
            report.timers_restored = timers.restore_state(manifest.scheduler)

    # Instance documents can be *newer* than the manifest (a crash between
    # the store flush and the manifest publish); their journal_seq makes
    # replay skip what they already contain.
    for document in documents:
        instance = LifecycleInstance.from_state_dict(document["state"])
        manager.install_instance(instance)
        if replayer is not None:
            replayer.cover(instance.instance_id,
                           int(document.get("journal_seq", base_seq)))
        report.instances_restored += 1
    if replayer is not None:
        replayer.applied_seq = max(replayer.applied_seq, base_seq)
    return base_seq


# ---------------------------------------------------------------------- reducer
def _apply(manager, record: JournalRecord, report: RecoveryReport) -> None:
    kind = record.kind
    state = record.state or {}

    if kind in ("model.published", "model.updated"):
        document = state.get("model")
        if document is None:
            report.warnings.append(
                "record #{}: model event without embedded document".format(record.seq))
            return
        # The sharded runtime journals one publish per shard; install_model
        # is idempotent per version, so replaying all of them is safe.
        if manager.install_model(LifecycleModel.from_dict(document)):
            report.models_restored += 1
        return

    if kind == "instance.created":
        creation = state.get("instance")
        if creation is None:
            report.warnings.append(
                "record #{}: instance.created without creation state".format(record.seq))
            return
        model = _resolve_model(manager, creation["model_uri"],
                               creation.get("model_version"))
        instance = LifecycleInstance(
            model=model.copy(),
            resource=ResourceDescriptor.from_dict(creation["resource"]),
            owner=creation["owner"],
            created_at=record.event_timestamp,
            instance_id=record.subject_id,
            token_owners=list(creation.get("token_owners") or []),
            metadata=dict(creation.get("metadata") or {}),
        )
        for call_id, values in (creation.get("instantiation_parameters") or {}).items():
            instance.bind_instantiation_parameters(call_id, values)
        manager.install_instance(instance)
        report.instances_created_from_journal += 1
        return

    if kind == "instance.phase_entered":
        instance = manager.instance(record.subject_id)
        instance.record_entry(record.payload["phase_id"], record.event_timestamp,
                              record.actor or "", record.payload.get("followed_model", True))
        manager.reindex_instance(record.subject_id)
        return

    if kind == "instance.annotated":
        instance = manager.instance(record.subject_id)
        instance.annotate(Annotation(
            text=record.payload.get("text", ""),
            author=record.actor or "",
            created_at=record.event_timestamp,
            phase_id=record.payload.get("phase_id"),
            kind=record.payload.get("kind", "note"),
        ))
        return

    if kind in ("instance.model_changed", "propagation.accepted"):
        document = state.get("model")
        if document is None:
            report.warnings.append(
                "record #{}: {} without embedded model".format(record.seq, kind))
            return
        instance = manager.instance(record.subject_id)
        target = record.payload.get("target_phase")
        if target is None:
            target = record.payload.get("target_phase_id")
        instance.replace_model(LifecycleModel.from_dict(document).copy(), target)
        manager.reindex_instance(record.subject_id)
        return


def _apply_timer(timers, record: JournalRecord) -> None:
    """Reduce one ``timer.*`` record into the timer service (silently)."""
    if record.kind == "timer.scheduled":
        from ..scheduler.timers import Timer

        payload = record.payload
        timers.install_timer(Timer(
            timer_id=record.subject_id,
            fire_at=datetime.fromisoformat(payload["fire_at"]),
            kind=payload.get("timer_kind", "user"),
            subject_id=payload.get("timer_subject_id", ""),
            payload=dict(payload.get("timer_payload") or {}),
            interval_seconds=payload.get("interval_seconds"),
            attempts=int(payload.get("attempts", 0)),
        ))
    else:  # timer.cancelled / timer.fired both remove the pending timer.
        timers.remove_timer(record.subject_id)


def _resolve_model(manager, model_uri: str, version):
    """The published model a recovered instance copied — exact version when
    still installed, else the latest (a later ``model_changed`` record will
    correct the copy anyway)."""
    try:
        return manager.model(model_uri, version=version)
    except GeleeError:
        return manager.model(model_uri)
