"""Durable runtime state: write-ahead journal, snapshots, crash recovery.

The Gelee kernel manages long-lived resources — EU project deliverables
live for months — so runtime state must outlive any single process.  This
package makes the (sharded) runtime durable and restartable:

* :mod:`~repro.persistence.journal` — a segmented JSONL write-ahead log of
  every kernel event, with configurable fsync and torn-tail repair;
* :mod:`~repro.persistence.snapshot` — atomic point-in-time manifests of
  model / log state that bound replay length;
* :mod:`~repro.persistence.store` — pluggable instance-state backends
  (:class:`MemoryStore`, :class:`FileStore`, :class:`SQLiteStore`) behind
  one :class:`InstanceStore` interface, indexed like the runtime;
* :mod:`~repro.persistence.coordinator` — the bus subscriber that feeds
  the journal and materialises checkpoints;
* :mod:`~repro.persistence.recovery` — snapshot restore plus journal-tail
  replay into a fresh manager.

Typical wiring (the service tier does this from one knob,
``GeleeService(..., persistence=PersistenceConfig(directory))``)::

    config = PersistenceConfig("/var/lib/gelee", backend="sqlite")
    journal, snapshots, store = (config.open_journal(),
                                 config.open_snapshots(), config.open_store())
    report = recover_into(manager, log, journal, snapshots, store)
    coordinator = PersistenceCoordinator(manager, log, journal, snapshots, store)
    ...
    coordinator.checkpoint()   # periodically, or POST /v2/runtime/persistence:checkpoint
"""

from .coordinator import BACKENDS, PersistenceConfig, PersistenceCoordinator
from .journal import (
    FSYNC_POLICIES,
    Journal,
    JournalRecord,
    list_segments,
    scan_last_seq,
    scan_oldest_seq,
    scan_records,
)
from .recovery import (
    JournalReplayer,
    RecoveryReport,
    recover_into,
    restore_snapshot,
)
from .snapshot import SnapshotManifest, SnapshotStore, capture_manifest
from .store import (
    INDEXED_COLUMNS,
    FileStore,
    InstanceStore,
    MemoryStore,
    SQLiteStore,
    document_for,
)

__all__ = [
    "BACKENDS",
    "FSYNC_POLICIES",
    "INDEXED_COLUMNS",
    "FileStore",
    "InstanceStore",
    "Journal",
    "JournalRecord",
    "JournalReplayer",
    "MemoryStore",
    "PersistenceConfig",
    "PersistenceCoordinator",
    "RecoveryReport",
    "SQLiteStore",
    "SnapshotManifest",
    "SnapshotStore",
    "capture_manifest",
    "document_for",
    "list_segments",
    "recover_into",
    "restore_snapshot",
    "scan_last_seq",
    "scan_oldest_seq",
    "scan_records",
]
