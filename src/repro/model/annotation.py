"""Annotations.

"Annotations are in particular used to explain why a lifecycle owner does not
follow the standard flow" (paper §IV.A).  They are free-text notes attached to
a lifecycle instance (optionally to a specific phase or move) by a user, and
they show up in the execution log and in the monitoring cockpit.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from datetime import datetime
from typing import Any, Dict, Optional

from ..identifiers import new_id


@dataclass
class Annotation:
    """A note left by a user on a lifecycle (instance or model).

    Attributes:
        text: the note itself.
        author: user id of the author.
        created_at: timestamp from the kernel clock.
        phase_id: phase the note refers to, if any.
        kind: free classification; the runtime uses ``"deviation"`` for notes
            that explain off-model moves and ``"note"`` otherwise.
    """

    text: str
    author: str
    created_at: datetime
    phase_id: Optional[str] = None
    kind: str = "note"
    annotation_id: str = field(default_factory=lambda: new_id("ann"))

    def to_dict(self) -> Dict[str, Any]:
        return {
            "annotation_id": self.annotation_id,
            "text": self.text,
            "author": self.author,
            "created_at": self.created_at.isoformat(),
            "phase_id": self.phase_id,
            "kind": self.kind,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "Annotation":
        return cls(
            text=data["text"],
            author=data["author"],
            created_at=datetime.fromisoformat(data["created_at"]),
            phase_id=data.get("phase_id"),
            kind=data.get("kind", "note"),
            annotation_id=data.get("annotation_id") or new_id("ann"),
        )
