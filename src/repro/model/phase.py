"""Phases: the states of a resource lifecycle.

"The phase describes the stage in life in which the resource is" (§IV.A).
A phase may carry actions executed on entry, a deadline, and free-form
metadata.  End phases are "phases with no associated actions, and their
purpose is only to denote that the lifecycle instance is complete in a
certain final state" (§IV.B).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from ..errors import ModelError
from ..identifiers import slugify
from .actions import ActionCall
from .deadline import Deadline


@dataclass
class Phase:
    """A single phase (state) of a lifecycle model.

    Attributes:
        phase_id: identifier unique within the lifecycle (Table I ``id``).
        name: display name ("Internal review").
        actions: action calls executed, in parallel, upon entering the phase.
        terminal: True when the phase is an end phase.
        description: optional documentation shown in the designer/cockpit.
        deadline: optional relative deadline for leaving the phase.
        metadata: free-form annotations (not interpreted by the kernel).
    """

    phase_id: str
    name: str = ""
    actions: List[ActionCall] = field(default_factory=list)
    terminal: bool = False
    description: str = ""
    deadline: Optional[Deadline] = None
    metadata: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self):
        if not self.phase_id:
            raise ModelError("a phase needs a non-empty id")
        if not self.name:
            self.name = self.phase_id
        if self.terminal and self.actions:
            raise ModelError(
                "end phase {!r} must not have actions (paper §IV.B)".format(self.phase_id)
            )

    @classmethod
    def named(cls, name: str, **kwargs) -> "Phase":
        """Create a phase whose id is derived from its display name."""
        return cls(phase_id=slugify(name), name=name, **kwargs)

    @property
    def is_empty(self) -> bool:
        """True when the phase has no actions (useful for pure monitoring phases)."""
        return not self.actions

    def add_action(self, call: ActionCall) -> "Phase":
        """Attach an action call; rejected on terminal phases."""
        if self.terminal:
            raise ModelError(
                "cannot add actions to end phase {!r} (paper §IV.B)".format(self.phase_id)
            )
        self.actions.append(call)
        return self

    def action_uris(self) -> List[str]:
        return [call.action_uri for call in self.actions]

    def copy(self) -> "Phase":
        return Phase(
            phase_id=self.phase_id,
            name=self.name,
            actions=[call.copy() for call in self.actions],
            terminal=self.terminal,
            description=self.description,
            deadline=self.deadline.copy() if self.deadline else None,
            metadata=dict(self.metadata),
        )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "phase_id": self.phase_id,
            "name": self.name,
            "actions": [call.to_dict() for call in self.actions],
            "terminal": self.terminal,
            "description": self.description,
            "deadline": self.deadline.to_dict() if self.deadline else None,
            "metadata": dict(self.metadata),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "Phase":
        deadline_data = data.get("deadline")
        return cls(
            phase_id=data["phase_id"],
            name=data.get("name", data["phase_id"]),
            actions=[ActionCall.from_dict(item) for item in data.get("actions", [])],
            terminal=bool(data.get("terminal", False)),
            description=data.get("description", ""),
            deadline=Deadline.from_dict(deadline_data) if deadline_data else None,
            metadata=dict(data.get("metadata", {})),
        )
