"""Transitions: the *suggested* evolutions between phases.

Table I of the paper lists a ``transition_list`` whose entries connect
phases; the special source ``BEGIN`` marks initial phases.  Because Gelee's
execution is descriptive rather than prescriptive, transitions are
suggestions: the lifecycle owner can always move the token elsewhere, and the
runtime only records whether a move followed the modelled transitions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict

BEGIN = "BEGIN"
END = "END"


@dataclass(frozen=True)
class Transition:
    """A directed edge of the lifecycle graph.

    Attributes:
        source: phase id, or :data:`BEGIN` for an initial transition.
        target: phase id, or :data:`END` to mark explicit completion edges.
        label: optional display label on the edge.
        metadata: free-form data (e.g. who suggested the transition).
    """

    source: str
    target: str
    label: str = ""
    metadata: tuple = field(default_factory=tuple)

    @property
    def is_initial(self) -> bool:
        return self.source == BEGIN

    @property
    def is_final(self) -> bool:
        return self.target == END

    def to_dict(self) -> Dict[str, Any]:
        return {
            "source": self.source,
            "target": self.target,
            "label": self.label,
            "metadata": dict(self.metadata),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "Transition":
        return cls(
            source=data["source"],
            target=data["target"],
            label=data.get("label", ""),
            metadata=tuple(sorted(dict(data.get("metadata", {})).items())),
        )
