"""Version information for lifecycle models and action types.

Both Table I and Table II carry a ``version_info`` block with version number,
creator, and creation date.  The light-coupling between models and instances
relies on versions: a running instance remembers which model *version* it was
started from, and change propagation (paper §IV.B) offers owners a move to a
newer version.
"""

from __future__ import annotations

from dataclasses import dataclass
from datetime import date, datetime
from typing import Any, Dict, Optional


@dataclass(frozen=True)
class VersionInfo:
    """The ``version_info`` block of a definition."""

    version_number: str = "1.0"
    created_by: str = ""
    creation_date: Optional[date] = None

    def bump(self, created_by: str = None, creation_date: date = None) -> "VersionInfo":
        """Return the next minor version (``1.0`` -> ``1.1``)."""
        major, _, minor = self.version_number.partition(".")
        try:
            next_minor = int(minor or 0) + 1
            next_number = "{}.{}".format(int(major), next_minor)
        except ValueError:
            next_number = self.version_number + ".1"
        return VersionInfo(
            version_number=next_number,
            created_by=created_by if created_by is not None else self.created_by,
            creation_date=creation_date if creation_date is not None else self.creation_date,
        )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "version_number": self.version_number,
            "created_by": self.created_by,
            "creation_date": self.creation_date.isoformat() if self.creation_date else None,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "VersionInfo":
        raw_date = data.get("creation_date")
        parsed_date = None
        if raw_date:
            if isinstance(raw_date, date) and not isinstance(raw_date, datetime):
                parsed_date = raw_date
            else:
                parsed_date = date.fromisoformat(str(raw_date)[:10])
        return cls(
            version_number=str(data.get("version_number", "1.0")),
            created_by=data.get("created_by", ""),
            creation_date=parsed_date,
        )

    @classmethod
    def parse_paper_date(cls, version_number: str, created_by: str, paper_date: str) -> "VersionInfo":
        """Build version info from the paper's ``dd/mm/yyyy`` date format (Table I)."""
        parsed = None
        if paper_date:
            day, month, year = paper_date.split("/")
            parsed = date(int(year), int(month), int(day))
        return cls(version_number=version_number, created_by=created_by, creation_date=parsed)
