"""Deadlines and time constraints.

The paper mentions that "the model includes several other features not
discussed in detail here, such as deadlines and time constraints" (§IV.A) and
the monitoring requirement asks for "particular attention to delays"
(§II.B-4).  We model a deadline as either:

* a **relative** allowance — the resource should leave the phase within
  ``days`` of entering it, or
* an **absolute** due date — the phase should be left before ``due``.

The runtime records when phases are entered/left; the monitoring cockpit
compares those timestamps against deadlines to report delays.
"""

from __future__ import annotations

from dataclasses import dataclass
from datetime import datetime, timedelta
from typing import Any, Dict, Optional

from ..errors import ModelError


@dataclass
class Deadline:
    """Deadline attached to a phase (or to a whole lifecycle).

    Exactly one of ``days`` (relative) or ``due`` (absolute) must be set.
    """

    days: Optional[float] = None
    due: Optional[datetime] = None
    description: str = ""

    def __post_init__(self):
        if (self.days is None) == (self.due is None):
            raise ModelError("a deadline needs exactly one of 'days' or 'due'")
        if self.days is not None and self.days <= 0:
            raise ModelError("a relative deadline must be a positive number of days")

    @property
    def is_relative(self) -> bool:
        return self.days is not None

    def due_at(self, entered_at: datetime) -> datetime:
        """Return the absolute moment by which the phase should be left."""
        if self.due is not None:
            return self.due
        return entered_at + timedelta(days=float(self.days))

    def overdue_by(self, entered_at: datetime, now: datetime) -> timedelta:
        """Return how late we are (zero or negative when still on time)."""
        return now - self.due_at(entered_at)

    def is_overdue(self, entered_at: datetime, now: datetime) -> bool:
        return self.overdue_by(entered_at, now) > timedelta(0)

    def copy(self) -> "Deadline":
        return Deadline(days=self.days, due=self.due, description=self.description)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "days": self.days,
            "due": self.due.isoformat() if self.due else None,
            "description": self.description,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "Deadline":
        due_raw = data.get("due")
        due = datetime.fromisoformat(due_raw) if due_raw else None
        return cls(days=data.get("days"), due=due, description=data.get("description", ""))
