"""Deadlines and time constraints.

The paper mentions that "the model includes several other features not
discussed in detail here, such as deadlines and time constraints" (§IV.A) and
the monitoring requirement asks for "particular attention to delays"
(§II.B-4).  We model a deadline as either:

* a **relative** allowance — the resource should leave the phase within
  ``days`` of entering it (``days=0`` means "due immediately on entry",
  useful for phases that only exist to be escalated out of), or
* an **absolute** due date — the phase should be left before ``due``.

The runtime records when phases are entered/left; the monitoring cockpit
compares those timestamps against deadlines to report delays, and the
scheduler (:mod:`repro.scheduler`) arms a timer at :meth:`Deadline.due_at`
on phase entry and runs the deadline's **escalation policy** when it
expires:

* ``"notify"`` (default) — emit ``deadline.escalated`` and annotate the
  instance; purely informational, the human stays in the driver's seat;
* ``"advance"`` — additionally move the token along the designated
  *timeout transition* to :attr:`Deadline.timeout_to` (model it with
  :meth:`LifecycleBuilder.timeout_flow` so the move counts as modelled);
* ``"invoke"`` — additionally dispatch one of the phase's bound action
  calls (:attr:`Deadline.escalate_call_id`, defaulting to the phase's
  first call).

Boundary semantics are inclusive-at-expiry: the deadline *expires* at the
exact instant :meth:`due_at` returns — a timer due then fires then — while
:meth:`is_overdue` stays strict (at the boundary the instance is not yet
*late*; ``overdue_by`` is zero).
"""

from __future__ import annotations

from dataclasses import dataclass
from datetime import datetime, timedelta
from typing import Any, Dict, Optional

from ..errors import ModelError

#: Valid escalation policies a deadline can carry.
ESCALATION_POLICIES = ("notify", "advance", "invoke")


@dataclass
class Deadline:
    """Deadline attached to a phase (or to a whole lifecycle).

    Exactly one of ``days`` (relative) or ``due`` (absolute) must be set.
    """

    days: Optional[float] = None
    due: Optional[datetime] = None
    description: str = ""
    #: What the scheduler does when the deadline expires.
    escalation: str = "notify"
    #: Target phase of the timeout transition (``escalation="advance"``).
    timeout_to: Optional[str] = None
    #: Action call dispatched on expiry (``escalation="invoke"``); defaults
    #: to the phase's first call when omitted.
    escalate_call_id: Optional[str] = None

    def __post_init__(self):
        if (self.days is None) == (self.due is None):
            raise ModelError("a deadline needs exactly one of 'days' or 'due'")
        if self.days is not None and self.days < 0:
            raise ModelError("a relative deadline must not be a negative number of days")
        if self.escalation not in ESCALATION_POLICIES:
            raise ModelError(
                "unknown deadline escalation {!r}; expected one of {}".format(
                    self.escalation, ", ".join(ESCALATION_POLICIES)))
        if self.escalation == "advance" and not self.timeout_to:
            raise ModelError(
                "a deadline with escalation 'advance' must designate a "
                "timeout_to phase")
        if self.timeout_to and self.escalation != "advance":
            raise ModelError(
                "timeout_to only applies to escalation 'advance'")

    @property
    def is_relative(self) -> bool:
        return self.days is not None

    def due_at(self, entered_at: datetime) -> datetime:
        """Return the absolute moment at which the deadline expires."""
        if self.due is not None:
            return self.due
        return entered_at + timedelta(days=float(self.days))

    def overdue_by(self, entered_at: datetime, now: datetime) -> timedelta:
        """Return how late we are (zero or negative when still on time)."""
        return now - self.due_at(entered_at)

    def is_overdue(self, entered_at: datetime, now: datetime) -> bool:
        """Strictly past the due instant (at the boundary we are not *late*)."""
        return self.overdue_by(entered_at, now) > timedelta(0)

    def is_expired(self, entered_at: datetime, now: datetime) -> bool:
        """At or past the due instant — when a deadline timer should fire."""
        return self.overdue_by(entered_at, now) >= timedelta(0)

    def copy(self) -> "Deadline":
        return Deadline(days=self.days, due=self.due, description=self.description,
                        escalation=self.escalation, timeout_to=self.timeout_to,
                        escalate_call_id=self.escalate_call_id)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "days": self.days,
            "due": self.due.isoformat() if self.due else None,
            "description": self.description,
            "escalation": self.escalation,
            "timeout_to": self.timeout_to,
            "escalate_call_id": self.escalate_call_id,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "Deadline":
        due_raw = data.get("due")
        due = datetime.fromisoformat(due_raw) if due_raw else None
        return cls(days=data.get("days"), due=due,
                   description=data.get("description", ""),
                   escalation=data.get("escalation", "notify"),
                   timeout_to=data.get("timeout_to"),
                   escalate_call_id=data.get("escalate_call_id"))
