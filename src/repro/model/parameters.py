"""Action parameters and their binding times.

Table II of the paper defines, for every parameter of an action type, a
``bindingTime`` attribute with the values ``def | inst | call | any`` plus a
``required`` flag.  The binding time states *when* a value for the parameter
must be supplied:

* ``def``  — at lifecycle **definition** time (by the lifecycle composer),
* ``inst`` — at lifecycle **instantiation** time (by the instance owner),
* ``call`` — when the phase is entered and the action is actually **called**,
* ``any``  — whenever; the latest value supplied before the call wins.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Dict, Iterable, List, Optional

from ..errors import ParameterBindingError


class BindingTime(str, Enum):
    """When a parameter value has to be bound (paper Table II)."""

    DEFINITION = "def"
    INSTANTIATION = "inst"
    CALL = "call"
    ANY = "any"

    @classmethod
    def parse(cls, raw: str) -> "BindingTime":
        """Parse the XML token used by the paper (``def/inst/call/any``)."""
        try:
            return cls(raw.strip().lower())
        except ValueError:
            raise ParameterBindingError(
                "unknown bindingTime {!r}; expected one of def, inst, call, any".format(raw)
            ) from None

    def allows(self, stage: "BindingTime") -> bool:
        """Return True if a parameter with this binding time may be bound at ``stage``.

        ``any`` parameters may be bound at every stage.  The others may be
        bound at their own stage or *earlier* (a composer may fix an ``inst``
        parameter already at definition time — the paper's flexibility
        compromise), but never later than their stage.
        """
        order = {
            BindingTime.DEFINITION: 0,
            BindingTime.INSTANTIATION: 1,
            BindingTime.CALL: 2,
        }
        if self is BindingTime.ANY or stage is BindingTime.ANY:
            return True
        return order[stage] <= order[self]


@dataclass(frozen=True)
class ParameterDefinition:
    """Declaration of one parameter of an action type.

    Attributes:
        name: parameter name, unique within the action type.
        binding_time: when the value has to be provided.
        required: whether the action can run without a value.
        default: value used when the parameter is optional and unbound.
        description: human-readable explanation shown in the designer.
    """

    name: str
    binding_time: BindingTime = BindingTime.ANY
    required: bool = False
    default: Any = None
    description: str = ""

    def validate_value(self, value: Any) -> Any:
        """Light validation hook; values are opaque to the model."""
        if self.required and value is None:
            raise ParameterBindingError(
                "parameter {!r} is required but no value was provided".format(self.name)
            )
        return value


@dataclass
class ParameterValue:
    """A concrete value bound to a parameter at some stage."""

    name: str
    value: Any
    bound_at: BindingTime = BindingTime.DEFINITION

    def copy(self) -> "ParameterValue":
        return ParameterValue(self.name, self.value, self.bound_at)


class ParameterSet:
    """Accumulates parameter bindings across stages and resolves final values.

    Later stages override earlier ones (definition < instantiation < call),
    mirroring the paper's statement that parameters "can be fixed at
    definition time, instantiated at lifecycle instantiation time, or as the
    corresponding phase is entered".
    """

    _STAGE_ORDER = {
        BindingTime.DEFINITION: 0,
        BindingTime.INSTANTIATION: 1,
        BindingTime.CALL: 2,
        BindingTime.ANY: 3,
    }

    def __init__(self, definitions: Iterable[ParameterDefinition] = ()):
        self._definitions: Dict[str, ParameterDefinition] = {d.name: d for d in definitions}
        self._values: Dict[str, ParameterValue] = {}

    @property
    def definitions(self) -> List[ParameterDefinition]:
        return list(self._definitions.values())

    def definition(self, name: str) -> Optional[ParameterDefinition]:
        return self._definitions.get(name)

    def bind(self, name: str, value: Any, stage: BindingTime) -> None:
        """Bind ``value`` to parameter ``name`` at ``stage``.

        Unknown parameters are accepted only if the set has no declared
        definitions at all (free-form actions); otherwise they are rejected to
        catch typos early.  A binding at an earlier stage never overrides one
        made at a later stage.
        """
        definition = self._definitions.get(name)
        if definition is None and self._definitions:
            raise ParameterBindingError("action has no parameter named {!r}".format(name))
        if definition is not None and not definition.binding_time.allows(stage):
            raise ParameterBindingError(
                "parameter {!r} must be bound at {!r}, not at {!r}".format(
                    name, definition.binding_time.value, stage.value
                )
            )
        existing = self._values.get(name)
        if existing is not None and self._STAGE_ORDER[existing.bound_at] > self._STAGE_ORDER[stage]:
            return
        self._values[name] = ParameterValue(name, value, stage)

    def resolve(self) -> Dict[str, Any]:
        """Return the effective parameter dictionary, applying defaults.

        Raises :class:`ParameterBindingError` when a required parameter is
        still unbound.
        """
        resolved: Dict[str, Any] = {}
        for name, definition in self._definitions.items():
            if name in self._values:
                resolved[name] = self._values[name].value
            elif definition.default is not None:
                resolved[name] = definition.default
            elif definition.required:
                raise ParameterBindingError(
                    "required parameter {!r} was never bound".format(name)
                )
        for name, value in self._values.items():
            resolved.setdefault(name, value.value)
        return resolved

    def bound_values(self) -> Dict[str, ParameterValue]:
        """Return a copy of the raw bindings keyed by parameter name."""
        return {name: value.copy() for name, value in self._values.items()}

    def copy(self) -> "ParameterSet":
        duplicate = ParameterSet(self._definitions.values())
        duplicate._values = {name: value.copy() for name, value in self._values.items()}
        return duplicate
