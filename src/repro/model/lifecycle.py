"""The lifecycle model itself.

"In essence, a resource lifecycle is a set of phases and phase transitions,
similar to state machines and state charts" (§IV.A).  A
:class:`LifecycleModel` bundles the phases, the suggested transitions, the
version info and the *suggested* resource types the model targets (Table I's
``resource`` block).  It knows nothing about the concrete resource other than
that it will be identified by a URI and a type string.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Set, Tuple

from ..errors import DuplicatePhaseError, ModelError, UnknownPhaseError
from ..identifiers import new_id
from .actions import ActionCall
from .phase import Phase
from .transition import BEGIN, END, Transition
from .versioning import VersionInfo


@dataclass
class LifecycleModel:
    """A reusable lifecycle definition (the ``<process>`` of Table I).

    Attributes:
        name: display name, e.g. "EU Project deliverable lifecycle".
        uri: identifier of the model; generated when omitted.
        version: the ``version_info`` block.
        suggested_resource_types: resource types the composer had in mind;
            purely advisory (the model stays applicable to any resource for
            which the referenced actions resolve).
        description: free documentation.
        metadata: free-form data (not interpreted by the kernel).
    """

    name: str
    uri: str = field(default_factory=lambda: new_id("lifecycle"))
    version: VersionInfo = field(default_factory=VersionInfo)
    suggested_resource_types: List[str] = field(default_factory=list)
    description: str = ""
    metadata: Dict[str, Any] = field(default_factory=dict)
    _phases: Dict[str, Phase] = field(default_factory=dict)
    _transitions: List[Transition] = field(default_factory=list)

    # ------------------------------------------------------------------ phases
    @property
    def phases(self) -> List[Phase]:
        """Phases in insertion order."""
        return list(self._phases.values())

    @property
    def phase_ids(self) -> List[str]:
        return list(self._phases.keys())

    def phase(self, phase_id: str) -> Phase:
        """Return the phase with ``phase_id`` or raise :class:`UnknownPhaseError`."""
        try:
            return self._phases[phase_id]
        except KeyError:
            raise UnknownPhaseError(
                "lifecycle {!r} has no phase {!r}".format(self.name, phase_id)
            ) from None

    def has_phase(self, phase_id: str) -> bool:
        return phase_id in self._phases

    def add_phase(self, phase: Phase) -> Phase:
        """Add a phase; ids must be unique within the lifecycle."""
        if phase.phase_id in self._phases:
            raise DuplicatePhaseError(
                "phase id {!r} already exists in lifecycle {!r}".format(phase.phase_id, self.name)
            )
        self._phases[phase.phase_id] = phase
        return phase

    def remove_phase(self, phase_id: str) -> Phase:
        """Remove a phase and every transition touching it."""
        phase = self.phase(phase_id)
        del self._phases[phase_id]
        self._transitions = [
            t for t in self._transitions if t.source != phase_id and t.target != phase_id
        ]
        return phase

    def rename_phase(self, phase_id: str, new_name: str) -> Phase:
        phase = self.phase(phase_id)
        phase.name = new_name
        return phase

    def terminal_phases(self) -> List[Phase]:
        """End phases: no actions, flagged terminal (paper §IV.B)."""
        return [phase for phase in self._phases.values() if phase.terminal]

    # -------------------------------------------------------------- transitions
    @property
    def transitions(self) -> List[Transition]:
        return list(self._transitions)

    def add_transition(self, source: str, target: str, label: str = "") -> Transition:
        """Add a suggested transition between two phases (or BEGIN/END markers)."""
        if source != BEGIN and source not in self._phases:
            raise UnknownPhaseError("transition source {!r} is not a phase".format(source))
        if target != END and target not in self._phases:
            raise UnknownPhaseError("transition target {!r} is not a phase".format(target))
        if source == BEGIN and target == END:
            raise ModelError("a transition cannot go directly from BEGIN to END")
        transition = Transition(source=source, target=target, label=label)
        if transition not in self._transitions:
            self._transitions.append(transition)
        return transition

    def remove_transition(self, source: str, target: str) -> None:
        self._transitions = [
            t for t in self._transitions if not (t.source == source and t.target == target)
        ]

    def initial_phases(self) -> List[Phase]:
        """Phases reachable from BEGIN; falls back to the first phase if unset."""
        initial = [t.target for t in self._transitions if t.source == BEGIN and t.target != END]
        if initial:
            return [self._phases[phase_id] for phase_id in initial if phase_id in self._phases]
        if self._phases:
            return [next(iter(self._phases.values()))]
        return []

    def successors(self, phase_id: str) -> List[Phase]:
        """Phases suggested as next steps from ``phase_id``."""
        self.phase(phase_id)
        targets = [t.target for t in self._transitions if t.source == phase_id and t.target != END]
        return [self._phases[target] for target in targets if target in self._phases]

    def predecessors(self, phase_id: str) -> List[Phase]:
        self.phase(phase_id)
        sources = [t.source for t in self._transitions if t.target == phase_id and t.source != BEGIN]
        return [self._phases[source] for source in sources if source in self._phases]

    def is_modeled_move(self, source_id: Optional[str], target_id: str) -> bool:
        """True when moving the token source -> target follows a modelled transition.

        A ``None`` source means the instance is being started, so the move is
        modelled when the target is an initial phase.
        """
        if source_id is None:
            return any(phase.phase_id == target_id for phase in self.initial_phases())
        return any(
            t.source == source_id and t.target == target_id for t in self._transitions
        )

    # ------------------------------------------------------------------ queries
    def action_calls(self) -> List[Tuple[str, ActionCall]]:
        """All (phase_id, action_call) pairs in the model."""
        pairs = []
        for phase in self._phases.values():
            for call in phase.actions:
                pairs.append((phase.phase_id, call))
        return pairs

    def referenced_action_uris(self) -> Set[str]:
        return {call.action_uri for _, call in self.action_calls()}

    def reachable_phases(self) -> Set[str]:
        """Phase ids reachable from the initial phases following transitions."""
        frontier = [phase.phase_id for phase in self.initial_phases()]
        seen: Set[str] = set()
        while frontier:
            current = frontier.pop()
            if current in seen:
                continue
            seen.add(current)
            for successor in self.successors(current):
                if successor.phase_id not in seen:
                    frontier.append(successor.phase_id)
        return seen

    def element_count(self) -> int:
        """Number of model elements (phases + transitions + action calls).

        Used by the "simplicity" experiment (E10) to compare definition sizes
        against the baseline workflow engine.
        """
        return len(self._phases) + len(self._transitions) + len(self.action_calls())

    # -------------------------------------------------------------------- copies
    def copy(self, new_uri: bool = False) -> "LifecycleModel":
        """Deep copy of the model; optionally mint a fresh URI."""
        duplicate = LifecycleModel(
            name=self.name,
            uri=new_id("lifecycle") if new_uri else self.uri,
            version=self.version,
            suggested_resource_types=list(self.suggested_resource_types),
            description=self.description,
            metadata=dict(self.metadata),
        )
        for phase in self._phases.values():
            duplicate.add_phase(phase.copy())
        for transition in self._transitions:
            duplicate._transitions.append(transition)
        return duplicate

    def new_version(self, created_by: str = "") -> "LifecycleModel":
        """Copy the model and bump its version (used by change propagation)."""
        duplicate = self.copy(new_uri=False)
        duplicate.version = self.version.bump(created_by=created_by)
        return duplicate

    # ------------------------------------------------------------- serialization
    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "uri": self.uri,
            "version": self.version.to_dict(),
            "suggested_resource_types": list(self.suggested_resource_types),
            "description": self.description,
            "metadata": dict(self.metadata),
            "phases": [phase.to_dict() for phase in self._phases.values()],
            "transitions": [transition.to_dict() for transition in self._transitions],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "LifecycleModel":
        model = cls(
            name=data["name"],
            uri=data.get("uri") or new_id("lifecycle"),
            version=VersionInfo.from_dict(data.get("version", {})),
            suggested_resource_types=list(data.get("suggested_resource_types", [])),
            description=data.get("description", ""),
            metadata=dict(data.get("metadata", {})),
        )
        for phase_data in data.get("phases", []):
            model.add_phase(Phase.from_dict(phase_data))
        for transition_data in data.get("transitions", []):
            model._transitions.append(Transition.from_dict(transition_data))
        return model

    def __contains__(self, phase_id: str) -> bool:
        return phase_id in self._phases

    def __len__(self) -> int:
        return len(self._phases)
