"""Fluent builder for lifecycle models.

The Gelee designer UI (Fig. 3) lets composers add phases, pick actions from a
library, and connect phases.  :class:`LifecycleBuilder` is the programmatic
counterpart used by examples, templates and tests; it produces a validated
:class:`~repro.model.lifecycle.LifecycleModel`.
"""

from __future__ import annotations

from typing import Any, Iterable, List, Optional

from ..errors import ModelError
from ..identifiers import slugify
from .actions import ActionCall
from .deadline import Deadline
from .lifecycle import LifecycleModel
from .phase import Phase
from .transition import BEGIN, END
from .validation import validate_lifecycle
from .versioning import VersionInfo


class LifecycleBuilder:
    """Build lifecycle models step by step.

    Example::

        model = (
            LifecycleBuilder("Document review")
            .phase("Draft")
            .phase("Review", actions=[ActionCall("urn:gelee:notify", "Notify reviewers")])
            .terminal("Done")
            .flow("Draft", "Review", "Done")
            .build()
        )
    """

    def __init__(self, name: str, uri: str = None, created_by: str = "",
                 version_number: str = "1.0"):
        self._model = LifecycleModel(
            name=name,
            version=VersionInfo(version_number=version_number, created_by=created_by),
        )
        if uri:
            self._model.uri = uri
        self._last_phase_id: Optional[str] = None
        self._auto_chain = False

    # --------------------------------------------------------------- configure
    def describe(self, description: str) -> "LifecycleBuilder":
        self._model.description = description
        return self

    def for_resource_types(self, *resource_types: str) -> "LifecycleBuilder":
        """Record the suggested resource types (Table I's ``resource`` block)."""
        for resource_type in resource_types:
            if resource_type not in self._model.suggested_resource_types:
                self._model.suggested_resource_types.append(resource_type)
        return self

    def metadata(self, **entries: Any) -> "LifecycleBuilder":
        self._model.metadata.update(entries)
        return self

    def auto_chain(self, enabled: bool = True) -> "LifecycleBuilder":
        """When enabled, each new phase is connected from the previous one."""
        self._auto_chain = enabled
        return self

    # ------------------------------------------------------------------ phases
    def phase(self, name: str, phase_id: str = None, actions: Iterable[ActionCall] = (),
              description: str = "", deadline_days: float = None,
              terminal: bool = False) -> "LifecycleBuilder":
        """Add a phase by display name; the id defaults to a slug of the name."""
        # ``is not None``, not truthiness: days=0 is a valid deadline ("due
        # immediately on entry") and must not be silently dropped.
        deadline = Deadline(days=deadline_days) if deadline_days is not None else None
        phase = Phase(
            phase_id=phase_id or slugify(name),
            name=name,
            actions=list(actions),
            terminal=terminal,
            description=description,
            deadline=deadline,
        )
        self._model.add_phase(phase)
        if self._auto_chain and self._last_phase_id is not None:
            self._model.add_transition(self._last_phase_id, phase.phase_id)
        elif self._auto_chain and self._last_phase_id is None:
            self._model.add_transition(BEGIN, phase.phase_id)
        self._last_phase_id = phase.phase_id
        return self

    def terminal(self, name: str, phase_id: str = None, description: str = "") -> "LifecycleBuilder":
        """Add an end phase (no actions allowed)."""
        return self.phase(name, phase_id=phase_id, description=description, terminal=True)

    def action(self, phase_name_or_id: str, action_uri: str, name: str = "",
               **parameters: Any) -> "LifecycleBuilder":
        """Attach an action call to an existing phase."""
        phase = self._find_phase(phase_name_or_id)
        phase.add_action(ActionCall(action_uri=action_uri, name=name, parameters=parameters))
        return self

    def deadline(self, phase_name_or_id: str, days: float, description: str = "",
                 escalation: str = "notify", timeout_to: str = None,
                 escalate_call_id: str = None) -> "LifecycleBuilder":
        """Attach a relative deadline, optionally with an escalation policy."""
        phase = self._find_phase(phase_name_or_id)
        if timeout_to is not None:
            timeout_to = self._find_phase(timeout_to).phase_id
        phase.deadline = Deadline(days=days, description=description,
                                  escalation=escalation, timeout_to=timeout_to,
                                  escalate_call_id=escalate_call_id)
        return self

    def timeout_flow(self, source: str, target: str, days: float,
                     description: str = "", label: str = "timeout") -> "LifecycleBuilder":
        """Designate a timeout transition: after ``days`` in ``source`` the
        scheduler auto-advances the token to ``target``.

        Adds the (labelled) transition to the model — so the escalation move
        counts as a *modelled* progression, not a deviation — and arms the
        source phase with an ``escalation="advance"`` deadline.
        """
        source_phase = self._find_phase(source)
        target_phase = self._find_phase(target)
        self._model.add_transition(source_phase.phase_id, target_phase.phase_id,
                                   label=label)
        source_phase.deadline = Deadline(days=days, description=description,
                                         escalation="advance",
                                         timeout_to=target_phase.phase_id)
        return self

    # ------------------------------------------------------------- transitions
    def start_at(self, phase_name_or_id: str) -> "LifecycleBuilder":
        phase = self._find_phase(phase_name_or_id)
        self._model.add_transition(BEGIN, phase.phase_id)
        return self

    def transition(self, source: str, target: str, label: str = "") -> "LifecycleBuilder":
        source_phase = self._find_phase(source) if source != BEGIN else None
        target_phase = self._find_phase(target) if target != END else None
        self._model.add_transition(
            source_phase.phase_id if source_phase else BEGIN,
            target_phase.phase_id if target_phase else END,
            label=label,
        )
        return self

    def flow(self, *phase_names: str) -> "LifecycleBuilder":
        """Connect phases in sequence, marking the first one as initial."""
        if len(phase_names) < 2:
            raise ModelError("flow() needs at least two phases")
        self.start_at(phase_names[0])
        for source, target in zip(phase_names, phase_names[1:]):
            self.transition(source, target)
        return self

    def loop(self, source: str, target: str, label: str = "rework") -> "LifecycleBuilder":
        """Add a backward transition, e.g. Review -> Elaboration."""
        return self.transition(source, target, label=label)

    # -------------------------------------------------------------------- build
    def build(self, validate: bool = True) -> LifecycleModel:
        """Return the constructed model, validating it unless told otherwise."""
        if validate:
            validate_lifecycle(self._model)
        return self._model

    def peek(self) -> LifecycleModel:
        """Return the model under construction without validation (designer use)."""
        return self._model

    # ----------------------------------------------------------------- internal
    def _find_phase(self, name_or_id: str) -> Phase:
        if self._model.has_phase(name_or_id):
            return self._model.phase(name_or_id)
        slug = slugify(name_or_id)
        if self._model.has_phase(slug):
            return self._model.phase(slug)
        for phase in self._model.phases:
            if phase.name == name_or_id:
                return phase
        raise ModelError("no phase named {!r} in the lifecycle under construction".format(name_or_id))
