"""Action calls attached to phases.

In the model (paper §IV.A and Table I) a phase lists ``action_call`` elements.
Each call references an *action type* by name and URI and may carry parameter
values fixed at definition time.  The call is resolved to a concrete,
resource-type-specific implementation only when the lifecycle is instantiated
on a specific resource (see :mod:`repro.actions.binding`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict

from ..identifiers import new_id
from .parameters import BindingTime, ParameterValue


@dataclass
class ActionCall:
    """A reference to an action type from within a phase.

    Attributes:
        action_uri: URI identifying the action type (e.g.
            ``http://www.liquidpub.org/a/chr`` in Table I).
        name: human-readable action name ("Change access rights").
        parameters: values fixed at lifecycle definition time, keyed by
            parameter name.
        call_id: identifier of this call, unique within the lifecycle; used to
            correlate callbacks with the call that produced them.
    """

    action_uri: str
    name: str = ""
    parameters: Dict[str, Any] = field(default_factory=dict)
    call_id: str = field(default_factory=lambda: new_id("call"))

    def definition_bindings(self):
        """Yield the parameters fixed at definition time as ParameterValue objects."""
        for param_name, value in self.parameters.items():
            yield ParameterValue(param_name, value, BindingTime.DEFINITION)

    def with_parameters(self, **parameters: Any) -> "ActionCall":
        """Return a copy of the call with extra definition-time parameters."""
        merged = dict(self.parameters)
        merged.update(parameters)
        return ActionCall(self.action_uri, self.name, merged, self.call_id)

    def copy(self) -> "ActionCall":
        return ActionCall(self.action_uri, self.name, dict(self.parameters), self.call_id)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "action_uri": self.action_uri,
            "name": self.name,
            "parameters": dict(self.parameters),
            "call_id": self.call_id,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ActionCall":
        return cls(
            action_uri=data["action_uri"],
            name=data.get("name", ""),
            parameters=dict(data.get("parameters", {})),
            call_id=data.get("call_id") or new_id("call"),
        )
