"""Lifecycle model validation.

Requirement 6 of the paper ("Flexibility and robustness. … Ideally it should
be possible for the lifecycle to be partially specified and still be usable")
means validation must distinguish *errors* that make a model unusable from
*warnings* that merely flag incompleteness.  :func:`lifecycle_problems`
returns both; :func:`validate_lifecycle` raises only on errors.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from ..errors import ValidationError
from .lifecycle import LifecycleModel
from .transition import BEGIN, END


@dataclass
class ValidationReport:
    """Outcome of validating a lifecycle model."""

    errors: List[str] = field(default_factory=list)
    warnings: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.errors

    def all_problems(self) -> List[str]:
        return list(self.errors) + list(self.warnings)


def lifecycle_problems(model: LifecycleModel) -> ValidationReport:
    """Inspect ``model`` and return errors and warnings without raising."""
    report = ValidationReport()

    if not model.name or not model.name.strip():
        report.errors.append("the lifecycle needs a non-empty name")
    if len(model) == 0:
        report.errors.append("the lifecycle has no phases")
        return report

    phase_ids = set(model.phase_ids)

    # Transition endpoints must exist (add_transition already enforces this,
    # but models built via from_dict / XML may carry dangling references).
    for transition in model.transitions:
        if transition.source not in phase_ids and transition.source != BEGIN:
            report.errors.append(
                "transition source {!r} is not a phase".format(transition.source)
            )
        if transition.target not in phase_ids and transition.target != END:
            report.errors.append(
                "transition target {!r} is not a phase".format(transition.target)
            )

    # Initial phase: the model is usable without one (we fall back to the
    # first phase) but the designer should know.
    has_begin = any(t.source == BEGIN for t in model.transitions)
    if not has_begin:
        report.warnings.append(
            "no BEGIN transition; the first phase will be treated as initial"
        )

    # Terminal phases: a lifecycle without end phases never completes, which
    # is legal (purely descriptive monitoring) but worth flagging.
    if not model.terminal_phases():
        report.warnings.append("the lifecycle has no end phase; instances never complete")

    # End phases must not have outgoing transitions to look "final" in the
    # designer; this is only a warning because owners can move tokens anywhere.
    for phase in model.terminal_phases():
        outgoing = [t for t in model.transitions if t.source == phase.phase_id and t.target != END]
        if outgoing:
            report.warnings.append(
                "end phase {!r} has outgoing transitions".format(phase.phase_id)
            )

    # Unreachable phases are allowed (owners can jump) but flagged.
    reachable = model.reachable_phases()
    for phase_id in phase_ids:
        if phase_id not in reachable:
            report.warnings.append(
                "phase {!r} is not reachable from the initial phases".format(phase_id)
            )

    # Deadline escalation targets must exist so the scheduler's auto-advance
    # cannot strand the token, and an "invoke" escalation naming a call must
    # point at one of the phase's own calls.
    for phase in model.phases:
        deadline = phase.deadline
        if deadline is None:
            continue
        if deadline.timeout_to is not None and deadline.timeout_to not in phase_ids:
            report.errors.append(
                "deadline on phase {!r} designates unknown timeout phase {!r}".format(
                    phase.phase_id, deadline.timeout_to))
        elif deadline.timeout_to is not None and not any(
                t.source == phase.phase_id and t.target == deadline.timeout_to
                for t in model.transitions):
            report.warnings.append(
                "deadline on phase {!r} times out to {!r} but no such transition "
                "is modelled; the escalation move will count as a deviation".format(
                    phase.phase_id, deadline.timeout_to))
        if deadline.escalate_call_id is not None and deadline.escalate_call_id not in [
                call.call_id for call in phase.actions]:
            report.errors.append(
                "deadline on phase {!r} escalates by invoking unknown call "
                "{!r}".format(phase.phase_id, deadline.escalate_call_id))

    # Action calls need at least an action URI.
    for phase_id, call in model.action_calls():
        if not call.action_uri or not call.action_uri.strip():
            report.errors.append(
                "an action call in phase {!r} has no action URI".format(phase_id)
            )

    # Self-loops in the suggestion graph are almost always modelling mistakes.
    for transition in model.transitions:
        if transition.source == transition.target:
            report.warnings.append(
                "phase {!r} has a self-transition".format(transition.source)
            )

    return report


def validate_lifecycle(model: LifecycleModel) -> ValidationReport:
    """Validate ``model``; raise :class:`ValidationError` when it has errors."""
    report = lifecycle_problems(model)
    if not report.ok:
        raise ValidationError(report.errors)
    return report
