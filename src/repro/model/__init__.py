"""Lifecycle model (paper §IV.A): phases, transitions, actions, deadlines.

The model is deliberately small — "essentially based on state machines.
There are no complex features such as path conditions, transactions or
exceptions" — and resource-agnostic: all it knows about the managed resource
is its URI and its type.
"""

from .parameters import BindingTime, ParameterDefinition, ParameterValue
from .actions import ActionCall
from .phase import Phase
from .transition import Transition, BEGIN, END
from .deadline import Deadline
from .annotation import Annotation
from .versioning import VersionInfo
from .lifecycle import LifecycleModel
from .builder import LifecycleBuilder
from .validation import validate_lifecycle, lifecycle_problems

__all__ = [
    "BindingTime",
    "ParameterDefinition",
    "ParameterValue",
    "ActionCall",
    "Phase",
    "Transition",
    "BEGIN",
    "END",
    "Deadline",
    "Annotation",
    "VersionInfo",
    "LifecycleModel",
    "LifecycleBuilder",
    "validate_lifecycle",
    "lifecycle_problems",
]
