"""The EU Project deliverable lifecycle of Fig. 1.

Phases and actions exactly as drawn in the paper:

* **Elaboration** — no actions (pure monitoring phase; §IV.A explains why
  empty phases are useful).
* **Internal Review** — Change access rights + Notify reviewers.
* **Final Assembly** — Generate PDF + Change access rights.
* **EU Review** — Change access rights + Notify reviewers.
* **Publication** — Post on web site + Change access rights.
* a terminal node closing the lifecycle.

Transitions follow the figure's main flow Elaboration → Internal Review →
Final Assembly → EU Review → Publication → (end), plus the iteration edge
Internal Review → Elaboration ("The iteration of the elaboration and review
phases continues until reviewers are satisfied", §II.A).
"""

from __future__ import annotations

from datetime import date

from ..actions import library
from ..model import LifecycleBuilder, LifecycleModel, VersionInfo

#: Phase ids of the Fig. 1 lifecycle, in main-flow order.
EU_DELIVERABLE_PHASES = [
    "elaboration",
    "internalreview",
    "finalassembly",
    "eureview",
    "publication",
    "closed",
]

#: The model URI used for the canonical template.
EU_DELIVERABLE_URI = "http://www.liquidpub.org/lifecycles/eu-deliverable"


def eu_deliverable_lifecycle(created_by: str = "lpAdmin",
                             internal_reviewers=None,
                             deadline_days: dict = None) -> LifecycleModel:
    """Build the Fig. 1 lifecycle.

    Args:
        created_by: author recorded in the version info (the paper's example
            uses ``lpAdmin``).
        internal_reviewers: optional reviewer list fixed at definition time;
            usually left unset and bound at instantiation time instead.
        deadline_days: optional mapping of phase id to a relative deadline in
            days (used by the monitoring/delay experiments).
    """
    deadline_days = deadline_days or {}
    builder = (
        LifecycleBuilder("EU Project deliverable lifecycle", uri=EU_DELIVERABLE_URI,
                         created_by=created_by)
        .describe("Quality plan for EU project deliverables (paper Fig. 1).")
        .for_resource_types("MediaWiki page", "Google Doc")
        .phase("Elaboration", phase_id="elaboration",
               description="Small group drafts the document structure and content.",
               deadline_days=deadline_days.get("elaboration"))
        .phase("Internal Review", phase_id="internalreview",
               description="Wider group reviews and discusses the draft.",
               deadline_days=deadline_days.get("internalreview"))
        .phase("Final Assembly", phase_id="finalassembly",
               description="Draft transformed into the submission format.",
               deadline_days=deadline_days.get("finalassembly"))
        .phase("EU Review", phase_id="eureview",
               description="Funding agency evaluates the deliverable.",
               deadline_days=deadline_days.get("eureview"))
        .phase("Publication", phase_id="publication",
               description="Deliverable published on the project web site.",
               deadline_days=deadline_days.get("publication"))
        .terminal("Closed", phase_id="closed",
                  description="Lifecycle complete.")
    )

    # Internal Review: Change access rights + Notify reviewers.
    builder.action("internalreview", library.CHANGE_ACCESS_RIGHTS, "Change access rights",
                   visibility="team")
    notify_parameters = {}
    if internal_reviewers:
        notify_parameters["reviewers"] = list(internal_reviewers)
    builder.action("internalreview", library.NOTIFY_REVIEWERS, "Notify reviewers",
                   **notify_parameters)

    # Final Assembly: Generate PDF + Change access rights.
    builder.action("finalassembly", library.GENERATE_PDF, "Generate PDF")
    builder.action("finalassembly", library.CHANGE_ACCESS_RIGHTS, "Change access rights",
                   visibility="consortium")

    # EU Review: Change access rights + Notify reviewers.
    builder.action("eureview", library.CHANGE_ACCESS_RIGHTS, "Change access rights",
                   visibility="consortium")
    builder.action("eureview", library.NOTIFY_REVIEWERS, "Notify reviewers",
                   reviewers=["EU project officer"],
                   message="Deliverable submitted for EU evaluation.")

    # Publication: Post on web site + Change access rights.
    builder.action("publication", library.POST_ON_WEBSITE, "Post on web site")
    builder.action("publication", library.CHANGE_ACCESS_RIGHTS, "Change access rights",
                   visibility="public")

    builder.flow("Elaboration", "Internal Review", "Final Assembly", "EU Review",
                 "Publication", "Closed")
    builder.loop("Internal Review", "Elaboration", label="rework after review")

    model = builder.build()
    model.version = VersionInfo(version_number="1.0", created_by=created_by,
                                creation_date=date(2008, 7, 8))
    return model
