"""Lifecycle template library.

Ready-made lifecycle models ("quality plans") that project managers can
instantiate, starting with the paper's Fig. 1 EU-project deliverable
lifecycle.
"""

from .eu_deliverable import eu_deliverable_lifecycle, EU_DELIVERABLE_PHASES
from .common import (
    document_review_lifecycle,
    software_release_lifecycle,
    photo_story_lifecycle,
    simple_publication_lifecycle,
    builtin_templates,
)

__all__ = [
    "eu_deliverable_lifecycle",
    "EU_DELIVERABLE_PHASES",
    "document_review_lifecycle",
    "software_release_lifecycle",
    "photo_story_lifecycle",
    "simple_publication_lifecycle",
    "builtin_templates",
]
