"""Additional built-in lifecycle templates.

Beyond the Fig. 1 deliverable lifecycle, these templates cover the other
artifact kinds the paper mentions (code managed in a version control system,
photo albums, simple web publications) so that examples and benchmarks can
exercise several lifecycles on several resource types.
"""

from __future__ import annotations

from typing import Dict

from ..actions import library
from ..model import LifecycleBuilder, LifecycleModel


def document_review_lifecycle() -> LifecycleModel:
    """A minimal draft → review → done lifecycle for any document resource."""
    builder = (
        LifecycleBuilder("Document review")
        .describe("Lightweight review loop for collaborative documents.")
        .for_resource_types("Google Doc", "Zoho document", "MediaWiki page")
        .phase("Draft", description="Author writes the document.")
        .phase("Under Review", description="Reviewers comment on the document.")
        .phase("Approved", description="Document accepted.")
        .terminal("Done")
    )
    builder.action("Under Review", library.SEND_FOR_REVIEW, "Send for review")
    builder.action("Under Review", library.CHANGE_ACCESS_RIGHTS, "Change access rights",
                   visibility="team")
    builder.action("Approved", library.CREATE_SNAPSHOT, "Create snapshot", label="approved")
    builder.flow("Draft", "Under Review", "Approved", "Done")
    builder.loop("Under Review", "Draft")
    return builder.build()


def software_release_lifecycle() -> LifecycleModel:
    """Development → code review → release candidate → released, for SVN files."""
    builder = (
        LifecycleBuilder("Software release")
        .describe("Release process for code managed in a version control system.")
        .for_resource_types("SVN file")
        .phase("Development", description="Feature work on trunk.")
        .phase("Code Review", description="Peers review the changes.")
        .phase("Release Candidate", description="Release build prepared and tagged.")
        .phase("Released", description="Release published.")
        .terminal("Retired")
    )
    builder.action("Code Review", library.SEND_FOR_REVIEW, "Send for review")
    builder.action("Release Candidate", library.CREATE_SNAPSHOT, "Tag release candidate",
                   label="rc")
    builder.action("Release Candidate", library.CHANGE_ACCESS_RIGHTS, "Freeze commit rights",
                   visibility="team")
    builder.action("Released", library.POST_ON_WEBSITE, "Post on web site",
                   site_section="releases")
    builder.action("Released", library.ARCHIVE_RESOURCE, "Archive release")
    builder.flow("Development", "Code Review", "Release Candidate", "Released", "Retired")
    builder.loop("Code Review", "Development")
    return builder.build()


def photo_story_lifecycle() -> LifecycleModel:
    """Collect → curate → publish lifecycle for photo albums."""
    builder = (
        LifecycleBuilder("Photo story")
        .describe("Publication flow for event photo albums.")
        .for_resource_types("Photo album")
        .phase("Collecting", description="Photos uploaded by contributors.")
        .phase("Curation", description="Album curated and reviewed.")
        .phase("Published", description="Album visible on the project site.")
        .terminal("Archived")
    )
    builder.action("Curation", library.SEND_FOR_REVIEW, "Send for review")
    builder.action("Published", library.POST_ON_WEBSITE, "Post on web site",
                   site_section="galleries")
    builder.action("Published", library.CHANGE_ACCESS_RIGHTS, "Change access rights",
                   visibility="public")
    builder.flow("Collecting", "Curation", "Published", "Archived")
    builder.loop("Curation", "Collecting")
    return builder.build()


def simple_publication_lifecycle() -> LifecycleModel:
    """Two-phase lifecycle (working → published) used by quickstart examples."""
    builder = (
        LifecycleBuilder("Simple publication")
        .describe("Smallest useful lifecycle: work on it, then publish it.")
        .phase("Working")
        .phase("Published")
        .terminal("Done")
    )
    builder.action("Published", library.POST_ON_WEBSITE, "Post on web site")
    builder.flow("Working", "Published", "Done")
    return builder.build()


def builtin_templates() -> Dict[str, LifecycleModel]:
    """All built-in templates keyed by a short template id."""
    from .eu_deliverable import eu_deliverable_lifecycle

    return {
        "eu-deliverable": eu_deliverable_lifecycle(),
        "document-review": document_review_lifecycle(),
        "software-release": software_release_lifecycle(),
        "photo-story": photo_story_lifecycle(),
        "simple-publication": simple_publication_lifecycle(),
    }
