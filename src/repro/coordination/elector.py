"""Leader election over a lease store.

:class:`LeaderElector` is one node's view of one named lease: it tries to
acquire, keeps renewing while it holds, notices when it was deposed, and
can voluntarily resign.  The election itself is the lease store's CAS — the
elector is a thin state machine around it that:

* tracks *edges* — ``on_elected(lease)`` fires when leadership is won
  (fresh fencing token in hand), ``on_deposed(reason)`` when it is lost —
  so the host wires fencing installation and read-only demotion exactly
  once per transition, not per heartbeat;
* exposes :meth:`heartbeat` as the single periodic entry point: renew while
  leading, otherwise try to take over.  Both the election-aware
  :class:`~repro.scheduler.SchedulerDaemon` and the
  :class:`~repro.coordination.FailoverSupervisor` just call this on their
  cadence.

Liveness judgement is local *and* conservative: :attr:`is_leader` checks
the last granted lease against the clock, so a node that slept through its
TTL stops claiming leadership even before the next store round-trip.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Callable, Dict, Optional

from ..clock import Clock
from ..errors import CoordinationError, NotLeaderError
from ..identifiers import new_id
from ..telemetry import DEFAULT_FAST_BUCKETS, get_registry
from .lease import DEFAULT_LEASE_NAME, Lease, LeaseStore


class LeaderElector:
    """Acquire/renew/resign one leadership lease; report the edges."""

    def __init__(self, store: LeaseStore, name: str = DEFAULT_LEASE_NAME,
                 node_id: str = None, ttl_seconds: float = 15.0,
                 clock: Clock = None,
                 on_elected: Callable[[Lease], None] = None,
                 on_deposed: Callable[[str], None] = None):
        if ttl_seconds <= 0:
            raise CoordinationError("ttl_seconds must be positive")
        self._store = store
        self._name = name
        self.node_id = node_id or new_id("node")
        self._ttl = float(ttl_seconds)
        self._clock = clock
        self._on_elected = on_elected
        self._on_deposed = on_deposed
        self._lock = threading.RLock()
        self._lease: Optional[Lease] = None
        self._elections = 0
        self._renewals = 0
        self._depositions = 0
        self._failed_acquires = 0
        registry = get_registry()
        self._metric_heartbeat = registry.histogram(
            "gelee_election_heartbeat_seconds",
            "Wall-clock time of one election round (renew or acquire).",
            buckets=DEFAULT_FAST_BUCKETS)
        self._metric_transitions = registry.counter(
            "gelee_election_transitions_total",
            "Leadership edges observed by this node.",
            labelnames=("transition",))

    # ------------------------------------------------------------------ state
    @property
    def store(self) -> LeaseStore:
        return self._store

    @property
    def lease_name(self) -> str:
        return self._name

    @property
    def ttl_seconds(self) -> float:
        return self._ttl

    @property
    def lease(self) -> Optional[Lease]:
        with self._lock:
            return self._lease

    @property
    def is_leader(self) -> bool:
        """Locally-judged leadership: lease in hand and not yet expired."""
        with self._lock:
            return (self._lease is not None
                    and not self._lease.is_expired(self._now()))

    @property
    def token(self) -> int:
        """The fencing token of the held lease (0 when not leading)."""
        with self._lock:
            return self._lease.token if self._lease is not None else 0

    # -------------------------------------------------------------- lifecycle
    def heartbeat(self) -> bool:
        """One election round: renew if leading, else try to take over.

        Returns whether this node leads *after* the round.  Edge callbacks
        fire inside (election with the fresh lease, deposition with a
        reason), so callers only need this one method on a timer.
        """
        started = time.perf_counter()
        with self._lock:
            if self._lease is not None:
                leading = self._renew_locked()
            else:
                leading = self._acquire_locked()
        self._metric_heartbeat.observe(time.perf_counter() - started)
        return leading

    def try_acquire(self) -> bool:
        """One acquisition attempt (no renewal path); ``True`` on success."""
        with self._lock:
            if self._lease is not None:
                return self._renew_locked()
            return self._acquire_locked()

    def resign(self) -> Lease:
        """Voluntarily release the lease; returns the lease given up.

        Raises :class:`~repro.errors.NotLeaderError` when this node holds
        nothing — resigning somebody else's leadership is not a thing.
        """
        with self._lock:
            lease = self._lease
            if lease is None:
                raise NotLeaderError(
                    "node {!r} does not hold lease {!r}; nothing to "
                    "resign".format(self.node_id, self._name))
            self._store.release(self._name, self.node_id, lease.token)
            self._depose_locked("resigned voluntarily")
            return lease

    # ------------------------------------------------------------------ status
    def status(self) -> Dict[str, Any]:
        with self._lock:
            lease = self._lease
            leading = lease is not None and not lease.is_expired(self._now())
        current = self._store.leader(self._name)
        return {
            "lease_name": self._name,
            "node_id": self.node_id,
            "is_leader": leading,
            "token": lease.token if lease is not None else 0,
            "ttl_seconds": self._ttl,
            "lease_expires_in": round(lease.remaining(self._now()), 3)
            if lease is not None else 0.0,
            "leader_id": current.holder_id if current is not None else None,
            "latest_token": self._store.latest_token(self._name),
            "elections": self._elections,
            "renewals": self._renewals,
            "depositions": self._depositions,
            "failed_acquires": self._failed_acquires,
            "store": self._store.describe(),
        }

    # --------------------------------------------------------------- internal
    def _now(self):
        return self._clock.now() if self._clock is not None \
            else self._store.now()

    def _acquire_locked(self) -> bool:
        lease = self._store.acquire(self._name, self.node_id, self._ttl)
        if lease is None:
            self._failed_acquires += 1
            return False
        self._lease = lease
        self._elections += 1
        self._metric_transitions.inc(transition="elected")
        if self._on_elected is not None:
            self._on_elected(lease)
        return True

    def _renew_locked(self) -> bool:
        lease = self._lease
        renewed = self._store.renew(self._name, self.node_id, lease.token,
                                    self._ttl)
        if renewed is None:
            self._depose_locked(
                "lease {!r} was lost (epoch {} superseded or "
                "released)".format(self._name, lease.token))
            return False
        self._lease = renewed
        self._renewals += 1
        return True

    def _depose_locked(self, reason: str) -> None:
        self._lease = None
        self._depositions += 1
        self._metric_transitions.inc(transition="deposed")
        if self._on_deposed is not None:
            self._on_deposed(reason)
