"""Fencing: reject a deposed primary's late writes by epoch comparison.

A leadership lease alone cannot stop a paused/partitioned ex-primary from
writing after its lease expired — it may not have noticed yet.  The
:class:`FencingGuard` closes that hole the standard way (Chubby sequencers,
ZooKeeper epochs): the holder's fencing token, issued at acquisition, is
checked against the lease store's newest token on the write path.  A newer
token in the store proves somebody else won a later epoch, so the guarded
write raises :class:`~repro.errors.StaleFencingTokenError` and the caller's
operation fails *before* any durable effect.

The guard installs at two choke points:

* :meth:`~repro.persistence.journal.Journal.set_fence` — the journal
  refuses to append records from a stale epoch, so nothing a deposed
  primary does can ever reach the replication stream;
* :meth:`~repro.runtime.manager.LifecycleManager.set_write_guard` — the
  runtime rejects the mutation at its entry point, so the *caller* gets
  the typed 409 instead of the operation half-succeeding in memory.

``revalidate_seconds`` bounds the cost: within the window the guard trusts
its cached verdict instead of querying the store per write.  ``0`` (the
deterministic-test setting) validates on every check.  Once a newer epoch
is seen the guard latches invalid forever — there is no way back into an
old epoch.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Dict

from ..errors import StaleFencingTokenError
from .lease import LeaseStore


class FencingGuard:
    """One epoch's write permit, checked on the durability path."""

    def __init__(self, store: LeaseStore, name: str, token: int,
                 holder_id: str = "", revalidate_seconds: float = 1.0):
        self._store = store
        self._name = name
        self._token = int(token)
        self._holder_id = holder_id
        self._revalidate = max(0.0, float(revalidate_seconds))
        self._lock = threading.Lock()
        self._invalid = False
        self._invalid_reason = ""
        self._latest_seen = 0  # the epoch that superseded us, once known
        self._checked_at = 0.0  # monotonic; 0 forces the first real check
        self._checks = 0
        self._store_reads = 0
        self._rejections = 0

    # ------------------------------------------------------------------ state
    @property
    def token(self) -> int:
        return self._token

    @property
    def name(self) -> str:
        return self._name

    @property
    def valid(self) -> bool:
        return not self._invalid

    # ------------------------------------------------------------------ check
    def check(self) -> None:
        """Raise :class:`StaleFencingTokenError` when this epoch is over.

        Fast path: within ``revalidate_seconds`` of the last store read the
        cached verdict stands.  Slow path: one ``latest_token`` query.
        """
        with self._lock:
            self._checks += 1
            if self._invalid:
                self._rejections += 1
                raise StaleFencingTokenError(
                    self._invalid_reason or self._rejection_message(0),
                    token=self._token, latest=self._latest_seen)
            now = time.monotonic()
            if self._revalidate and self._checked_at \
                    and now - self._checked_at < self._revalidate:
                return
            latest = self._store.latest_token(self._name)
            self._store_reads += 1
            if latest > self._token:
                self._invalid = True
                self._invalid_reason = self._rejection_message(latest)
                self._latest_seen = latest
                self._rejections += 1
                raise StaleFencingTokenError(self._invalid_reason,
                                             token=self._token, latest=latest)
            self._checked_at = now

    def invalidate(self, reason: str = "") -> None:
        """Latch the guard invalid immediately (local demotion signal) —
        no store round-trip needed once the elector knows it lost."""
        with self._lock:
            if self._invalid:
                return
            self._invalid = True
            self._invalid_reason = reason or (
                "fencing token {} of lease {!r} was invalidated "
                "locally".format(self._token, self._name))

    def status(self) -> Dict[str, Any]:
        with self._lock:
            return {
                "lease": self._name,
                "token": self._token,
                "holder_id": self._holder_id,
                "valid": not self._invalid,
                "revalidate_seconds": self._revalidate,
                "checks": self._checks,
                "store_reads": self._store_reads,
                "rejections": self._rejections,
            }

    # --------------------------------------------------------------- internal
    def _rejection_message(self, latest: int) -> str:
        suffix = "; epoch {} is now current".format(latest) if latest else ""
        return ("write rejected: fencing token {} of lease {!r} is stale — "
                "this node was deposed{}".format(self._token, self._name,
                                                 suffix))
