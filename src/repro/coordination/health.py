"""Health monitoring: decide that the primary is dead, carefully.

:class:`HealthMonitor` turns a single liveness *probe* — any callable
returning truthy for healthy — into a thresholded verdict: only
``failure_threshold`` **consecutive** failures flip :attr:`is_unhealthy`,
so one dropped request never triggers a failover.  Probes run on the
injected clock's cadence (``probe_interval_seconds``), and after each
failure the interval stretches by ``backoff_factor`` (capped), so a
monitor watching a dead host does not hammer it.

Probe shapes:

* in-process — ``lambda: primary_service is not None`` or anything else
  cheap the deployment can ask directly;
* over the wire — :func:`http_probe` issues
  ``GET /v2/runtime/replication`` against the primary's gateway (the route
  every node mounts) and reports healthy on any well-formed 200.

The monitor records *when* the verdict flipped (:attr:`unhealthy_since`):
the :class:`~repro.coordination.FailoverSupervisor` measures its
detection-to-promotion latency from that moment.
"""

from __future__ import annotations

import threading
from typing import Any, Callable, Dict, Optional

from ..clock import Clock, SystemClock
from ..errors import CoordinationError


def http_probe(host: str, port: int, timeout: float = 2.0,
               path: str = "/v2/runtime/replication") -> Callable[[], bool]:
    """A probe that GETs the primary's replication status over HTTP.

    Healthy iff the request completes with status 200 — a primary that
    answers its admin surface is alive enough to keep its lease.  Import
    is deferred so in-process deployments never touch the HTTP client.
    """
    def probe() -> bool:
        from ..service.http import GeleeHttpClient
        try:
            response = GeleeHttpClient(host, port, timeout=timeout).get(path)
        except OSError:
            return False
        return response.status == 200

    return probe


class HealthMonitor:
    """Consecutive-failure liveness verdict over one probe."""

    def __init__(self, probe: Callable[[], bool],
                 failure_threshold: int = 3,
                 probe_interval_seconds: float = 1.0,
                 backoff_factor: float = 1.0,
                 max_interval_seconds: float = None,
                 clock: Clock = None):
        if probe is None:
            raise CoordinationError("the health monitor needs a probe callable")
        if failure_threshold < 1:
            raise CoordinationError("failure_threshold must be at least 1")
        if probe_interval_seconds <= 0:
            raise CoordinationError("probe_interval_seconds must be positive")
        if backoff_factor < 1.0:
            raise CoordinationError("backoff_factor must be at least 1.0")
        self._probe = probe
        self._threshold = int(failure_threshold)
        self._base_interval = float(probe_interval_seconds)
        self._backoff = float(backoff_factor)
        self._max_interval = (float(max_interval_seconds)
                              if max_interval_seconds is not None
                              else self._base_interval * 16)
        self._clock = clock or SystemClock()
        self._lock = threading.RLock()
        self._interval = self._base_interval
        self._last_probe_at = None
        self._consecutive_failures = 0
        self._probes = 0
        self._failures = 0
        self._unhealthy_since = None
        self._last_error = ""

    # ------------------------------------------------------------------ state
    @property
    def consecutive_failures(self) -> int:
        with self._lock:
            return self._consecutive_failures

    @property
    def is_unhealthy(self) -> bool:
        with self._lock:
            return self._consecutive_failures >= self._threshold

    @property
    def unhealthy_since(self):
        """When the verdict crossed the threshold (``None`` while healthy)."""
        with self._lock:
            return self._unhealthy_since

    # ----------------------------------------------------------------- probes
    def poll(self, now=None) -> Optional[bool]:
        """Probe iff the (backed-off) interval elapsed; ``None`` otherwise."""
        now = now or self._clock.now()
        with self._lock:
            if (self._last_probe_at is not None
                    and (now - self._last_probe_at).total_seconds()
                    < self._interval):
                return None
        return self.check(now=now)

    def check(self, now=None) -> bool:
        """Probe immediately; returns the probe's healthy verdict."""
        now = now or self._clock.now()
        healthy = False
        error = ""
        try:
            healthy = bool(self._probe())
        except Exception as exc:  # noqa: BLE001 - a failing probe is a failed probe
            error = "{}: {}".format(type(exc).__name__, exc)
        with self._lock:
            self._probes += 1
            self._last_probe_at = now
            if healthy:
                self._consecutive_failures = 0
                self._interval = self._base_interval
                self._unhealthy_since = None
                self._last_error = ""
            else:
                self._failures += 1
                self._consecutive_failures += 1
                self._last_error = error or "probe returned unhealthy"
                if self._consecutive_failures >= self._threshold \
                        and self._unhealthy_since is None:
                    self._unhealthy_since = now
                self._interval = min(self._max_interval,
                                     self._interval * self._backoff)
        return healthy

    def reset(self) -> None:
        """Forget the failure streak (after a failover completed, the old
        verdict is about a primary that no longer matters)."""
        with self._lock:
            self._consecutive_failures = 0
            self._interval = self._base_interval
            self._unhealthy_since = None
            self._last_error = ""

    # ------------------------------------------------------------------ status
    def status(self) -> Dict[str, Any]:
        with self._lock:
            return {
                "probes": self._probes,
                "failures": self._failures,
                "consecutive_failures": self._consecutive_failures,
                "failure_threshold": self._threshold,
                "unhealthy": self._consecutive_failures >= self._threshold,
                "unhealthy_since": self._unhealthy_since.isoformat()
                if self._unhealthy_since is not None else None,
                "probe_interval_seconds": self._base_interval,
                "current_interval_seconds": self._interval,
                "last_error": self._last_error,
            }
