"""Coordination: lease-based leader election, fencing, automatic failover.

Replication (:mod:`repro.replication`) made losing the primary *survivable*
— this package makes surviving it *automatic*, and gives every multi-node
deployment the two guarantees it was missing:

* **exactly one writer** — :class:`LeaderElector` contends for a named
  lease in a shared :class:`LeaseStore` (SQLite compare-and-swap table
  across processes, in-memory on the injected clock for deterministic
  tests).  Every ownership transfer increments a **fencing token**;
  :class:`FencingGuard` validates it on the journal append path and the
  runtime's write path, so a deposed primary's late writes are rejected
  (:class:`~repro.errors.StaleFencingTokenError`), never replicated.
* **exactly one ticker** — the election-aware
  :class:`~repro.scheduler.SchedulerDaemon` heartbeats the elector each
  poll and only ticks while leading, so deadlines/retries/maintenance fire
  once cluster-wide.

:class:`HealthMonitor` (thresholded liveness probes, in-process or HTTP)
and :class:`FailoverSupervisor` close the loop on a standby: sustained
probe failure → campaign for the lease → on victory, drive the existing
:meth:`~repro.replication.ReadReplica.promote` — detection to promotion
with zero journaled-record loss and no human in the path.

Typical wiring (see ``docs/COORDINATION.md`` and ``examples/ha_cluster.py``)::

    store = CoordinationConfig(directory="/var/lib/gelee").open_store()

    primary = GeleeService(persistence=config,
                           coordination=CoordinationConfig(
                               store=store, node_id="node-a", ttl_seconds=5.0))
    SchedulerDaemon(primary.scheduler, elector=primary.coordination).start()

    replica = ReadReplica(JournalShippingSource(config), replica_id="node-b")
    StreamFollower(replica).start()
    FailoverSupervisor(replica, store=store, node_id="node-b",
                       monitor=HealthMonitor(http_probe(host, port),
                                             failure_threshold=3)).start()
    # primary dies → supervisor wins the lease, promotes, fences the corpse
"""

from .elector import LeaderElector
from .fencing import FencingGuard
from .health import HealthMonitor, http_probe
from .lease import (
    DEFAULT_LEASE_NAME,
    Lease,
    LeaseStore,
    MemoryLeaseStore,
    SQLiteLeaseStore,
)
from .runtime import CoordinationConfig, Coordinator
from .supervisor import FailoverSupervisor

__all__ = [
    "DEFAULT_LEASE_NAME",
    "CoordinationConfig",
    "Coordinator",
    "FailoverSupervisor",
    "FencingGuard",
    "HealthMonitor",
    "Lease",
    "LeaseStore",
    "LeaderElector",
    "MemoryLeaseStore",
    "SQLiteLeaseStore",
    "http_probe",
]
