"""Service-tier coordination wiring: one knob, full election semantics.

``GeleeService(coordination=CoordinationConfig(...))`` attaches a
:class:`Coordinator` to the deployment.  It owns this node's
:class:`~repro.coordination.LeaderElector` and reacts to the election
edges:

* **elected** — a :class:`~repro.coordination.FencingGuard` for the won
  epoch is installed on the write path (the journal's append fence and the
  runtime managers' write guard), and a previously demoted node flips back
  to writable;
* **deposed** — the guard latches invalid, the runtime flips read-only,
  the scheduler goes dormant, and ``primary_hint`` points at the new
  leader.  A deposed primary therefore answers reads, 409s writes with the
  stale fencing token, and stops ticking timers — the single-ticker
  guarantee from the losing side.

Heartbeats are *driven by the host*, not by a thread of this object: the
election-aware :class:`~repro.scheduler.SchedulerDaemon` calls
:meth:`Coordinator.heartbeat` on its poll cadence (simulated-clock tests
call it directly).  Fencing rejections observed on the journal path demote
lazily on the next heartbeat — never on the publisher's thread, which may
hold shard locks.
"""

from __future__ import annotations

import os
import threading
from dataclasses import dataclass
from typing import Any, Dict, Optional

from ..clock import Clock
from ..errors import CoordinationError, StaleFencingTokenError
from .elector import LeaderElector
from .fencing import FencingGuard
from .lease import (
    DEFAULT_LEASE_NAME,
    Lease,
    LeaseStore,
    MemoryLeaseStore,
    SQLiteLeaseStore,
)

#: File name of the SQLite lease table under ``CoordinationConfig.directory``.
LEASE_DB_FILENAME = "leases.sqlite3"


@dataclass
class CoordinationConfig:
    """Everything needed to join (or re-join) a deployment's election.

    Attributes:
        store: a pre-built :class:`~repro.coordination.LeaseStore` shared
            with the other contenders (tests share a
            :class:`~repro.coordination.MemoryLeaseStore`).
        directory: alternative to ``store`` — the path under which the
            SQLite lease table lives (``leases.sqlite3``); every process
            of the deployment points here.
        lease_name: the contested name; one name = one leadership domain.
        node_id: this node's identity in the lease table (defaults to a
            generated ``node-...`` id).
        ttl_seconds: lease validity per acquisition/renewal.  Heartbeats
            must run several times per TTL; the failover detection floor
            is one TTL.
        acquire_on_start: run the first election round during service
            construction (on by default — a single-node deployment is
            leader before serving its first request).
        fence_writes: install the epoch's :class:`FencingGuard` on the
            journal and the runtime write path.
        fence_revalidate_seconds: how long the guard trusts its cached
            verdict between lease-store reads (``0`` = validate every
            write; deterministic tests use this).
        demote_on_lease_loss: flip the runtime read-only when deposed.
        resign_on_close: release the lease during ``service.close()`` so a
            standby can take over immediately instead of waiting out the
            TTL.
    """

    store: Optional[LeaseStore] = None
    directory: Optional[str] = None
    lease_name: str = DEFAULT_LEASE_NAME
    node_id: Optional[str] = None
    ttl_seconds: float = 15.0
    acquire_on_start: bool = True
    fence_writes: bool = True
    fence_revalidate_seconds: float = 1.0
    demote_on_lease_loss: bool = True
    resign_on_close: bool = True

    def __post_init__(self):
        if self.store is None and not self.directory:
            raise CoordinationError(
                "coordination needs a shared lease store: pass store=... or "
                "directory=... (electing against a private store would make "
                "every node 'leader')")
        if self.ttl_seconds <= 0:
            raise CoordinationError("ttl_seconds must be positive")

    def open_store(self, clock: Clock = None) -> LeaseStore:
        """The configured store (owned by the caller when built here)."""
        if self.store is not None:
            return self.store
        return SQLiteLeaseStore(
            os.path.join(self.directory, LEASE_DB_FILENAME), clock=clock)


class Coordinator:
    """One node's coordination runtime, attached as ``service.coordination``."""

    def __init__(self, service, config: CoordinationConfig,
                 clock: Clock = None):
        self._service = service
        self._config = config
        self._clock = clock
        self._store = config.open_store(clock=clock)
        self._owns_store = config.store is None
        self._lock = threading.RLock()
        self._guard: Optional[FencingGuard] = None
        self._demotions = 0
        self._demoted = False
        #: Set (cheaply, from any thread) when the journal fence rejected an
        #: append; the next heartbeat demotes.  Demotion takes every shard
        #: lock, so it must never run on a bus handler's thread.
        self._fence_tripped = threading.Event()
        self.elector = LeaderElector(
            self._store, name=config.lease_name, node_id=config.node_id,
            ttl_seconds=config.ttl_seconds, clock=clock,
            on_elected=self._on_elected, on_deposed=self._on_deposed)
        if service.persistence is not None:
            service.persistence.on_fenced = self._on_journal_fenced
        if config.acquire_on_start:
            self.heartbeat()

    # ------------------------------------------------------------------ state
    @property
    def store(self) -> LeaseStore:
        return self._store

    @property
    def is_leader(self) -> bool:
        return self.elector.is_leader

    @property
    def node_id(self) -> str:
        return self.elector.node_id

    @property
    def token(self) -> int:
        return self.elector.token

    @property
    def guard(self) -> Optional[FencingGuard]:
        return self._guard

    # -------------------------------------------------------------- heartbeat
    def heartbeat(self) -> bool:
        """One election round; returns whether this node leads afterwards.

        The single periodic entry point (the election-aware
        :class:`~repro.scheduler.SchedulerDaemon` calls it every poll):
        processes a pending fence demotion first, then renews or campaigns.
        """
        with self._lock:
            if self._fence_tripped.is_set():
                self._fence_tripped.clear()
                if self._guard is not None:
                    self._guard.invalidate("journal append was fenced")
                self._demote()
                # The elector still thinks it leads; the renew below fails
                # against the newer epoch and records the deposition.
            return self.elector.heartbeat()

    # ------------------------------------------------------------- operations
    def resign(self) -> Dict[str, Any]:
        """Voluntarily hand leadership off (``:resign`` admin operation).

        Releases the lease (the next contender acquires immediately, with
        a fresh fencing token) and demotes this node to read-only.  Raises
        :class:`~repro.errors.NotLeaderError` when not leading.
        """
        with self._lock:
            lease = self.elector.resign()
            return {"resigned": True, "node_id": self.elector.node_id,
                    "lease": lease.to_dict()}

    def status(self) -> Dict[str, Any]:
        report = self.elector.status()
        report["enabled"] = True
        report["role"] = "leader" if report["is_leader"] else "standby"
        report["demoted"] = self._demoted
        report["demotions"] = self._demotions
        report["fencing"] = self._guard.status() if self._guard else None
        persistence = self._service.persistence
        if persistence is not None:
            report["fenced_appends"] = persistence.fenced_appends
        return report

    def close(self) -> None:
        """Resign (per config) and release the store handle."""
        with self._lock:
            if self._config.resign_on_close and self.elector.is_leader:
                try:
                    self.elector.resign()
                except CoordinationError:
                    pass  # lost the lease between the check and the release
            persistence = self._service.persistence
            if persistence is not None:
                persistence.journal.clear_fence()
            if self._owns_store:
                self._store.close()

    # ------------------------------------------------------------------ edges
    def _on_elected(self, lease: Lease) -> None:
        if self._config.fence_writes:
            self._guard = FencingGuard(
                self._store, lease.name, lease.token,
                holder_id=self.elector.node_id,
                revalidate_seconds=self._config.fence_revalidate_seconds)
            check = self._guard.check
            persistence = self._service.persistence
            if persistence is not None:
                persistence.journal.set_fence(self._guard)
            if hasattr(self._service.manager, "set_write_guard"):
                self._service.manager.set_write_guard(
                    lambda operation: check())
        if self._demoted:
            # Re-elected after a demotion: the new epoch makes this node
            # writable again (its journal fence now carries the new token).
            self._service.manager.set_read_only(False)
            self._service.read_only = False
            self._service.primary_hint = None
            self._service.scheduler.dormant = False
            self._demoted = False

    def _on_deposed(self, reason: str) -> None:
        if self._guard is not None:
            self._guard.invalidate(reason)
        if self._config.demote_on_lease_loss:
            self._demote()

    def _on_journal_fenced(self, exc: StaleFencingTokenError) -> None:
        # Runs on the publishing thread (possibly inside a shard's locked
        # flush) — only flag; heartbeat() does the heavy demotion.
        self._fence_tripped.set()

    def _demote(self) -> None:
        if self._demoted:
            return
        self._demoted = True
        self._demotions += 1
        leader = self._store.leader(self._config.lease_name)
        self._service.manager.set_read_only(True)
        self._service.read_only = True
        if leader is not None and leader.holder_id != self.elector.node_id:
            self._service.primary_hint = leader.holder_id
        self._service.scheduler.dormant = True
