"""Leases with fencing tokens: the compare-and-swap ground truth.

A *lease* is time-bounded, named ownership: ``acquire`` grants the name to
a holder for ``ttl_seconds``, ``renew`` extends it while still held, and an
expired (or released) lease is up for grabs.  Every successful *transfer*
of ownership increments the lease's **fencing token** — a monotonically
increasing epoch number that never decreases, not even across release.
Downstream write paths (the journal, the runtime managers) compare a
writer's token against :meth:`LeaseStore.latest_token`: a write stamped
with an older token provably comes from a deposed holder and is rejected
(see :mod:`repro.coordination.fencing`).

Two stores implement the same contract:

* :class:`MemoryLeaseStore` — process-local, on the injected
  :class:`~repro.clock.Clock`; deterministic tests drive expiry with a
  :class:`~repro.clock.SimulatedClock`.
* :class:`SQLiteLeaseStore` — one compare-and-swap table in a SQLite file
  shared by every process of the deployment.  All decisions happen inside
  ``BEGIN IMMEDIATE`` transactions, so concurrent acquirers serialize on
  SQLite's write lock and exactly one wins each epoch.

Expiry is judged by the *store's* clock on every call — holders do not
self-report liveness, they renew or lose the lease.  Wall-clock skew
between processes is therefore bounded by the TTL, the classic lease
trade-off (Chubby, §2.8): pick a TTL an order of magnitude above expected
clock error and renewal jitter.
"""

from __future__ import annotations

import os
import sqlite3
import threading
from dataclasses import dataclass
from datetime import datetime, timedelta
from typing import Any, Dict, Optional

from ..clock import Clock, SystemClock
from ..errors import CoordinationError

#: Default lease name used by the service tier's wiring.
DEFAULT_LEASE_NAME = "gelee-primary"


@dataclass
class Lease:
    """One named lease as recorded by a store."""

    name: str
    holder_id: str
    token: int
    acquired_at: datetime
    expires_at: datetime
    #: A voluntarily released lease keeps its row (the token counter must
    #: survive release) but is immediately up for grabs.
    released: bool = False

    def is_expired(self, now: datetime) -> bool:
        return self.released or now >= self.expires_at

    def remaining(self, now: datetime) -> float:
        """Seconds of validity left (0 when expired or released)."""
        if self.released:
            return 0.0
        return max(0.0, (self.expires_at - now).total_seconds())

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "holder_id": self.holder_id,
            "token": self.token,
            "acquired_at": self.acquired_at.isoformat(),
            "expires_at": self.expires_at.isoformat(),
            "released": self.released,
        }


class LeaseStore:
    """The compare-and-swap lease contract both backends implement."""

    def acquire(self, name: str, holder_id: str,
                ttl_seconds: float) -> Optional[Lease]:
        """Try to take (or extend) the lease; ``None`` when somebody else
        validly holds it.

        Granting rules, evaluated atomically against the store's clock:

        * no lease recorded → granted with token ``1``;
        * recorded but expired or released → **transferred**: granted with
          the previous token ``+ 1`` (the fencing epoch advances);
        * still held by ``holder_id`` itself → extended, token unchanged
          (re-acquiring your own live lease is a renewal, not a transfer);
        * validly held by another holder → refused.
        """
        raise NotImplementedError

    def renew(self, name: str, holder_id: str, token: int,
              ttl_seconds: float) -> Optional[Lease]:
        """Extend the lease iff ``holder_id``/``token`` still match the
        record; ``None`` otherwise (the holder was deposed).

        An *expired but untransferred* lease renews successfully: the store
        is the arbiter, and if no challenger claimed the name, ownership
        was never actually lost — the epoch must not advance.
        """
        raise NotImplementedError

    def release(self, name: str, holder_id: str, token: int) -> bool:
        """Voluntarily give the lease up (resign); ``True`` when this call
        released it.  The token counter survives: the next acquire still
        gets a strictly larger fencing token."""
        raise NotImplementedError

    def get(self, name: str) -> Optional[Lease]:
        """The recorded lease (possibly expired/released), or ``None``."""
        raise NotImplementedError

    def leader(self, name: str) -> Optional[Lease]:
        """The currently *valid* lease, or ``None`` when up for grabs."""
        lease = self.get(name)
        if lease is None or lease.is_expired(self.now()):
            return None
        return lease

    def latest_token(self, name: str) -> int:
        """The highest fencing token ever issued for ``name`` (0 = never).

        Monotonic across expiry *and* voluntary release — this is what
        makes a token a fence: a holder's token is valid exactly while no
        newer epoch exists.
        """
        raise NotImplementedError

    def validate(self, name: str, token: int) -> bool:
        """Whether ``token`` is still the newest epoch of ``name``."""
        return token >= self.latest_token(name)

    def now(self) -> datetime:
        raise NotImplementedError

    def close(self) -> None:
        """Release backend handles (no-op for the in-memory store)."""

    def describe(self) -> Dict[str, Any]:
        raise NotImplementedError


class MemoryLeaseStore(LeaseStore):
    """Process-local lease store on an injected clock.

    The deterministic twin of :class:`SQLiteLeaseStore`: tests share one
    instance (and one :class:`~repro.clock.SimulatedClock`) between the
    contenders and drive expiry by advancing time.
    """

    def __init__(self, clock: Clock = None):
        self._clock = clock or SystemClock()
        self._leases: Dict[str, Lease] = {}
        self._lock = threading.RLock()

    def now(self) -> datetime:
        return self._clock.now()

    def acquire(self, name: str, holder_id: str,
                ttl_seconds: float) -> Optional[Lease]:
        _check_args(name, holder_id, ttl_seconds)
        with self._lock:
            now = self.now()
            current = self._leases.get(name)
            if current is None:
                granted = Lease(name, holder_id, 1, now,
                                _expiry(now, ttl_seconds))
            elif current.holder_id == holder_id and not current.is_expired(now):
                granted = Lease(name, holder_id, current.token,
                                current.acquired_at, _expiry(now, ttl_seconds))
            elif current.is_expired(now):
                granted = Lease(name, holder_id, current.token + 1, now,
                                _expiry(now, ttl_seconds))
            else:
                return None
            self._leases[name] = granted
            return granted

    def renew(self, name: str, holder_id: str, token: int,
              ttl_seconds: float) -> Optional[Lease]:
        _check_args(name, holder_id, ttl_seconds)
        with self._lock:
            current = self._leases.get(name)
            if (current is None or current.released
                    or current.holder_id != holder_id
                    or current.token != token):
                return None
            renewed = Lease(name, holder_id, token, current.acquired_at,
                            _expiry(self.now(), ttl_seconds))
            self._leases[name] = renewed
            return renewed

    def release(self, name: str, holder_id: str, token: int) -> bool:
        with self._lock:
            current = self._leases.get(name)
            if (current is None or current.released
                    or current.holder_id != holder_id
                    or current.token != token):
                return False
            self._leases[name] = Lease(name, holder_id, token,
                                       current.acquired_at,
                                       current.expires_at, released=True)
            return True

    def get(self, name: str) -> Optional[Lease]:
        with self._lock:
            lease = self._leases.get(name)
            return None if lease is None else Lease(**vars(lease))

    def latest_token(self, name: str) -> int:
        with self._lock:
            lease = self._leases.get(name)
            return lease.token if lease is not None else 0

    def describe(self) -> Dict[str, Any]:
        return {"type": "memory"}


class SQLiteLeaseStore(LeaseStore):
    """Cross-process leases on one SQLite compare-and-swap table.

    Every process opens its own store against the same file; each decision
    runs in a ``BEGIN IMMEDIATE`` transaction, so SQLite's write lock
    serializes concurrent acquirers and the read-decide-write is atomic.
    Timestamps are stored as ISO-8601 text produced by this store's clock.
    """

    _SCHEMA = """
        CREATE TABLE IF NOT EXISTS leases (
            name        TEXT PRIMARY KEY,
            holder_id   TEXT NOT NULL,
            token       INTEGER NOT NULL,
            acquired_at TEXT NOT NULL,
            expires_at  TEXT NOT NULL,
            released    INTEGER NOT NULL DEFAULT 0
        )
    """

    def __init__(self, path: str, clock: Clock = None,
                 busy_timeout: float = 5.0):
        self._path = path
        self._clock = clock or SystemClock()
        directory = os.path.dirname(os.path.abspath(path))
        os.makedirs(directory, exist_ok=True)
        # One connection, guarded by our own lock: the store is shared
        # between an elector thread and a supervisor/daemon thread.
        self._conn = sqlite3.connect(path, check_same_thread=False,
                                     isolation_level=None)
        self._conn.execute("PRAGMA busy_timeout = {}".format(
            int(busy_timeout * 1000)))
        self._conn.execute("PRAGMA journal_mode = WAL")
        self._conn.execute(self._SCHEMA)
        self._lock = threading.RLock()

    def now(self) -> datetime:
        return self._clock.now()

    def close(self) -> None:
        with self._lock:
            self._conn.close()

    # ------------------------------------------------------------------- CAS
    def acquire(self, name: str, holder_id: str,
                ttl_seconds: float) -> Optional[Lease]:
        _check_args(name, holder_id, ttl_seconds)
        with self._lock:
            now = self.now()
            self._conn.execute("BEGIN IMMEDIATE")
            try:
                current = self._row(name)
                if current is None:
                    granted = Lease(name, holder_id, 1, now,
                                    _expiry(now, ttl_seconds))
                elif (current.holder_id == holder_id
                        and not current.is_expired(now)):
                    granted = Lease(name, holder_id, current.token,
                                    current.acquired_at,
                                    _expiry(now, ttl_seconds))
                elif current.is_expired(now):
                    granted = Lease(name, holder_id, current.token + 1, now,
                                    _expiry(now, ttl_seconds))
                else:
                    self._conn.execute("ROLLBACK")
                    return None
                self._put(granted)
                self._conn.execute("COMMIT")
                return granted
            except BaseException:
                self._conn.execute("ROLLBACK")
                raise

    def renew(self, name: str, holder_id: str, token: int,
              ttl_seconds: float) -> Optional[Lease]:
        _check_args(name, holder_id, ttl_seconds)
        with self._lock:
            self._conn.execute("BEGIN IMMEDIATE")
            try:
                current = self._row(name)
                if (current is None or current.released
                        or current.holder_id != holder_id
                        or current.token != token):
                    self._conn.execute("ROLLBACK")
                    return None
                renewed = Lease(name, holder_id, token, current.acquired_at,
                                _expiry(self.now(), ttl_seconds))
                self._put(renewed)
                self._conn.execute("COMMIT")
                return renewed
            except BaseException:
                self._conn.execute("ROLLBACK")
                raise

    def release(self, name: str, holder_id: str, token: int) -> bool:
        with self._lock:
            self._conn.execute("BEGIN IMMEDIATE")
            try:
                current = self._row(name)
                if (current is None or current.released
                        or current.holder_id != holder_id
                        or current.token != token):
                    self._conn.execute("ROLLBACK")
                    return False
                self._conn.execute(
                    "UPDATE leases SET released = 1 WHERE name = ?", (name,))
                self._conn.execute("COMMIT")
                return True
            except BaseException:
                self._conn.execute("ROLLBACK")
                raise

    # ----------------------------------------------------------------- reads
    def get(self, name: str) -> Optional[Lease]:
        with self._lock:
            return self._row(name)

    def latest_token(self, name: str) -> int:
        with self._lock:
            row = self._conn.execute(
                "SELECT token FROM leases WHERE name = ?", (name,)).fetchone()
            return int(row[0]) if row else 0

    def describe(self) -> Dict[str, Any]:
        return {"type": "sqlite", "path": os.path.abspath(self._path)}

    # -------------------------------------------------------------- internal
    def _row(self, name: str) -> Optional[Lease]:
        row = self._conn.execute(
            "SELECT holder_id, token, acquired_at, expires_at, released "
            "FROM leases WHERE name = ?", (name,)).fetchone()
        if row is None:
            return None
        return Lease(
            name=name, holder_id=row[0], token=int(row[1]),
            acquired_at=datetime.fromisoformat(row[2]),
            expires_at=datetime.fromisoformat(row[3]),
            released=bool(row[4]),
        )

    def _put(self, lease: Lease) -> None:
        self._conn.execute(
            "INSERT INTO leases "
            "(name, holder_id, token, acquired_at, expires_at, released) "
            "VALUES (?, ?, ?, ?, ?, 0) "
            "ON CONFLICT(name) DO UPDATE SET holder_id = excluded.holder_id, "
            "token = excluded.token, acquired_at = excluded.acquired_at, "
            "expires_at = excluded.expires_at, released = 0",
            (lease.name, lease.holder_id, lease.token,
             lease.acquired_at.isoformat(), lease.expires_at.isoformat()))


def _expiry(now: datetime, ttl_seconds: float) -> datetime:
    return now + timedelta(seconds=ttl_seconds)


def _check_args(name: str, holder_id: str, ttl_seconds: float) -> None:
    if not name:
        raise CoordinationError("a lease needs a non-empty name")
    if not holder_id:
        raise CoordinationError("a lease needs a non-empty holder_id")
    if ttl_seconds is None or ttl_seconds <= 0:
        raise CoordinationError("ttl_seconds must be positive")
