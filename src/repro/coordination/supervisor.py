"""Automatic failover: the daemon that decides when ``promote()`` runs.

The replication subsystem shipped zero-loss promotion (PR 5) but left the
*decision* to a human.  :class:`FailoverSupervisor` closes the loop for one
standby: it watches the primary through a
:class:`~repro.coordination.HealthMonitor`, and once the failure threshold
is crossed it campaigns for the leadership lease.  Winning proves two
things at once — the primary stopped renewing (it is dead or partitioned
away from the store, either way unfit to lead) and *this* standby, not a
sibling, owns the next epoch.  Only then does it drive
:meth:`~repro.replication.ReadReplica.promote`, which drains the dead
primary's journal tail, fails interrupted invocations, wakes the dormant
scheduler and flips the runtime writable.

The acquisition bumps the fencing token, so the moment the supervisor wins,
the old primary's epoch is dead on arrival: its journal fence and write
guard reject every late write with
:class:`~repro.errors.StaleFencingTokenError` — split-brain fenced from
both sides.

After promotion the supervisor stays on as the new primary's coordination
attachment (``service.coordination``): it keeps renewing the lease on every
poll, serves ``GET /v2/runtime/coordination`` and honours ``:resign``.

Deterministic hosts call :meth:`poll` with a
:class:`~repro.clock.SimulatedClock`; wall-clock deployments run
:meth:`start`'s daemon thread.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Dict, Optional

from ..clock import Clock
from ..errors import CoordinationError, NotLeaderError
from .elector import LeaderElector
from .fencing import FencingGuard
from .health import HealthMonitor
from .lease import DEFAULT_LEASE_NAME, LeaseStore


class FailoverSupervisor:
    """Watch the primary; on sustained failure, win the lease and promote."""

    def __init__(self, replica, monitor: HealthMonitor,
                 store: LeaseStore = None, elector: LeaderElector = None,
                 lease_name: str = DEFAULT_LEASE_NAME,
                 ttl_seconds: float = 15.0, node_id: str = None,
                 clock: Clock = None,
                 fence_revalidate_seconds: float = 1.0):
        if elector is None:
            if store is None:
                raise CoordinationError(
                    "the supervisor needs the deployment's lease store "
                    "(store=...) or a pre-built elector")
            elector = LeaderElector(
                store, name=lease_name, ttl_seconds=ttl_seconds,
                node_id=node_id or getattr(replica, "replica_id", None),
                clock=clock)
        self._replica = replica
        self._monitor = monitor
        self.elector = elector
        self._clock = clock
        self._fence_revalidate = fence_revalidate_seconds
        self._lock = threading.RLock()
        self._guard: Optional[FencingGuard] = None
        self._failovers = 0
        self._polls = 0
        self._last_report: Dict[str, Any] = {"state": "watching"}
        self._resigned = False
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None

    # ------------------------------------------------------------------ state
    @property
    def replica(self):
        return self._replica

    @property
    def monitor(self) -> HealthMonitor:
        return self._monitor

    @property
    def failovers(self) -> int:
        with self._lock:
            return self._failovers

    @property
    def is_leader(self) -> bool:
        return self.elector.is_leader

    @property
    def node_id(self) -> str:
        return self.elector.node_id

    # ------------------------------------------------------------------- poll
    def poll(self, now=None) -> Dict[str, Any]:
        """One supervision step; returns what happened.

        States: ``watching`` (primary healthy / threshold not crossed),
        ``waiting_for_lease`` (primary down but its lease has not expired,
        or a sibling standby won), ``failover`` (this poll promoted),
        ``promoted`` (steady state after failover; renews the lease),
        ``resigned`` (leadership given back; supervision over).
        """
        with self._lock:
            self._polls += 1
            if self._resigned:
                return dict(self._last_report)
            if self._replica.is_promoted:
                # Steady state: we are the primary now; keep the lease warm.
                leading = self.elector.heartbeat()
                report = {"state": "promoted", "is_leader": leading,
                          "failovers": self._failovers}
                self._last_report = report
                return dict(report)
            self._monitor.poll(now=now)
            if not self._monitor.is_unhealthy:
                report = {
                    "state": "watching",
                    "consecutive_failures": self._monitor.consecutive_failures,
                }
                self._last_report = report
                return dict(report)
            # The primary is judged dead; the lease store arbitrates.  The
            # acquisition only succeeds once the primary's lease ran out —
            # a live-but-slow primary keeps renewing and keeps us out.
            if not self.elector.try_acquire():
                report = {"state": "waiting_for_lease",
                          "unhealthy_since": self._unhealthy_since_iso()}
                self._last_report = report
                return dict(report)
            report = self._failover()
            self._last_report = report
            return dict(report)

    def _unhealthy_since_iso(self) -> Optional[str]:
        since = self._monitor.unhealthy_since
        return since.isoformat() if since is not None else None

    def _failover(self) -> Dict[str, Any]:
        detected_at = self._monitor.unhealthy_since
        started = time.perf_counter()
        promotion = self._replica.promote()
        service = self._replica.service
        lease = self.elector.lease
        if lease is not None:
            self._guard = FencingGuard(
                self.elector.store, lease.name, lease.token,
                holder_id=self.elector.node_id,
                revalidate_seconds=self._fence_revalidate)
            check = self._guard.check
            if hasattr(service.manager, "set_write_guard"):
                service.manager.set_write_guard(lambda operation: check())
        # The promoted service now answers /v2/runtime/coordination itself.
        service.coordination = self
        self._failovers += 1
        detection_seconds = None
        if detected_at is not None:
            now = self._clock.now() if self._clock is not None \
                else self.elector.store.now()
            detection_seconds = max(0.0, (now - detected_at).total_seconds())
        self._monitor.reset()
        return {
            "state": "failover",
            "token": self.elector.token,
            "promotion": promotion,
            "promotion_ms": round((time.perf_counter() - started) * 1000, 3),
            "detection_to_promotion_seconds": detection_seconds,
            "failovers": self._failovers,
        }

    # ------------------------------------------------- coordination attachment
    def heartbeat(self) -> bool:
        """Elector heartbeat (the election-aware daemon can drive this)."""
        return self.elector.heartbeat()

    def resign(self) -> Dict[str, Any]:
        """Give the won leadership back (``:resign`` on the promoted node).

        Releases the lease and flips the promoted runtime read-only again —
        promotion itself is one-way, but a resigned node must stop writing
        so the next epoch's winner is the only writer.
        """
        with self._lock:
            if not self.elector.is_leader:
                raise NotLeaderError(
                    "supervisor {!r} does not hold the lease; nothing to "
                    "resign".format(self.elector.node_id))
            lease = self.elector.resign()
            if self._guard is not None:
                self._guard.invalidate("resigned voluntarily")
            service = self._replica.service
            service.manager.set_read_only(True)
            service.read_only = True
            service.scheduler.dormant = True
            self._resigned = True
            self._last_report = {"state": "resigned"}
            return {"resigned": True, "node_id": self.elector.node_id,
                    "lease": lease.to_dict()}

    def status(self) -> Dict[str, Any]:
        report = self.elector.status()
        with self._lock:
            report.update({
                "enabled": True,
                "role": "leader" if report["is_leader"] else "standby",
                "supervisor": True,
                "polls": self._polls,
                "failovers": self._failovers,
                "last_report": dict(self._last_report),
                "monitor": self._monitor.status(),
                "fencing": self._guard.status() if self._guard else None,
            })
        return report

    # ---------------------------------------------------------------- daemon
    @property
    def is_running(self) -> bool:
        thread = self._thread
        return thread is not None and thread.is_alive()

    def start(self, poll_seconds: float = 0.5) -> "FailoverSupervisor":
        """Run :meth:`poll` on a daemon thread every ``poll_seconds``."""
        if poll_seconds <= 0:
            raise CoordinationError("poll_seconds must be positive")
        with self._lock:
            if self.is_running:
                return self
            self._stop.clear()
            self._thread = threading.Thread(
                target=self._run, args=(poll_seconds,), daemon=True,
                name="gelee-failover-supervisor")
            self._thread.start()
        return self

    def stop(self, timeout: float = 5.0) -> None:
        """Idempotent, thread-safe shutdown; wakes a sleeping poll loop."""
        self._stop.set()
        with self._lock:
            thread, self._thread = self._thread, None
        if thread is not None and thread is not threading.current_thread():
            thread.join(timeout=timeout)

    def _run(self, poll_seconds: float) -> None:
        while not self._stop.is_set():
            try:
                self.poll()
            except Exception:  # noqa: BLE001 - supervision must outlive bad polls
                pass
            self._stop.wait(poll_seconds)
