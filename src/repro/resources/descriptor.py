"""Resource descriptors and credentials.

A :class:`ResourceDescriptor` is everything the lifecycle layer may know about
a managed artifact: URI, type string (the managing application), optional
credentials, an optional display name and the user who owns the resource (the
"resource owner" role of §IV.D).  The resource itself stays a black box.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional

from ..errors import ValidationError
from ..identifiers import normalize_uri


@dataclass(frozen=True)
class Credentials:
    """Login information for password-protected resources.

    Only a username and an opaque secret are stored; how they are used is up
    to the resource plug-in.  ``repr`` hides the secret so credentials never
    leak into logs.
    """

    username: str
    secret: str = ""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "Credentials(username={!r}, secret='***')".format(self.username)

    def to_dict(self) -> Dict[str, str]:
        return {"username": self.username, "secret": self.secret}

    @classmethod
    def from_dict(cls, data: Dict[str, str]) -> "Credentials":
        return cls(username=data.get("username", ""), secret=data.get("secret", ""))


@dataclass
class ResourceDescriptor:
    """What the lifecycle knows about a managed resource."""

    uri: str
    resource_type: str
    display_name: str = ""
    owner: str = ""
    credentials: Optional[Credentials] = None
    metadata: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self):
        if not self.resource_type or not self.resource_type.strip():
            raise ValidationError(["a resource descriptor needs a resource type"])
        self.uri = normalize_uri(self.uri)
        self.resource_type = self.resource_type.strip()
        if not self.display_name:
            self.display_name = self.uri

    def with_credentials(self, username: str, secret: str = "") -> "ResourceDescriptor":
        return ResourceDescriptor(
            uri=self.uri,
            resource_type=self.resource_type,
            display_name=self.display_name,
            owner=self.owner,
            credentials=Credentials(username, secret),
            metadata=dict(self.metadata),
        )

    def to_dict(self, include_credentials: bool = False) -> Dict[str, Any]:
        data = {
            "uri": self.uri,
            "resource_type": self.resource_type,
            "display_name": self.display_name,
            "owner": self.owner,
            "metadata": dict(self.metadata),
        }
        if include_credentials and self.credentials is not None:
            data["credentials"] = self.credentials.to_dict()
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ResourceDescriptor":
        credentials_data = data.get("credentials")
        return cls(
            uri=data["uri"],
            resource_type=data["resource_type"],
            display_name=data.get("display_name", ""),
            owner=data.get("owner", ""),
            credentials=Credentials.from_dict(credentials_data) if credentials_data else None,
            metadata=dict(data.get("metadata", {})),
        )
