"""The resource manager.

Fig. 2 places a "Resource manager" in the kernel next to the lifecycle
manager; Fig. 4's widget shows "resource-specific information provided by the
resource manager … the interface by which we can render any resource in a
transparent way" (§V.C).

:class:`ResourceManager` keeps the registered plug-ins (adapters), resolves a
URI + type to a live handle inside the simulated managing application, and
renders resources uniformly for the widgets.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from ..errors import ResourceNotFoundError, UnknownResourceTypeError
from .descriptor import ResourceDescriptor


@dataclass
class ResourceView:
    """Uniform rendering of a resource for the widgets (title, summary, state)."""

    uri: str
    resource_type: str
    title: str
    summary: str = ""
    state: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "uri": self.uri,
            "resource_type": self.resource_type,
            "title": self.title,
            "summary": self.summary,
            "state": dict(self.state),
        }


class ResourceManager:
    """Registry of resource plug-ins and uniform access to managed resources."""

    def __init__(self):
        self._adapters: Dict[str, Any] = {}

    # ----------------------------------------------------------------- adapters
    def register_adapter(self, adapter, replace: bool = False):
        """Register a plug-in for its resource type (see :mod:`repro.plugins`)."""
        resource_type = adapter.resource_type
        if resource_type in self._adapters and not replace:
            raise UnknownResourceTypeError(
                "an adapter for resource type {!r} is already registered".format(resource_type)
            )
        self._adapters[resource_type] = adapter
        return adapter

    def adapter(self, resource_type: str):
        try:
            return self._adapters[resource_type]
        except KeyError:
            raise UnknownResourceTypeError(
                "no adapter registered for resource type {!r}".format(resource_type)
            ) from None

    def has_adapter(self, resource_type: str) -> bool:
        return resource_type in self._adapters

    def resource_types(self) -> List[str]:
        return sorted(self._adapters)

    # ---------------------------------------------------------------- resources
    def exists(self, descriptor: ResourceDescriptor) -> bool:
        """True when the descriptor's URI resolves in its managing application."""
        adapter = self.adapter(descriptor.resource_type)
        return adapter.exists(descriptor.uri)

    def require(self, descriptor: ResourceDescriptor) -> None:
        """Raise :class:`ResourceNotFoundError` unless the resource exists."""
        if not self.exists(descriptor):
            raise ResourceNotFoundError(
                "no {} resource at {!r}".format(descriptor.resource_type, descriptor.uri)
            )

    def render(self, descriptor: ResourceDescriptor) -> ResourceView:
        """Render the resource transparently (Fig. 4's right-hand panel)."""
        adapter = self.adapter(descriptor.resource_type)
        self.require(descriptor)
        state = adapter.describe(descriptor.uri)
        title = state.get("title") or descriptor.display_name
        summary = state.get("summary", "")
        return ResourceView(
            uri=descriptor.uri,
            resource_type=descriptor.resource_type,
            title=title,
            summary=summary,
            state=state,
        )

    def handle(self, descriptor: ResourceDescriptor):
        """Return the adapter-specific handle used by action implementations."""
        adapter = self.adapter(descriptor.resource_type)
        self.require(descriptor)
        return adapter.handle(descriptor.uri)
