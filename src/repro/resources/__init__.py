"""Resources: the artifacts whose lifecycles Gelee manages.

"At the lifecycle level, all the model needs to know of the resource is its
URI and its type, a string whose main purpose is to denote which is the
managing application. … If the resource is password-protected, the model will
also need login information.  No other information is needed." (§IV.A)
"""

from .descriptor import ResourceDescriptor, Credentials
from .manager import ResourceManager, ResourceView
from .composite import CompositeResource, CompositeCoordinator, COMPOSITE_RESOURCE_TYPE

__all__ = [
    "ResourceDescriptor",
    "Credentials",
    "ResourceManager",
    "ResourceView",
    "CompositeResource",
    "CompositeCoordinator",
    "COMPOSITE_RESOURCE_TYPE",
]
