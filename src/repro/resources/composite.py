"""Composite (structured) resources — the paper's future-work extension.

§VI: "Another aspect we think it is interesting to explore is to link the
lifecycle to complex resource types, and specifically to composed resources …
for example the state of the art is composed of the main documents, the
references, presentations, etc. — and managing a complex resource with
components and with potentially independent but somehow interacting lifecycles
is something that is part of our future explorations."

This module implements that extension on top of the existing kernel:

* a :class:`CompositeResource` groups component :class:`ResourceDescriptor`
  objects under one logical URI (so a lifecycle can be attached to the whole,
  exactly like to any other resource — universality is preserved);
* :class:`CompositeCoordinator` relates the composite's lifecycle instance to
  its components' instances: it reports aggregated progress, tells the owner
  which components lag behind a given phase, and can (on explicit request)
  nudge component tokens — never automatically, keeping the human in charge.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..errors import ResourceError
from ..identifiers import new_id, normalize_uri
from .descriptor import ResourceDescriptor

#: Resource type string used for composites; no adapter is required because a
#: composite is a grouping known to Gelee itself, not to a managing application.
COMPOSITE_RESOURCE_TYPE = "Composite resource"


@dataclass
class CompositeResource:
    """A structured artifact made of component resources.

    Attributes:
        name: display name of the composite ("D1.1 State of the Art package").
        owner: the resource owner (§IV.D) of the composite itself.
        uri: logical URI identifying the composite; generated when omitted.
        components: component descriptors keyed by a role label
            ("main document", "references", "presentation", ...).
    """

    name: str
    owner: str = ""
    uri: str = field(default_factory=lambda: "urn:gelee:composite:{}".format(new_id("cmp")))
    components: Dict[str, ResourceDescriptor] = field(default_factory=dict)

    def __post_init__(self):
        self.uri = normalize_uri(self.uri)

    def add_component(self, role: str, descriptor: ResourceDescriptor) -> ResourceDescriptor:
        """Attach a component under a role; one descriptor per role."""
        if not role or not role.strip():
            raise ResourceError("a component needs a non-empty role label")
        if role in self.components:
            raise ResourceError("the composite already has a component for role {!r}".format(role))
        self.components[role] = descriptor
        return descriptor

    def remove_component(self, role: str) -> Optional[ResourceDescriptor]:
        return self.components.pop(role, None)

    def component(self, role: str) -> ResourceDescriptor:
        try:
            return self.components[role]
        except KeyError:
            raise ResourceError("no component with role {!r}".format(role)) from None

    def component_uris(self) -> List[str]:
        return [descriptor.uri for descriptor in self.components.values()]

    def describe(self) -> ResourceDescriptor:
        """The composite as a plain resource descriptor (what the kernel sees)."""
        return ResourceDescriptor(
            uri=self.uri,
            resource_type=COMPOSITE_RESOURCE_TYPE,
            display_name=self.name,
            owner=self.owner,
            metadata={"components": {role: d.uri for role, d in self.components.items()}},
        )


@dataclass
class ComponentProgress:
    """Progress of one component relative to the composite's lifecycle."""

    role: str
    resource_uri: str
    instance_id: Optional[str]
    phase_id: Optional[str]
    phase_index: Optional[int]
    completed: bool

    def to_dict(self) -> Dict[str, object]:
        return {
            "role": self.role,
            "resource_uri": self.resource_uri,
            "instance_id": self.instance_id,
            "phase_id": self.phase_id,
            "phase_index": self.phase_index,
            "completed": self.completed,
        }


class CompositeCoordinator:
    """Relates a composite's lifecycle to the lifecycles of its components.

    The coordinator never moves tokens on its own: it answers the questions a
    composite owner has ("how far along are the pieces?", "which pieces lag
    behind phase X?") and offers an explicit, owner-invoked nudge operation.
    """

    def __init__(self, manager, composite: CompositeResource):
        self._manager = manager
        self._composite = composite

    @property
    def composite(self) -> CompositeResource:
        return self._composite

    # ------------------------------------------------------------------ queries
    def component_progress(self, reference_model=None) -> List[ComponentProgress]:
        """Progress of every component, ordered as the components were added.

        ``reference_model`` supplies the phase ordering used for
        ``phase_index``; it defaults to the model of each component's own
        instance (indexes are then only comparable when components share a
        lifecycle model, the common case for a quality plan).
        """
        progress = []
        for role, descriptor in self._composite.components.items():
            instances = self._manager.instances_for_resource(descriptor.uri)
            if not instances:
                progress.append(ComponentProgress(role, descriptor.uri, None, None, None, False))
                continue
            instance = instances[-1]
            model = reference_model or instance.model
            phase_index = None
            if instance.current_phase_id is not None and instance.current_phase_id in model.phase_ids:
                phase_index = model.phase_ids.index(instance.current_phase_id)
            progress.append(ComponentProgress(
                role=role,
                resource_uri=descriptor.uri,
                instance_id=instance.instance_id,
                phase_id=instance.current_phase_id,
                phase_index=phase_index,
                completed=instance.is_completed,
            ))
        return progress

    def completion_ratio(self) -> float:
        """Fraction of components whose lifecycle reached an end phase."""
        progress = self.component_progress()
        if not progress:
            return 0.0
        return sum(1 for item in progress if item.completed) / len(progress)

    def laggards(self, phase_id: str, reference_model) -> List[ComponentProgress]:
        """Components whose token has not yet reached ``phase_id`` of ``reference_model``."""
        if phase_id not in reference_model.phase_ids:
            raise ResourceError("phase {!r} is not part of the reference model".format(phase_id))
        threshold = reference_model.phase_ids.index(phase_id)
        lagging = []
        for item in self.component_progress(reference_model=reference_model):
            if item.completed:
                continue
            if item.phase_index is None or item.phase_index < threshold:
                lagging.append(item)
        return lagging

    def aggregate_summary(self) -> Dict[str, object]:
        """One row the monitoring cockpit can show for the whole composite."""
        progress = self.component_progress()
        return {
            "composite_uri": self._composite.uri,
            "name": self._composite.name,
            "components": len(progress),
            "with_lifecycle": sum(1 for item in progress if item.instance_id),
            "completed": sum(1 for item in progress if item.completed),
            "completion_ratio": round(self.completion_ratio(), 3),
        }

    # ------------------------------------------------------------------- nudging
    def nudge_component(self, role: str, actor: str, phase_id: str,
                        annotation: str = None):
        """Move one component's token on behalf of the composite owner.

        This is an explicit, human-initiated operation — the composite never
        drives its parts automatically (same philosophy as the rest of Gelee).
        """
        descriptor = self._composite.component(role)
        instances = self._manager.instances_for_resource(descriptor.uri)
        if not instances:
            raise ResourceError("component {!r} has no lifecycle instance to move".format(role))
        instance = instances[-1]
        return self._manager.move_to(instance.instance_id, actor, phase_id,
                                     annotation=annotation)
