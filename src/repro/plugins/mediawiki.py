"""MediaWiki adapter.

Maps the standard action types onto wiki operations: access rights become
page protection plus grants, review requests become talk-page entries and
notifications, snapshots are wiki revisions, publication links the page from
the project site.
"""

from __future__ import annotations

from typing import Any, Dict, List

from ..actions import library
from ..actions.definitions import ActionImplementation
from ..errors import ActionInvocationError
from .base import ActionContext, ResourceAdapter


class MediaWikiAdapter(ResourceAdapter):
    """Plug-in for the "MediaWiki page" resource type."""

    resource_type = "MediaWiki page"

    def build_implementations(self) -> List[ActionImplementation]:
        return [
            self._implementation(library.CHANGE_ACCESS_RIGHTS, self._change_access_rights,
                                 "Protect/unprotect the page and adjust grants."),
            self._implementation(library.NOTIFY_REVIEWERS, self._notify_reviewers,
                                 "Notify reviewers and leave a talk-page entry."),
            self._implementation(library.SEND_FOR_REVIEW, self._send_for_review,
                                 "Open a review round on the talk page."),
            self._implementation(library.COLLECT_REVIEWS, self._collect_reviews,
                                 "Count talk-page entries of the review round."),
            self._implementation(library.GENERATE_PDF, self._generate_pdf,
                                 "Export the page to PDF."),
            self._implementation(library.POST_ON_WEBSITE, self._post_on_website,
                                 "Link the page from the project site."),
            self._implementation(library.CREATE_SNAPSHOT, self._create_snapshot,
                                 "Record a named page revision."),
            self._implementation(library.SUBSCRIBE_TO_CHANGES, self._subscribe,
                                 "Add a user to the page watchers."),
            self._implementation(library.ARCHIVE_RESOURCE, self._archive,
                                 "Protect the page at sysop level and mark it archived."),
            self._implementation(library.SUBMIT_TO_AGENCY, self._submit_to_agency,
                                 "Export the page and send it to the agency."),
        ]

    # --------------------------------------------------------------- callables
    def _change_access_rights(self, context: ActionContext) -> Dict[str, Any]:
        visibility = context.parameter("visibility")
        if visibility == "private":
            self.application.protect(context.resource_uri, level="sysop")
        elif visibility in ("team", "consortium"):
            self.application.protect(context.resource_uri, level="autoconfirmed")
        elif visibility == "public":
            self.application.unprotect(context.resource_uri)
        access = self.application.set_access(
            context.resource_uri,
            visibility=visibility,
            editors=context.parameter_list("editors"),
            readers=context.parameter_list("readers"),
        )
        return {
            "visibility": access.visibility,
            "protection": self.application.protection_level(context.resource_uri),
        }

    def _notify_reviewers(self, context: ActionContext) -> Dict[str, Any]:
        reviewers = context.parameter_list("reviewers")
        if not reviewers:
            raise ActionInvocationError("notify reviewers: the reviewers list is empty")
        self.application.notify(context.resource_uri, reviewers,
                                subject="Review requested",
                                body=context.parameter("message", ""))
        self.application.add_talk_entry(context.resource_uri, context.actor or "gelee",
                                        "Review requested from: {}".format(", ".join(reviewers)))
        return {"notified": reviewers}

    def _send_for_review(self, context: ActionContext) -> Dict[str, Any]:
        reviewers = context.parameter_list("reviewers")
        if not reviewers:
            raise ActionInvocationError("send for review: the reviewers list is empty")
        self.application.set_access(context.resource_uri, visibility="team", readers=reviewers)
        self.application.add_talk_entry(
            context.resource_uri, context.actor or "gelee",
            "Review round opened ({} days)".format(context.parameter("due_in_days", 14)),
        )
        self.application.notify(context.resource_uri, reviewers, subject="Review requested")
        return {"review_round_open": True, "reviewers": reviewers}

    def _collect_reviews(self, context: ActionContext) -> Dict[str, Any]:
        entries = self.application.talk_page(context.resource_uri)
        minimum = int(context.parameter("minimum_reviews", 1))
        return {"comments": len(entries), "satisfied": len(entries) >= minimum}

    def _generate_pdf(self, context: ActionContext) -> Dict[str, Any]:
        return self.application.export_pdf(
            context.resource_uri,
            paper_size=context.parameter("paper_size", "A4"),
            include_history=bool(context.parameter("include_history", False)),
        )

    def _post_on_website(self, context: ActionContext) -> Dict[str, Any]:
        if self.website is None:
            raise ActionInvocationError("post on web site: no project web site configured")
        artifact = self.application.artifact(context.resource_uri)
        entry = self.website.publish(
            title=artifact.title,
            source_uri=artifact.uri,
            section=context.parameter("site_section", "deliverables"),
            visibility=context.parameter("visibility", "public"),
            rendition=artifact.exports[-1] if artifact.exports else {},
        )
        return {"published": True, "section": entry.section}

    def _create_snapshot(self, context: ActionContext) -> Dict[str, Any]:
        revision = self.application.snapshot(context.resource_uri,
                                             user=context.actor or "gelee",
                                             label=context.parameter("label", "snapshot"))
        return {"revision": revision.number, "label": revision.label}

    def _subscribe(self, context: ActionContext) -> Dict[str, Any]:
        subscriber = context.parameter("subscriber")
        if not subscriber:
            raise ActionInvocationError("subscribe to changes: no subscriber given")
        self.application.subscribe(context.resource_uri, subscriber)
        return {"subscriber": subscriber}

    def _archive(self, context: ActionContext) -> Dict[str, Any]:
        self.application.protect(context.resource_uri, level="sysop")
        artifact = self.application.archive(context.resource_uri,
                                            reason=context.parameter("reason", ""))
        return {"archived": artifact.archived, "protection": "sysop"}

    def _submit_to_agency(self, context: ActionContext) -> Dict[str, Any]:
        artifact = self.application.artifact(context.resource_uri)
        if not artifact.exports:
            self.application.export_pdf(context.resource_uri)
            artifact = self.application.artifact(context.resource_uri)
        agency = context.parameter("agency", "European Commission")
        self.application.notify(context.resource_uri, [agency],
                                subject="Deliverable submission",
                                body="Submitted {}".format(artifact.title))
        return {"submitted_to": agency, "rendition": artifact.exports[-1]}
