"""Google Docs adapter.

Maps the standard action types onto the Google Docs simulator: access-right
changes use the sharing model, notifications become share messages, reviews
are comment rounds, exports use the document exporter, publication copies the
export onto the project web site.
"""

from __future__ import annotations

from typing import Any, Dict, List

from ..actions import library
from ..actions.definitions import ActionImplementation
from ..errors import ActionInvocationError
from .base import ActionContext, ResourceAdapter


class GoogleDocsAdapter(ResourceAdapter):
    """Plug-in for the "Google Doc" resource type."""

    resource_type = "Google Doc"

    def build_implementations(self) -> List[ActionImplementation]:
        return [
            self._implementation(library.CHANGE_ACCESS_RIGHTS, self._change_access_rights,
                                 "Set document visibility and share with editors/readers."),
            self._implementation(library.NOTIFY_REVIEWERS, self._notify_reviewers,
                                 "Send the reviewers a share message."),
            self._implementation(library.SEND_FOR_REVIEW, self._send_for_review,
                                 "Share the document with reviewers and open a comment round."),
            self._implementation(library.COLLECT_REVIEWS, self._collect_reviews,
                                 "Collect and count unresolved comments."),
            self._implementation(library.GENERATE_PDF, self._generate_pdf,
                                 "Export the document to PDF."),
            self._implementation(library.POST_ON_WEBSITE, self._post_on_website,
                                 "Publish the latest export on the project site."),
            self._implementation(library.CREATE_SNAPSHOT, self._create_snapshot,
                                 "Record a named revision of the document."),
            self._implementation(library.SUBSCRIBE_TO_CHANGES, self._subscribe,
                                 "Subscribe a user to document change notifications."),
            self._implementation(library.ARCHIVE_RESOURCE, self._archive,
                                 "Freeze the document."),
            self._implementation(library.SUBMIT_TO_AGENCY, self._submit_to_agency,
                                 "Send the exported document to the funding agency."),
        ]

    # --------------------------------------------------------------- callables
    def _change_access_rights(self, context: ActionContext) -> Dict[str, Any]:
        access = self.application.set_access(
            context.resource_uri,
            visibility=context.parameter("visibility"),
            editors=context.parameter_list("editors"),
            readers=context.parameter_list("readers"),
        )
        return {"visibility": access.visibility, "editors": list(access.editors),
                "readers": list(access.readers)}

    def _notify_reviewers(self, context: ActionContext) -> Dict[str, Any]:
        reviewers = context.parameter_list("reviewers")
        if not reviewers:
            raise ActionInvocationError("notify reviewers: the reviewers list is empty")
        notification = self.application.notify(
            context.resource_uri,
            recipients=reviewers,
            subject="Review requested",
            body=context.parameter("message", ""),
        )
        return {"notified": list(notification.recipients)}

    def _send_for_review(self, context: ActionContext) -> Dict[str, Any]:
        reviewers = context.parameter_list("reviewers")
        if not reviewers:
            raise ActionInvocationError("send for review: the reviewers list is empty")
        shared = self.application.share(
            context.resource_uri, reviewers, role="reader",
            message="Please review within {} days".format(context.parameter("due_in_days", 14)),
        )
        return {"review_round_open": True, "reviewers": shared["shared_with"]}

    def _collect_reviews(self, context: ActionContext) -> Dict[str, Any]:
        comments = self.application.comments(context.resource_uri)
        unresolved = self.application.unresolved_comments(context.resource_uri)
        minimum = int(context.parameter("minimum_reviews", 1))
        return {
            "comments": len(comments),
            "unresolved": len(unresolved),
            "satisfied": len(comments) >= minimum,
        }

    def _generate_pdf(self, context: ActionContext) -> Dict[str, Any]:
        return self.application.export_pdf(
            context.resource_uri,
            paper_size=context.parameter("paper_size", "A4"),
            include_history=bool(context.parameter("include_history", False)),
        )

    def _post_on_website(self, context: ActionContext) -> Dict[str, Any]:
        if self.website is None:
            raise ActionInvocationError("post on web site: no project web site configured")
        artifact = self.application.artifact(context.resource_uri)
        rendition = artifact.exports[-1] if artifact.exports else {}
        entry = self.website.publish(
            title=artifact.title,
            source_uri=artifact.uri,
            section=context.parameter("site_section", "deliverables"),
            visibility=context.parameter("visibility", "public"),
            rendition=rendition,
        )
        return {"published": True, "section": entry.section, "visibility": entry.visibility}

    def _create_snapshot(self, context: ActionContext) -> Dict[str, Any]:
        revision = self.application.snapshot(
            context.resource_uri, user=context.actor or "gelee",
            label=context.parameter("label", "snapshot"),
        )
        return {"revision": revision.number, "label": revision.label}

    def _subscribe(self, context: ActionContext) -> Dict[str, Any]:
        subscriber = context.parameter("subscriber")
        if not subscriber:
            raise ActionInvocationError("subscribe to changes: no subscriber given")
        self.application.subscribe(context.resource_uri, subscriber)
        return {"subscriber": subscriber}

    def _archive(self, context: ActionContext) -> Dict[str, Any]:
        artifact = self.application.archive(context.resource_uri,
                                            reason=context.parameter("reason", ""))
        return {"archived": artifact.archived}

    def _submit_to_agency(self, context: ActionContext) -> Dict[str, Any]:
        artifact = self.application.artifact(context.resource_uri)
        if not artifact.exports:
            # Submitting without an export first produces one implicitly.
            self.application.export_pdf(context.resource_uri)
            artifact = self.application.artifact(context.resource_uri)
        agency = context.parameter("agency", "European Commission")
        self.application.notify(context.resource_uri, [agency],
                                subject="Deliverable submission",
                                body="Submitted {}".format(artifact.title))
        return {"submitted_to": agency, "rendition": artifact.exports[-1]}
