"""Photo album adapter (Flickr/Picasa-like service).

Included to demonstrate that the same lifecycle model also applies to
non-document artifacts (§IV.C mentions Picasa and Flickr for photo albums):
"generate PDF" becomes a contact sheet, "post on web site" publishes the
album, review actions notify reviewers of the album URL.
"""

from __future__ import annotations

from typing import Any, Dict, List

from ..actions import library
from ..actions.definitions import ActionImplementation
from ..errors import ActionInvocationError
from .base import ActionContext, ResourceAdapter


class PhotoAlbumAdapter(ResourceAdapter):
    """Plug-in for the "Photo album" resource type."""

    resource_type = "Photo album"

    def build_implementations(self) -> List[ActionImplementation]:
        return [
            self._implementation(library.CHANGE_ACCESS_RIGHTS, self._change_access_rights,
                                 "Set album visibility and viewers."),
            self._implementation(library.NOTIFY_REVIEWERS, self._notify_reviewers,
                                 "Send reviewers the album link."),
            self._implementation(library.SEND_FOR_REVIEW, self._send_for_review,
                                 "Share the album with reviewers."),
            self._implementation(library.GENERATE_PDF, self._generate_pdf,
                                 "Produce a printable contact sheet."),
            self._implementation(library.POST_ON_WEBSITE, self._post_on_website,
                                 "Publish the album on the project site."),
            self._implementation(library.SUBSCRIBE_TO_CHANGES, self._subscribe,
                                 "Subscribe a user to album updates."),
            self._implementation(library.ARCHIVE_RESOURCE, self._archive,
                                 "Freeze the album."),
        ]

    # --------------------------------------------------------------- callables
    def _change_access_rights(self, context: ActionContext) -> Dict[str, Any]:
        access = self.application.set_access(
            context.resource_uri,
            visibility=context.parameter("visibility"),
            editors=context.parameter_list("editors"),
            readers=context.parameter_list("readers"),
        )
        return {"visibility": access.visibility}

    def _notify_reviewers(self, context: ActionContext) -> Dict[str, Any]:
        reviewers = context.parameter_list("reviewers")
        if not reviewers:
            raise ActionInvocationError("notify reviewers: the reviewers list is empty")
        self.application.notify(context.resource_uri, reviewers, subject="Album review requested",
                                body=context.parameter("message", ""))
        return {"notified": reviewers}

    def _send_for_review(self, context: ActionContext) -> Dict[str, Any]:
        reviewers = context.parameter_list("reviewers")
        if not reviewers:
            raise ActionInvocationError("send for review: the reviewers list is empty")
        self.application.set_access(context.resource_uri, visibility="team", readers=reviewers)
        self.application.notify(context.resource_uri, reviewers, subject="Album review requested")
        return {"review_round_open": True, "reviewers": reviewers}

    def _generate_pdf(self, context: ActionContext) -> Dict[str, Any]:
        return self.application.contact_sheet(context.resource_uri)

    def _post_on_website(self, context: ActionContext) -> Dict[str, Any]:
        published = self.application.publish_album(context.resource_uri)
        if self.website is not None:
            artifact = self.application.artifact(context.resource_uri)
            self.website.publish(
                title=artifact.title, source_uri=artifact.uri,
                section=context.parameter("site_section", "galleries"),
                visibility="public",
                rendition={"photos": published["photos"]},
            )
        return {"published": True, "photos": published["photos"]}

    def _subscribe(self, context: ActionContext) -> Dict[str, Any]:
        subscriber = context.parameter("subscriber")
        if not subscriber:
            raise ActionInvocationError("subscribe to changes: no subscriber given")
        self.application.subscribe(context.resource_uri, subscriber)
        return {"subscriber": subscriber}

    def _archive(self, context: ActionContext) -> Dict[str, Any]:
        artifact = self.application.archive(context.resource_uri,
                                            reason=context.parameter("reason", ""))
        return {"archived": artifact.archived}
