"""Adapter framework.

An adapter is the bridge between the Gelee kernel and one managing
application.  It provides:

* resource access for the resource manager (``exists``, ``describe``,
  ``handle``),
* a ``create_resource`` convenience used by scenarios and examples,
* registration of action *implementations* for its resource type — the place
  where "both the complexity and the resource type-specific behaviour reside"
  (§I).

Implementations are plain callables receiving an :class:`ActionContext`; they
return a result dictionary that ends up in the invocation record and the
execution log.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from ..actions.definitions import ActionImplementation
from ..actions.registry import ActionRegistry
from ..resources.descriptor import ResourceDescriptor
from ..substrates.base import SimulatedApplication
from ..substrates.website import ProjectWebsiteSimulator


@dataclass
class ActionContext:
    """Everything an action implementation gets to work with.

    Attributes:
        resource_uri: the "link to the object" the paper passes to actions.
        resource_type: resolved resource type.
        parameters: resolved parameter values (definition + instantiation +
            call time, merged).
        actor: the user on whose behalf the action runs (usually the
            lifecycle instance owner).
        application: the managing application (simulator) handle.
        website: the publication target used by "post on web site".
        extras: adapter-specific additional handles.
    """

    resource_uri: str
    resource_type: str
    parameters: Dict[str, Any]
    actor: str = ""
    application: Optional[SimulatedApplication] = None
    website: Optional[ProjectWebsiteSimulator] = None
    extras: Dict[str, Any] = field(default_factory=dict)

    def parameter(self, name: str, default: Any = None) -> Any:
        return self.parameters.get(name, default)

    def parameter_list(self, name: str) -> List[str]:
        """Return a parameter as a list (accepts a single string or an iterable)."""
        value = self.parameters.get(name)
        if value is None:
            return []
        if isinstance(value, str):
            return [part.strip() for part in value.split(",") if part.strip()]
        return list(value)


class ResourceAdapter:
    """Base class for resource plug-ins.

    Subclasses set :attr:`resource_type`, implement :meth:`register_actions`
    and may override the access methods when the managing application needs
    special handling.
    """

    #: The resource type string this adapter serves (Table I's resource_type).
    resource_type = "Generic resource"

    def __init__(self, application: SimulatedApplication,
                 website: ProjectWebsiteSimulator = None):
        self.application = application
        self.website = website

    # ------------------------------------------------------------ resource API
    def exists(self, uri: str) -> bool:
        return self.application.exists(uri)

    def describe(self, uri: str) -> Dict[str, Any]:
        return self.application.describe(uri)

    def handle(self, uri: str):
        return self.application.handle(uri)

    def create_resource(self, title: str, owner: str, content: str = "",
                        **metadata: Any) -> ResourceDescriptor:
        """Create an artifact in the managing application and describe it."""
        artifact = self.application.create(title=title, owner=owner, content=content, **metadata)
        return ResourceDescriptor(
            uri=artifact.uri,
            resource_type=self.resource_type,
            display_name=title,
            owner=owner,
        )

    # ------------------------------------------------------------------ actions
    def register(self, registry: ActionRegistry, replace: bool = False) -> List[ActionImplementation]:
        """Register this adapter's action implementations into ``registry``."""
        implementations = self.build_implementations()
        registered = []
        for implementation in implementations:
            registered.append(registry.register_implementation(implementation, replace=replace))
        return registered

    def build_implementations(self) -> List[ActionImplementation]:
        """Return the implementations this adapter provides.  Override me."""
        raise NotImplementedError

    def context_for(self, resource_uri: str, parameters: Dict[str, Any],
                    actor: str = "") -> ActionContext:
        """Build the execution context handed to implementation callables."""
        return ActionContext(
            resource_uri=resource_uri,
            resource_type=self.resource_type,
            parameters=dict(parameters),
            actor=actor,
            application=self.application,
            website=self.website,
        )

    # ------------------------------------------------------------------ helpers
    def _implementation(self, action_uri: str, callable_, description: str = "",
                        signature_overrides=()) -> ActionImplementation:
        return ActionImplementation(
            action_uri=action_uri,
            resource_type=self.resource_type,
            callable=callable_,
            description=description,
            signature_overrides=list(signature_overrides),
        )
