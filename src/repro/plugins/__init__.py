"""Resource plug-ins (adapters).

"The interfacing between the Gelee platform and a specific resource occurs
through plug-ins or adapters.  Developers can create adapters for any kind of
resource, and implement actions that support a given functionality." (§V.B)

Each adapter binds one resource type (e.g. ``"Google Doc"``) to a managing
application (here: a simulator from :mod:`repro.substrates`) and registers the
resource-type-specific implementations of the standard action types.
"""

from .base import ActionContext, ResourceAdapter
from .googledocs import GoogleDocsAdapter
from .mediawiki import MediaWikiAdapter
from .zoho import ZohoAdapter
from .subversion import SubversionAdapter
from .photoalbum import PhotoAlbumAdapter
from .setup import StandardEnvironment, build_standard_environment

__all__ = [
    "ActionContext",
    "ResourceAdapter",
    "GoogleDocsAdapter",
    "MediaWikiAdapter",
    "ZohoAdapter",
    "SubversionAdapter",
    "PhotoAlbumAdapter",
    "StandardEnvironment",
    "build_standard_environment",
]
