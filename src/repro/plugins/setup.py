"""Standard environment wiring.

Builds the full substrate + plug-in + registry + resource-manager stack in one
call so that examples, scenarios, benchmarks and the hosted service all start
from the same configuration.  This is the programmatic equivalent of a Gelee
deployment that has the Google Docs, MediaWiki, Zoho, SVN and photo-album
plug-ins installed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from ..actions.library import register_standard_library
from ..actions.registry import ActionRegistry
from ..clock import Clock, SystemClock
from ..resources.manager import ResourceManager
from ..substrates.googledocs import GoogleDocsSimulator
from ..substrates.mediawiki import MediaWikiSimulator
from ..substrates.photoalbum import PhotoAlbumSimulator
from ..substrates.subversion import SubversionSimulator
from ..substrates.website import ProjectWebsiteSimulator
from ..substrates.zoho import ZohoWriterSimulator
from .base import ResourceAdapter
from .googledocs import GoogleDocsAdapter
from .mediawiki import MediaWikiAdapter
from .photoalbum import PhotoAlbumAdapter
from .subversion import SubversionAdapter
from .zoho import ZohoAdapter


@dataclass
class StandardEnvironment:
    """A fully wired set of managed applications, adapters and registries."""

    clock: Clock
    registry: ActionRegistry
    resource_manager: ResourceManager
    website: ProjectWebsiteSimulator
    adapters: Dict[str, ResourceAdapter] = field(default_factory=dict)

    def adapter(self, resource_type: str) -> ResourceAdapter:
        return self.adapters[resource_type]

    def resource_types(self) -> List[str]:
        return sorted(self.adapters)


def build_standard_environment(clock: Clock = None) -> StandardEnvironment:
    """Create simulators and adapters for every supported resource type.

    The returned environment has:

    * the standard action-type library registered,
    * one simulator per managing application sharing the same clock,
    * one adapter per resource type, registered both in the action registry
      (implementations) and in the resource manager (resource access).
    """
    clock = clock or SystemClock()
    registry = ActionRegistry()
    register_standard_library(registry)
    website = ProjectWebsiteSimulator(clock=clock)
    resource_manager = ResourceManager()

    adapters = [
        GoogleDocsAdapter(GoogleDocsSimulator(clock=clock), website=website),
        MediaWikiAdapter(MediaWikiSimulator(clock=clock), website=website),
        ZohoAdapter(ZohoWriterSimulator(clock=clock), website=website),
        SubversionAdapter(SubversionSimulator(clock=clock), website=website),
        PhotoAlbumAdapter(PhotoAlbumSimulator(clock=clock), website=website),
    ]
    environment = StandardEnvironment(
        clock=clock,
        registry=registry,
        resource_manager=resource_manager,
        website=website,
    )
    for adapter in adapters:
        adapter.register(registry)
        resource_manager.register_adapter(adapter)
        environment.adapters[adapter.resource_type] = adapter
    return environment
