"""Subversion adapter.

Maps the standard action types onto repository operations: access rights are
commit/read authorization, snapshots become tags, exports render the file,
publication posts the tagged rendition on the project site.  Reviews are
modelled as notifications plus a review tag because SVN itself has no comment
facility — that asymmetry is exactly the kind of per-type "signature
difference" the paper discusses in §V.B.
"""

from __future__ import annotations

from typing import Any, Dict, List

from ..actions import library
from ..actions.definitions import ActionImplementation
from ..errors import ActionInvocationError
from .base import ActionContext, ResourceAdapter


class SubversionAdapter(ResourceAdapter):
    """Plug-in for the "SVN file" resource type."""

    resource_type = "SVN file"

    def build_implementations(self) -> List[ActionImplementation]:
        return [
            self._implementation(library.CHANGE_ACCESS_RIGHTS, self._change_access_rights,
                                 "Adjust repository authorization for the path."),
            self._implementation(library.NOTIFY_REVIEWERS, self._notify_reviewers,
                                 "Send reviewers the path and head revision."),
            self._implementation(library.SEND_FOR_REVIEW, self._send_for_review,
                                 "Grant reviewers read access and tag a review revision."),
            self._implementation(library.GENERATE_PDF, self._generate_pdf,
                                 "Render the working copy to PDF."),
            self._implementation(library.POST_ON_WEBSITE, self._post_on_website,
                                 "Publish the rendered file on the project site."),
            self._implementation(library.CREATE_SNAPSHOT, self._create_snapshot,
                                 "Tag the current head revision."),
            self._implementation(library.SUBSCRIBE_TO_CHANGES, self._subscribe,
                                 "Subscribe a user to commit notifications."),
            self._implementation(library.ARCHIVE_RESOURCE, self._archive,
                                 "Freeze the path (release tag)."),
            self._implementation(library.SUBMIT_TO_AGENCY, self._submit_to_agency,
                                 "Send the rendered file to the funding agency."),
        ]

    # --------------------------------------------------------------- callables
    def _change_access_rights(self, context: ActionContext) -> Dict[str, Any]:
        access = self.application.set_access(
            context.resource_uri,
            visibility=context.parameter("visibility"),
            editors=context.parameter_list("editors"),
            readers=context.parameter_list("readers"),
        )
        return {"visibility": access.visibility, "committers": list(access.editors)}

    def _notify_reviewers(self, context: ActionContext) -> Dict[str, Any]:
        reviewers = context.parameter_list("reviewers")
        if not reviewers:
            raise ActionInvocationError("notify reviewers: the reviewers list is empty")
        self.application.notify(
            context.resource_uri, reviewers, subject="Review requested",
            body="Head revision r{}".format(self.application.head_revision),
        )
        return {"notified": reviewers, "head_revision": self.application.head_revision}

    def _send_for_review(self, context: ActionContext) -> Dict[str, Any]:
        reviewers = context.parameter_list("reviewers")
        if not reviewers:
            raise ActionInvocationError("send for review: the reviewers list is empty")
        self.application.set_access(context.resource_uri, readers=reviewers)
        revision = self.application.tag(context.resource_uri, label="review")
        self.application.notify(context.resource_uri, reviewers, subject="Review requested")
        return {"review_round_open": True, "reviewers": reviewers, "tagged_revision": revision}

    def _generate_pdf(self, context: ActionContext) -> Dict[str, Any]:
        return self.application.export_pdf(
            context.resource_uri, paper_size=context.parameter("paper_size", "A4"),
            include_history=bool(context.parameter("include_history", False)),
        )

    def _post_on_website(self, context: ActionContext) -> Dict[str, Any]:
        if self.website is None:
            raise ActionInvocationError("post on web site: no project web site configured")
        artifact = self.application.artifact(context.resource_uri)
        entry = self.website.publish(
            title=artifact.title, source_uri=artifact.uri,
            section=context.parameter("site_section", "deliverables"),
            visibility=context.parameter("visibility", "public"),
            rendition=artifact.exports[-1] if artifact.exports else {},
        )
        return {"published": True, "section": entry.section}

    def _create_snapshot(self, context: ActionContext) -> Dict[str, Any]:
        revision = self.application.tag(context.resource_uri,
                                        label=context.parameter("label", "snapshot"))
        return {"tagged_revision": revision}

    def _subscribe(self, context: ActionContext) -> Dict[str, Any]:
        subscriber = context.parameter("subscriber")
        if not subscriber:
            raise ActionInvocationError("subscribe to changes: no subscriber given")
        self.application.subscribe(context.resource_uri, subscriber)
        return {"subscriber": subscriber}

    def _archive(self, context: ActionContext) -> Dict[str, Any]:
        self.application.tag(context.resource_uri, label="release")
        artifact = self.application.archive(context.resource_uri,
                                            reason=context.parameter("reason", ""))
        return {"archived": artifact.archived}

    def _submit_to_agency(self, context: ActionContext) -> Dict[str, Any]:
        artifact = self.application.artifact(context.resource_uri)
        if not artifact.exports:
            self.application.export_pdf(context.resource_uri)
            artifact = self.application.artifact(context.resource_uri)
        agency = context.parameter("agency", "European Commission")
        self.application.notify(context.resource_uri, [agency], subject="Deliverable submission")
        return {"submitted_to": agency}
