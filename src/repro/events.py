"""A small synchronous event bus.

Fig. 2 of the paper shows the lifecycle manager receiving "lifecycle instance
events (progression from phase to phase …) sent by the lifecycle execution
widgets, and action execution results, sent by resource plug-ins".  Internally
we model that message flow with an event bus: the runtime publishes events,
and the execution log, the monitoring cockpit and the widgets subscribe.

Events are plain, immutable records; the bus is synchronous and in-process —
the hosted/remote transport is layered on top by :mod:`repro.service`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from datetime import datetime
from typing import Callable, Dict, List, Optional


@dataclass(frozen=True)
class Event:
    """A single kernel event.

    Attributes:
        kind: dotted event name, e.g. ``"instance.phase_entered"``.
        timestamp: when the event happened (kernel clock).
        subject_id: id of the main entity involved (instance id, model id...).
        actor: user id that caused the event, or ``None`` for system events.
        payload: event-specific details (phase ids, action names, statuses...).
    """

    kind: str
    timestamp: datetime
    subject_id: str
    actor: Optional[str] = None
    payload: dict = field(default_factory=dict)


class EventBus:
    """Synchronous publish/subscribe dispatcher.

    Subscribers register for an exact event kind, for a prefix (``"instance."``)
    or for everything (``"*"``).  Handlers are called in registration order;
    a failing handler does not prevent the others from running — failures are
    collected and re-raised together only if ``strict`` is set.
    """

    def __init__(self, strict: bool = False):
        self._handlers: Dict[str, List[Callable[[Event], None]]] = {}
        self._strict = strict
        self._published = 0

    @property
    def published_count(self) -> int:
        """Total number of events published on this bus."""
        return self._published

    def subscribe(self, kind: str, handler: Callable[[Event], None]) -> Callable[[], None]:
        """Register ``handler`` for ``kind`` and return an unsubscribe callable."""
        self._handlers.setdefault(kind, []).append(handler)

        def unsubscribe():
            handlers = self._handlers.get(kind, [])
            if handler in handlers:
                handlers.remove(handler)

        return unsubscribe

    def publish(self, event: Event) -> None:
        """Deliver ``event`` to all matching subscribers."""
        self._published += 1
        errors = []
        for registered_kind, handlers in list(self._handlers.items()):
            if not self._matches(registered_kind, event.kind):
                continue
            for handler in list(handlers):
                try:
                    handler(event)
                except Exception as exc:  # noqa: BLE001 - isolate subscribers
                    errors.append(exc)
        if errors and self._strict:
            raise errors[0]

    @staticmethod
    def _matches(pattern: str, kind: str) -> bool:
        if pattern == "*":
            return True
        if pattern.endswith("."):
            return kind.startswith(pattern)
        return pattern == kind


class EventRecorder:
    """Subscriber that keeps every event it sees; handy in tests and examples."""

    def __init__(self, bus: EventBus = None, pattern: str = "*"):
        self.events: List[Event] = []
        if bus is not None:
            bus.subscribe(pattern, self)

    def __call__(self, event: Event) -> None:
        self.events.append(event)

    def kinds(self) -> List[str]:
        return [event.kind for event in self.events]

    def of_kind(self, kind: str) -> List[Event]:
        return [event for event in self.events if event.kind == kind]

    def clear(self) -> None:
        self.events.clear()
