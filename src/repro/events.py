"""The kernel event buses.

Fig. 2 of the paper shows the lifecycle manager receiving "lifecycle instance
events (progression from phase to phase …) sent by the lifecycle execution
widgets, and action execution results, sent by resource plug-ins".  Internally
we model that message flow with an event bus: the runtime publishes events,
and the execution log, the monitoring cockpit and the widgets subscribe.

Events are plain, immutable records.  Two bus flavours are provided:

* :class:`EventBus` — synchronous, in-process delivery; every ``publish``
  dispatches immediately.  Thread-safe, so the sharded runtime
  (:mod:`repro.runtime.sharding`) can publish from concurrent owners.
* :class:`BatchingEventBus` — buffers publishes and flushes them in order
  when a size or time threshold is crossed (the time source is the injected
  :class:`~repro.clock.Clock`).  Coalescing dispatch keeps the hot
  progression path cheap when every token move emits a handful of events.

The hosted/remote transport is layered on top by :mod:`repro.service`.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from datetime import datetime, timedelta
from typing import Callable, Dict, List, Optional

from .clock import Clock


@dataclass(frozen=True)
class Event:
    """A single kernel event.

    Attributes:
        kind: dotted event name, e.g. ``"instance.phase_entered"``.
        timestamp: when the event happened (kernel clock).
        subject_id: id of the main entity involved (instance id, model id...).
        actor: user id that caused the event, or ``None`` for system events.
        payload: event-specific details (phase ids, action names, statuses...).
    """

    kind: str
    timestamp: datetime
    subject_id: str
    actor: Optional[str] = None
    payload: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        """JSON-compatible form, used by the write-ahead journal and tests."""
        return {
            "kind": self.kind,
            "timestamp": self.timestamp.isoformat(),
            "subject_id": self.subject_id,
            "actor": self.actor,
            "payload": dict(self.payload),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Event":
        return cls(
            kind=data["kind"],
            timestamp=datetime.fromisoformat(data["timestamp"]),
            subject_id=data["subject_id"],
            actor=data.get("actor"),
            payload=dict(data.get("payload") or {}),
        )


class EventBus:
    """Synchronous publish/subscribe dispatcher.

    Subscribers register for an exact event kind, for a prefix (``"instance."``)
    or for everything (``"*"``).  Handlers are called in registration order;
    a failing handler does not prevent the others from running — failures are
    collected and re-raised together only if ``strict`` is set.

    The subscription table is guarded by a lock and handler lists are copied
    before dispatch, so concurrent publishers (one per shard of the sharded
    runtime) never observe a half-updated table.  Handlers themselves run
    outside the lock and must be thread-safe if the bus is shared by threads.
    """

    def __init__(self, strict: bool = False):
        self._handlers: Dict[str, List[Callable[[Event], None]]] = {}
        self._strict = strict
        self._published = 0
        self._lock = threading.RLock()

    @property
    def published_count(self) -> int:
        """Total number of events published on this bus."""
        return self._published

    def subscribe(self, kind: str, handler: Callable[[Event], None]) -> Callable[[], None]:
        """Register ``handler`` for ``kind`` and return an unsubscribe callable."""
        with self._lock:
            self._handlers.setdefault(kind, []).append(handler)

        def unsubscribe():
            with self._lock:
                handlers = self._handlers.get(kind, [])
                if handler in handlers:
                    handlers.remove(handler)

        return unsubscribe

    def publish(self, event: Event) -> None:
        """Deliver ``event`` to all matching subscribers."""
        with self._lock:
            self._published += 1
            matched = self._matching_handlers(event.kind)
        self._deliver(event, matched)

    # ------------------------------------------------------------------ internal
    def _matching_handlers(self, kind: str) -> List[Callable[[Event], None]]:
        """Snapshot of the handlers interested in ``kind`` (caller holds the lock)."""
        matched: List[Callable[[Event], None]] = []
        for registered_kind, handlers in self._handlers.items():
            if self._matches(registered_kind, kind):
                matched.extend(handlers)
        return matched

    def _deliver(self, event: Event, handlers: List[Callable[[Event], None]]) -> None:
        errors = []
        for handler in handlers:
            try:
                handler(event)
            except Exception as exc:  # noqa: BLE001 - isolate subscribers
                errors.append(exc)
        if errors and self._strict:
            raise errors[0]

    @staticmethod
    def _matches(pattern: str, kind: str) -> bool:
        if pattern == "*":
            return True
        if pattern.endswith("."):
            return kind.startswith(pattern)
        return pattern == kind


class BatchingEventBus(EventBus):
    """An event bus that coalesces publishes into ordered batches.

    ``publish`` appends to a buffer instead of dispatching immediately; the
    buffer is flushed — preserving publish order — when it reaches
    ``max_batch`` events, when ``max_delay_seconds`` have elapsed on the
    injected ``clock`` since the oldest buffered event, or when
    :meth:`flush` is called explicitly.

    There is no background thread: the time threshold is evaluated on each
    publish against the injected :class:`~repro.clock.Clock`, so a
    :class:`~repro.clock.SimulatedClock` drives flushes deterministically in
    tests and benchmarks.  Call :meth:`flush` (or use the bus as a context
    manager) before reading subscriber state that must include the tail of
    the stream.

    Subscriber kind-matching is resolved once per distinct event kind and
    cached, which makes the flush loop a straight walk over pre-matched
    handler lists — measurably cheaper than per-event pattern matching when
    the runtime emits millions of progression events.
    """

    def __init__(self, strict: bool = False, clock: Clock = None,
                 max_batch: int = 64, max_delay_seconds: float = 0.05):
        super().__init__(strict=strict)
        if max_batch < 1:
            raise ValueError("max_batch must be at least 1")
        self._clock = clock
        self._max_batch = max_batch
        self._max_delay = timedelta(seconds=max_delay_seconds)
        self._buffer: List[Event] = []
        self._oldest_at: Optional[datetime] = None
        self._match_cache: Dict[str, List[Callable[[Event], None]]] = {}
        self._flushed_batches = 0
        # Serialises take+deliver so concurrent publishers cannot interleave
        # batches and break the publish-order guarantee.  Reentrant: a
        # handler publishing back into the bus may trigger a nested flush.
        self._flush_lock = threading.RLock()

    # ------------------------------------------------------------------- stats
    @property
    def pending_count(self) -> int:
        """Events buffered but not yet delivered."""
        return len(self._buffer)

    @property
    def flushed_batches(self) -> int:
        """Number of batches delivered so far."""
        return self._flushed_batches

    # ---------------------------------------------------------------- lifecycle
    def subscribe(self, kind: str, handler: Callable[[Event], None]) -> Callable[[], None]:
        unsubscribe = super().subscribe(kind, handler)
        with self._lock:
            self._match_cache.clear()

        def unsubscribe_and_invalidate():
            unsubscribe()
            with self._lock:
                self._match_cache.clear()

        return unsubscribe_and_invalidate

    def publish(self, event: Event) -> None:
        """Buffer ``event``; flush if the size or time threshold is crossed."""
        with self._lock:
            self._published += 1
            self._buffer.append(event)
            if self._oldest_at is None:
                self._oldest_at = self._timestamp_of(event)
            should_flush = self._should_flush(event)
        if should_flush:
            self.flush()

    def flush(self) -> int:
        """Deliver every buffered event now; returns how many were delivered.

        Flushes are serialised: the batch is taken and delivered under one
        flush lock, so events published by concurrent shards reach the
        subscribers in a single global order.
        """
        with self._flush_lock:
            with self._lock:
                batch = self._take_batch()
            self._deliver_batch(batch)
        return len(batch)

    def __enter__(self) -> "BatchingEventBus":
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        self.flush()

    # ------------------------------------------------------------------ internal
    def _timestamp_of(self, event: Event) -> datetime:
        if self._clock is not None:
            return self._clock.now()
        return event.timestamp

    def _should_flush(self, newest: Event) -> bool:
        if len(self._buffer) >= self._max_batch:
            return True
        if self._oldest_at is None:
            return False
        return (self._timestamp_of(newest) - self._oldest_at) >= self._max_delay

    def _take_batch(self) -> List[Event]:
        batch = self._buffer
        self._buffer = []
        self._oldest_at = None
        if batch:
            self._flushed_batches += 1
        return batch

    def _deliver_batch(self, batch: List[Event]) -> None:
        for event in batch:
            with self._lock:
                handlers = self._match_cache.get(event.kind)
                if handlers is None:
                    handlers = self._matching_handlers(event.kind)
                    self._match_cache[event.kind] = handlers
            self._deliver(event, handlers)


class EventRecorder:
    """Subscriber that keeps every event it sees; handy in tests and examples."""

    def __init__(self, bus: EventBus = None, pattern: str = "*"):
        self.events: List[Event] = []
        self._lock = threading.Lock()
        if bus is not None:
            bus.subscribe(pattern, self)

    def __call__(self, event: Event) -> None:
        with self._lock:
            self.events.append(event)

    def kinds(self) -> List[str]:
        return [event.kind for event in self.events]

    def of_kind(self, kind: str) -> List[Event]:
        return [event for event in self.events if event.kind == kind]

    def clear(self) -> None:
        with self._lock:
            self.events.clear()
