"""Run the benchmark harness end to end: ``python -m repro.benchrunner``.

The benchmark suite lives in ``benchmarks/`` at the repository root and is
gated behind the ``bench`` pytest marker (the tier-1 test run collects but
skips it).  This entry point turns the gate off and runs the whole harness —
or a selection — writing the machine-readable ``BENCH_*.json`` trajectory
files next to the benchmarks.

Usage::

    python -m repro.benchrunner                 # full suite
    python -m repro.benchrunner sharding        # only test_bench_sharding.py
    python -m repro.benchrunner --list          # enumerate available benchmarks
    python -m repro.benchrunner -- -k widget    # extra pytest args after --

Exit code is pytest's exit code, so CI can consume it directly.
"""

from __future__ import annotations

import os
import sys
from typing import List, Optional


def available_benchmarks(bench_dir: str) -> List[str]:
    """The benchmark slugs runnable by name (``test_bench_<slug>.py``)."""
    return sorted(
        entry[len("test_bench_"):-len(".py")]
        for entry in os.listdir(bench_dir)
        if entry.startswith("test_bench_") and entry.endswith(".py")
    )


def find_benchmarks_dir(start: str = None) -> Optional[str]:
    """Locate the ``benchmarks/`` directory.

    Tries the repository layout this package ships in (``src/repro`` next to
    ``benchmarks/``), then walks up from the working directory — so the
    runner works both from a checkout and from an installed package run
    inside the repository.
    """
    candidates = []
    package_root = os.path.dirname(os.path.abspath(__file__))
    candidates.append(os.path.normpath(os.path.join(package_root, "..", "..", "benchmarks")))
    probe = os.path.abspath(start or os.getcwd())
    while True:
        candidates.append(os.path.join(probe, "benchmarks"))
        parent = os.path.dirname(probe)
        if parent == probe:
            break
        probe = parent
    for candidate in candidates:
        if os.path.isfile(os.path.join(candidate, "conftest.py")):
            return candidate
    return None


def main(argv: List[str] = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    try:
        import pytest
    except ImportError:
        print("repro.benchrunner requires pytest", file=sys.stderr)
        return 2

    bench_dir = find_benchmarks_dir()
    if bench_dir is None:
        print("repro.benchrunner: could not locate the benchmarks/ directory "
              "(run from inside the repository)", file=sys.stderr)
        return 2

    selections: List[str] = []
    passthrough: List[str] = []
    rest = selections
    for token in argv:
        if token == "--":
            rest = passthrough
            continue
        if token in ("--list", "-l") and rest is selections:
            # Only before "--": afterwards -l belongs to pytest (--showlocals).
            for name in available_benchmarks(bench_dir):
                print(name)
            return 0
        if token.startswith("-"):
            passthrough.append(token)
        else:
            rest.append(token)

    if selections:
        targets = [os.path.join(bench_dir, "test_bench_{}.py".format(name))
                   for name in selections]
        missing = [target for target in targets if not os.path.isfile(target)]
        if missing:
            print("repro.benchrunner: unknown benchmark(s): {}\navailable: {}".format(
                ", ".join(os.path.basename(m) for m in missing),
                ", ".join(available_benchmarks(bench_dir))), file=sys.stderr)
            return 2
    else:
        targets = [bench_dir]

    args = ["--run-bench", "-q", "-p", "no:cacheprovider"] + passthrough + targets
    print("repro.benchrunner: pytest {}".format(" ".join(args)))
    return int(pytest.main(args))


if __name__ == "__main__":
    raise SystemExit(main())
