"""Run the benchmark harness end to end: ``python -m repro.benchrunner``.

The benchmark suite lives in ``benchmarks/`` at the repository root and is
gated behind the ``bench`` pytest marker (the tier-1 test run collects but
skips it).  This entry point turns the gate off and runs the whole harness —
or a selection — writing the machine-readable ``BENCH_*.json`` trajectory
files next to the benchmarks.

Usage::

    python -m repro.benchrunner                 # full suite
    python -m repro.benchrunner sharding        # only test_bench_sharding.py
    python -m repro.benchrunner --list          # enumerate available benchmarks
    python -m repro.benchrunner -- -k widget    # extra pytest args after --

Exit code is pytest's exit code, so CI can consume it directly.
"""

from __future__ import annotations

import os
import platform
import subprocess
import sys
from datetime import datetime, timezone
from typing import Any, Dict, List, Optional

#: Version of the ``BENCH_*.json`` record layout.  Bump when the shape of
#: the stamped metadata (or the harness-level record contract) changes, so
#: cross-PR trajectory tooling can branch on it.  v1: bare records; v2:
#: every record carries the :func:`bench_run_stamp` ``meta`` block.
BENCH_SCHEMA_VERSION = 2


def _git_commit() -> str:
    """The repository's HEAD commit, or ``"unknown"`` outside a checkout."""
    try:
        out = subprocess.run(
            ["git", "-C", os.path.dirname(os.path.abspath(__file__)),
             "rev-parse", "HEAD"],
            capture_output=True, text=True, timeout=5)
    except (OSError, subprocess.SubprocessError):
        return "unknown"
    commit = out.stdout.strip()
    return commit if out.returncode == 0 and commit else "unknown"


def bench_run_stamp() -> Dict[str, Any]:
    """Attribution metadata stamped onto every ``BENCH_*.json`` record.

    The trajectory files accumulate across PRs; without a stamp a record
    is just numbers.  The stamp pins each entry to (a) the exact code
    (``git_commit``), (b) the record layout (``schema_version``) and (c)
    the parameter set (every ``BENCH_*`` environment override, which is
    how CI's smoke runs shrink the workloads) — so a regression seen in
    the trajectory is attributable to a commit and comparable only against
    runs with the same parameters.
    """
    return {
        "schema_version": BENCH_SCHEMA_VERSION,
        "git_commit": _git_commit(),
        "recorded_at": datetime.now(timezone.utc).isoformat(),
        "python": platform.python_version(),
        "platform": platform.platform(),
        "parameters": {key: value for key, value in sorted(os.environ.items())
                       if key.startswith("BENCH_")},
    }


def available_benchmarks(bench_dir: str) -> List[str]:
    """The benchmark slugs runnable by name (``test_bench_<slug>.py``)."""
    return sorted(
        entry[len("test_bench_"):-len(".py")]
        for entry in os.listdir(bench_dir)
        if entry.startswith("test_bench_") and entry.endswith(".py")
    )


def find_benchmarks_dir(start: str = None) -> Optional[str]:
    """Locate the ``benchmarks/`` directory.

    Tries the repository layout this package ships in (``src/repro`` next to
    ``benchmarks/``), then walks up from the working directory — so the
    runner works both from a checkout and from an installed package run
    inside the repository.
    """
    candidates = []
    package_root = os.path.dirname(os.path.abspath(__file__))
    candidates.append(os.path.normpath(os.path.join(package_root, "..", "..", "benchmarks")))
    probe = os.path.abspath(start or os.getcwd())
    while True:
        candidates.append(os.path.join(probe, "benchmarks"))
        parent = os.path.dirname(probe)
        if parent == probe:
            break
        probe = parent
    for candidate in candidates:
        if os.path.isfile(os.path.join(candidate, "conftest.py")):
            return candidate
    return None


def main(argv: List[str] = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    try:
        import pytest
    except ImportError:
        print("repro.benchrunner requires pytest", file=sys.stderr)
        return 2

    bench_dir = find_benchmarks_dir()
    if bench_dir is None:
        print("repro.benchrunner: could not locate the benchmarks/ directory "
              "(run from inside the repository)", file=sys.stderr)
        return 2

    selections: List[str] = []
    passthrough: List[str] = []
    rest = selections
    for token in argv:
        if token == "--":
            rest = passthrough
            continue
        if token in ("--list", "-l") and rest is selections:
            # Only before "--": afterwards -l belongs to pytest (--showlocals).
            for name in available_benchmarks(bench_dir):
                print(name)
            return 0
        if token.startswith("-"):
            passthrough.append(token)
        else:
            rest.append(token)

    if selections:
        targets = [os.path.join(bench_dir, "test_bench_{}.py".format(name))
                   for name in selections]
        missing = [target for target in targets if not os.path.isfile(target)]
        if missing:
            print("repro.benchrunner: unknown benchmark(s): {}\navailable: {}".format(
                ", ".join(os.path.basename(m) for m in missing),
                ", ".join(available_benchmarks(bench_dir))), file=sys.stderr)
            return 2
    else:
        targets = [bench_dir]

    args = ["--run-bench", "-q", "-p", "no:cacheprovider"] + passthrough + targets
    print("repro.benchrunner: pytest {}".format(" ".join(args)))
    return int(pytest.main(args))


if __name__ == "__main__":
    raise SystemExit(main())
